"""Gain-matrix builders for every kind of leg in the cascade model.

The channel between an AP and a client through surfaces decomposes into
legs: node→node (direct, with first-order wall bounces), node→surface
elements, surface elements→points, and surface→surface element pairs.
Each builder returns complex amplitude gains with the convention
``P_rx = P_tx |h|^2``.

Modeling notes (documented substitutions vs. a full EM solver):

* Per-element penetration loss is exact for node↔element legs; the
  surface↔surface leg uses the panels' center-to-center penetration for
  all element pairs (panels are small relative to obstacles).
* First-order specular wall reflections enrich only node→node legs;
  surface legs are dominated by their geometric ray.
* A surface's redirection efficiency (wideband frequency response) is
  applied once per interaction, on the *incoming* leg.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core.units import wavelength
from ..geometry.environment import Environment
from ..surfaces.panel import SurfacePanel
from .geomkernels import PanelStack, compiled_geometry
from .nodes import RadioNode
from .tracer import PanelObstacle, segment_amplitude

_TINY = 1e-12


def leg_aabb(*point_sets: np.ndarray, pad: float = 0.0) -> "tuple":
    """Axis-aligned bounds containing every segment of a leg.

    Every ray a leg traces runs between one point of one set and one
    point of another; the AABB of the union of the endpoint sets is
    convex, so it contains all those segments.  An obstacle wholly
    outside this box therefore cannot perturb the leg — the geometric
    fact the simulator's incremental leg cache rests on.  ``pad``
    inflates the box to absorb the kernels' epsilon tolerances.
    """
    stacked = np.concatenate(
        [np.atleast_2d(np.asarray(p, dtype=float)) for p in point_sets], axis=0
    )
    return stacked.min(axis=0) - pad, stacked.max(axis=0) + pad


def aabb_overlap(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> bool:
    """Whether two axis-aligned boxes intersect (closed boxes)."""
    return bool(np.all(lo_a <= hi_b) and np.all(lo_b <= hi_a))


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Distances between two point sets, shape ``(len(a), len(b))``."""
    diff = a[:, None, :] - b[None, :, :]
    return np.linalg.norm(diff, axis=2)


def _pattern_amplitudes(
    sources: np.ndarray,
    boresight: np.ndarray,
    pattern,
    targets: np.ndarray,
) -> np.ndarray:
    """Amplitude pattern gains from each source toward each target.

    Shape ``(len(sources), len(targets))``; sources share one boresight.
    """
    diff = targets[None, :, :] - sources[:, None, :]
    dist = np.linalg.norm(diff, axis=2)
    safe = np.maximum(dist, _TINY)
    cos_theta = np.einsum("stk,k->st", diff, boresight) / safe
    peak = pattern.peak_gain_linear
    if pattern.cos_exponent == 0.0:
        gains = np.full_like(cos_theta, peak)
    else:
        gains = peak * np.clip(np.abs(cos_theta), 0.0, 1.0) ** pattern.cos_exponent
    if pattern.front_only:
        gains = np.where(cos_theta > 0.0, gains, 0.0)
    return np.sqrt(gains)


def _pattern_amplitudes_pairwise(
    sources: np.ndarray,
    boresight: np.ndarray,
    pattern,
    targets: np.ndarray,
) -> np.ndarray:
    """Amplitude pattern gains toward per-pair targets.

    ``targets`` is ``(S, T, 3)`` — a distinct aim point per source/
    target pair (reflection bounce points); returns ``(S, T)``.
    """
    diff = targets - sources[:, None, :]
    dist = np.linalg.norm(diff, axis=2)
    safe = np.maximum(dist, _TINY)
    cos_theta = np.einsum("stk,k->st", diff, boresight) / safe
    peak = pattern.peak_gain_linear
    if pattern.cos_exponent == 0.0:
        gains = np.full_like(cos_theta, peak)
    else:
        gains = peak * np.clip(np.abs(cos_theta), 0.0, 1.0) ** pattern.cos_exponent
    if pattern.front_only:
        gains = np.where(cos_theta > 0.0, gains, 0.0)
    return np.sqrt(gains)


def _pairwise_penetration(
    env: Environment,
    a: np.ndarray,
    b: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle],
) -> np.ndarray:
    """Penetration amplitude for all pairs, shape ``(len(a), len(b))``."""
    n, m = a.shape[0], b.shape[0]
    a_flat = np.repeat(a, m, axis=0)
    b_flat = np.tile(b, (n, 1))
    amp = segment_amplitude(env, a_flat, b_flat, frequency_hz, panel_obstacles)
    return amp.reshape(n, m)


def node_to_points(
    env: Environment,
    node: RadioNode,
    points: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    include_reflections: bool = True,
    point_pattern=None,
) -> np.ndarray:
    """Direct channel from a node's antennas to receive points.

    Returns ``(K, M)`` complex gains (K points, M antennas) including
    penetration losses and, optionally, first-order wall bounces.
    ``point_pattern`` defaults to isotropic receivers.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    lam = wavelength(frequency_hz)
    k_wave = 2.0 * math.pi / lam
    ant = node.positions
    dist = _pairwise_distances(ant, points)  # (M, K)
    safe = np.maximum(dist, _TINY)
    tx_amp = _pattern_amplitudes(ant, node.boresight, node.pattern, points)
    if point_pattern is not None and point_pattern.cos_exponent != 0.0:
        raise NotImplementedError("directional receive points not supported")
    rx_gain = 1.0 if point_pattern is None else point_pattern.peak_gain_linear
    pen = _pairwise_penetration(env, ant, points, frequency_hz, panel_obstacles)
    h = (
        (lam / (4.0 * math.pi * safe))
        * tx_amp
        * math.sqrt(rx_gain)
        * pen
        * np.exp(-1j * k_wave * dist)
    )
    if include_reflections:
        # Image method, batched per reflective wall: every (antenna,
        # point) pair bounces in one kernel pass instead of a Python
        # loop over M×K×walls scalar traces.
        compiled = compiled_geometry(env)
        panels = PanelStack(panel_obstacles) if panel_obstacles else None
        rx_amp = math.sqrt(rx_gain)
        for index in compiled.reflective_wall_indices():
            valid, bounce, length, refl_amp = compiled.reflection_legs(
                index, ant, points, frequency_hz, panels
            )
            if not valid.any():
                continue
            safe_len = np.where(valid, length, 1.0)
            pattern_amp = _pattern_amplitudes_pairwise(
                ant, node.boresight, node.pattern, bounce
            )
            amp = (
                (lam / (4.0 * math.pi * safe_len))
                * refl_amp  # zero wherever the bounce is invalid
                * pattern_amp
                * rx_amp
            )
            h += amp * np.exp(-1j * k_wave * length)
    return h.T  # (K, M)


def node_to_elements(
    env: Environment,
    node: RadioNode,
    panel: SurfacePanel,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    apply_efficiency: bool = True,
) -> np.ndarray:
    """Incoming leg: node antennas → surface elements, shape ``(M, E)``.

    Carries the panel's redirection efficiency (incoming-leg
    convention) so each cascade applies it exactly once.
    """
    lam = wavelength(frequency_hz)
    k_wave = 2.0 * math.pi / lam
    ant = node.positions
    elems = panel.element_positions()
    dist = _pairwise_distances(ant, elems)
    safe = np.maximum(dist, _TINY)
    tx_amp = _pattern_amplitudes(ant, node.boresight, node.pattern, elems)
    elem_amp = _pattern_amplitudes(
        elems, panel.normal, panel.element_pattern(), ant
    ).T  # (M, E)
    pen = _pairwise_penetration(env, ant, elems, frequency_hz, panel_obstacles)
    eff = panel.spec.efficiency(frequency_hz) if apply_efficiency else 1.0
    return (
        (lam / (4.0 * math.pi * safe))
        * tx_amp
        * elem_amp
        * pen
        * eff
        * np.exp(-1j * k_wave * dist)
    )


def elements_to_points(
    env: Environment,
    panel: SurfacePanel,
    points: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
) -> np.ndarray:
    """Outgoing leg: surface elements → receive points, shape ``(K, E)``."""
    points = np.atleast_2d(np.asarray(points, dtype=float))
    lam = wavelength(frequency_hz)
    k_wave = 2.0 * math.pi / lam
    elems = panel.element_positions()
    dist = _pairwise_distances(elems, points)  # (E, K)
    safe = np.maximum(dist, _TINY)
    elem_amp = _pattern_amplitudes(
        elems, panel.normal, panel.element_pattern(), points
    )
    pen = _pairwise_penetration(env, elems, points, frequency_hz, panel_obstacles)
    h = (
        (lam / (4.0 * math.pi * safe))
        * elem_amp
        * pen
        * np.exp(-1j * k_wave * dist)
    )
    return h.T  # (K, E)


def elements_to_elements(
    env: Environment,
    source: SurfacePanel,
    target: SurfacePanel,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
) -> np.ndarray:
    """Inter-surface leg: source elements → target elements.

    Shape ``(E_source, E_target)``.  Carries the *target* panel's
    efficiency (incoming-leg convention).  Penetration loss uses the
    panels' center-to-center segment for all pairs.
    """
    lam = wavelength(frequency_hz)
    k_wave = 2.0 * math.pi / lam
    src = source.element_positions()
    tgt = target.element_positions()
    dist = _pairwise_distances(src, tgt)
    safe = np.maximum(dist, _TINY)
    out_amp = _pattern_amplitudes(
        src, source.normal, source.element_pattern(), tgt
    )
    in_amp = _pattern_amplitudes(
        tgt, target.normal, target.element_pattern(), src
    ).T
    pen = float(
        segment_amplitude(
            env,
            source.center[None, :],
            target.center[None, :],
            frequency_hz,
            panel_obstacles,
        )[0]
    )
    eff = target.spec.efficiency(frequency_hz)
    return (
        (lam / (4.0 * math.pi * safe))
        * out_amp
        * in_amp
        * pen
        * eff
        * np.exp(-1j * k_wave * dist)
    )
