"""Channel simulation substrate: ray model, cascades, simulator."""

from .links import (
    elements_to_elements,
    elements_to_points,
    node_to_elements,
    node_to_points,
)
from .geomkernels import CompiledGeometry, PanelStack, compiled_geometry
from .model import ChannelModel, LinearChannelForm, LinearFormCache
from .nodes import RadioNode, single_antenna_node, ula_node
from .simulator import ChannelSimulator, live_configs
from .wideband import (
    WidebandResponse,
    band_report,
    subcarrier_frequencies,
    sweep_point,
)
from .tracer import (
    PanelObstacle,
    ReflectionPath,
    reflection_paths,
    segment_amplitude,
    segment_loss_db,
)

__all__ = [
    "ChannelModel",
    "ChannelSimulator",
    "CompiledGeometry",
    "LinearChannelForm",
    "LinearFormCache",
    "PanelObstacle",
    "PanelStack",
    "RadioNode",
    "ReflectionPath",
    "WidebandResponse",
    "band_report",
    "compiled_geometry",
    "elements_to_elements",
    "elements_to_points",
    "live_configs",
    "node_to_elements",
    "node_to_points",
    "reflection_paths",
    "segment_amplitude",
    "segment_loss_db",
    "single_antenna_node",
    "subcarrier_frequencies",
    "sweep_point",
    "ula_node",
]
