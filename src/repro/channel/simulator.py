"""The wireless channel simulator SurfOS orchestrates with.

This is the repository's substitute for the AutoMS ray tracer the paper
uses: given surface specifications and the 3-D environment model, it
outputs the channel matrices between the surfaces and endpoints on the
relevant frequency bands (§3.2 "Modeling interactions").

Channel builds are cached at **two levels**:

* A *model cache* keyed on the exact (environment version, AP, points,
  panels) tuple returns a previously assembled
  :class:`~repro.channel.model.ChannelModel` wholesale.
* A *leg cache* keys every traced leg on what that leg physically
  depends on: digests of its endpoint geometry plus the digests of the
  panel obstacles whose footprint intersects the leg's ray corridor.
  ``ap→surface`` and ``surface→surface`` legs are independent of the
  client points, so a client move re-traces only the ``direct`` and
  ``surface→points`` legs and reassembles the rest from cache; a
  single-panel change re-traces only the legs touching that panel.

Environment mutations are reconciled through
:meth:`~repro.geometry.environment.Environment.dirty_regions`: each
mutation records the AABB it touched, and the simulator purges only the
cached legs whose corridor intersects a changed region (legs that trace
wall reflections are treated as unbounded).  Mutations the environment
cannot attribute fall back to a full leg-cache purge — never a stale
answer.

Cold builds can fan the independent per-leg traces across a thread
pool (``parallel_workers``; numpy releases the GIL inside the
vectorized geometry kernels).  Assembly is order-preserving, so the
result is bit-identical to a serial build at any worker count.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.errors import SimulationError
from ..geometry.environment import Environment
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import OperationMode
from ..telemetry import Telemetry
from .links import (
    aabb_overlap,
    elements_to_elements,
    elements_to_points,
    leg_aabb,
    node_to_elements,
    node_to_points,
)
from .model import ChannelModel
from .nodes import RadioNode
from .tracer import PanelObstacle

#: Inflation (m) applied to leg corridors and obstacle footprints so
#: the AABB intersection tests stay conservative against the geometry
#: kernels' epsilon tolerances.
_CORRIDOR_PAD = 1e-3


def _points_digest(points: np.ndarray) -> str:
    data = np.ascontiguousarray(np.asarray(points, dtype=float))
    return hashlib.sha1(data.tobytes()).hexdigest()


def _panel_digest(panel: SurfacePanel) -> str:
    """Digest of everything that shapes a panel's element geometry.

    Hashes the raw float bytes of ``center``/``normal``/``up`` (a
    rendered ``precision=6`` string would collide panels differing
    only beyond 1e-6) plus the lattice shape, pitch, element pattern,
    and operation mode — so a re-oriented or re-gridded panel can
    never serve another panel's cached legs.
    """
    h = hashlib.sha1()
    h.update(panel.panel_id.encode())
    h.update(panel.spec.design.encode())
    h.update(repr(panel.shape).encode())
    for vec in (panel.center, panel.normal, panel.up):
        h.update(np.ascontiguousarray(np.asarray(vec, dtype=float)).tobytes())
    h.update(
        repr(
            (
                panel.spec.element_pitch_m,
                panel.spec.element_gain_dbi,
                panel.spec.element_cos_exponent,
                panel.spec.operation_mode.name,
            )
        ).encode()
    )
    return h.hexdigest()


def _node_digest(node: RadioNode) -> str:
    """Digest of a radio node's antenna geometry and pattern."""
    h = hashlib.sha1()
    h.update(node.node_id.encode())
    h.update(np.ascontiguousarray(node.positions, dtype=float).tobytes())
    h.update(np.ascontiguousarray(node.boresight, dtype=float).tobytes())
    p = node.pattern
    h.update(repr((p.peak_gain_linear, p.cos_exponent, p.front_only)).encode())
    return h.hexdigest()


def _panel_aabb(
    panel: SurfacePanel, pad: float
) -> Tuple[np.ndarray, np.ndarray]:
    """AABB of the panel rectangle, inflated by ``pad``."""
    u, v = panel.plane_axes()
    extent = np.abs(u) * (panel.width_m / 2.0) + np.abs(v) * (
        panel.height_m / 2.0
    )
    return panel.center - extent - pad, panel.center + extent + pad


@dataclass
class _LegEntry:
    """One cached leg: the traced gains plus its ray-corridor AABB.

    ``lo is None`` marks an unbounded corridor (reflection-enriched
    direct legs bounce off walls anywhere in the scene), which any
    attributed environment mutation purges.

    ``prefetched`` marks an entry warmed speculatively and not yet
    served to a build — the flag clears on first hit (counted as
    ``channel.prefetch_hits``) and a flagged entry dropped by a purge
    or eviction counts as ``channel.prefetch_wasted``.
    """

    value: np.ndarray
    lo: Optional[np.ndarray]
    hi: Optional[np.ndarray]
    prefetched: bool = False


@dataclass
class _LegTask:
    """One leg the current build needs (cached or about to be traced)."""

    slot: Tuple[str, ...]
    name: str
    key: str
    lo: Optional[np.ndarray]
    hi: Optional[np.ndarray]
    fn: Callable[[], np.ndarray]
    attrs: Dict[str, object] = field(default_factory=dict)


class ChannelSimulator:
    """Builds :class:`ChannelModel` objects for a radio environment.

    Args:
        env: the environment (walls, obstacles, rooms).
        frequency_hz: carrier for all traced paths.
        include_reflections: trace first-order wall bounces on direct
            node→point legs.
        include_panel_blockage: treat surface panels as thin obstacles
            for paths not terminating on them (the §2.1 unintended
            blocking hazard).
        max_cascade_distance_m: skip surface-pair interactions farther
            apart than this (their second-order term is negligible).
        cache_size: LRU bound on cached (assembled) channel models; the
            oldest entry is evicted when exceeded, and entries built
            against a stale environment version are purged eagerly.
        leg_cache_size: LRU bound on individually cached legs; ``0``
            disables leg caching entirely (the old monolithic
            behavior — every model-cache miss re-traces all legs).
        parallel_workers: trace missing legs through a thread pool of
            this size (``<=1`` = serial).  Results are bit-identical
            to serial at any worker count.
        telemetry: where cache counters and per-leg trace spans go;
            defaults to a private instance.
    """

    def __init__(
        self,
        env: Environment,
        frequency_hz: float,
        include_reflections: bool = True,
        include_panel_blockage: bool = True,
        max_cascade_distance_m: float = 30.0,
        cache_size: int = 32,
        leg_cache_size: int = 512,
        parallel_workers: int = 0,
        telemetry: Optional[Telemetry] = None,
    ):
        if frequency_hz <= 0:
            raise SimulationError("carrier frequency must be positive")
        if cache_size < 1:
            raise SimulationError("cache_size must be at least 1")
        if leg_cache_size < 0:
            raise SimulationError("leg_cache_size must be >= 0")
        self.env = env
        self.frequency_hz = frequency_hz
        self.include_reflections = include_reflections
        self.include_panel_blockage = include_panel_blockage
        self.max_cascade_distance_m = max_cascade_distance_m
        self.cache_size = cache_size
        self.leg_cache_size = leg_cache_size
        self.parallel_workers = parallel_workers
        self.telemetry = telemetry or Telemetry()
        self._cache: "OrderedDict[str, Tuple[int, ChannelModel]]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._last_version = env.version
        self._legs: "OrderedDict[str, _LegEntry]" = OrderedDict()
        self._leg_version = env.version
        self._leg_hits = 0
        self._legs_retraced = 0
        self._prefetched_legs = 0
        self._prefetch_hits = 0
        self._prefetch_wasted = 0

    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the assembled-model cache."""
        return (self._cache_hits, self._cache_misses)

    @property
    def leg_cache_stats(self) -> Tuple[int, int]:
        """(legs served from cache, legs traced) since construction."""
        return (self._leg_hits, self._legs_retraced)

    @property
    def prefetch_stats(self) -> Tuple[int, int, int]:
        """(legs prefetched, prefetch hits, prefetch wasted)."""
        return (self._prefetched_legs, self._prefetch_hits, self._prefetch_wasted)

    def _cache_key(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> str:
        parts = [
            str(self.env.version),
            _node_digest(ap),
            _points_digest(points),
        ]
        parts.extend(sorted(_panel_digest(p) for p in panels))
        return hashlib.sha1("||".join(parts).encode()).hexdigest()

    def _obstacles_excluding(
        self,
        panels: Sequence[SurfacePanel],
        exclude: Iterable[SurfacePanel],
    ) -> List[PanelObstacle]:
        if not self.include_panel_blockage:
            return []
        excluded = {p.panel_id for p in exclude}
        return [
            PanelObstacle(p) for p in panels if p.panel_id not in excluded
        ]

    # ------------------------------------------------------------------

    def build(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> ChannelModel:
        """Trace all legs and assemble the cascade channel model.

        ``points`` is ``(K, 3)``.  Assembled models are cached until
        the environment or any panel geometry changes; individual legs
        outlive that, invalidated only when a change intersects their
        ray corridor.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = [p.panel_id for p in panels]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate panel ids: {ids}")
        self._purge_stale()
        self._sync_leg_cache()
        key = self._cache_key(ap, points, panels)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._cache_hits += 1
            self.telemetry.counter("channel.cache_hits")
            return cached[1]
        self._cache_misses += 1
        self.telemetry.counter("channel.cache_misses")

        model = self._assemble(ap, points, panels)

        # Evict before inserting so the cache never transiently exceeds
        # its bound and the new entry can't push out a live one's slot.
        while len(self._cache) >= self.cache_size:
            self._cache.popitem(last=False)
            self.telemetry.counter("channel.cache_evictions")
        self._cache[key] = (self.env.version, model)
        self.telemetry.gauge("channel.cache_size", len(self._cache))
        return model

    # ------------------------------------------------------------------
    # leg-level build
    # ------------------------------------------------------------------

    def _plan_legs(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> List[_LegTask]:
        """Every leg this build needs, with cache keys and corridors."""
        env, freq = self.env, self.frequency_hz
        pad = _CORRIDOR_PAD
        digests = {p.panel_id: _panel_digest(p) for p in panels}
        bounds = {p.panel_id: _panel_aabb(p, pad) for p in panels}
        ap_digest = _node_digest(ap)
        pts_digest = _points_digest(points)

        def obstacle_digest(
            excluded: Tuple[str, ...],
            lo: Optional[np.ndarray],
            hi: Optional[np.ndarray],
        ) -> str:
            # Only obstacles whose footprint intersects the leg's ray
            # corridor can perturb it; panels outside stay out of the
            # key, so their motion never invalidates this leg.
            if not self.include_panel_blockage:
                return "-"
            parts = []
            for q in panels:
                if q.panel_id in excluded:
                    continue
                if lo is not None:
                    q_lo, q_hi = bounds[q.panel_id]
                    if not aabb_overlap(lo, hi, q_lo, q_hi):
                        continue
                parts.append(digests[q.panel_id])
            return hashlib.sha1("|".join(sorted(parts)).encode()).hexdigest()

        def leg_key(*parts: str) -> str:
            return hashlib.sha1("||".join(parts).encode()).hexdigest()

        plan: List[_LegTask] = []

        # Direct leg: unbounded corridor when wall reflections are on
        # (bounce segments reach anywhere in the scene).
        if self.include_reflections:
            d_lo: Optional[np.ndarray] = None
            d_hi: Optional[np.ndarray] = None
        else:
            d_lo, d_hi = leg_aabb(ap.positions, points, pad=pad)
        direct_obstacles = self._obstacles_excluding(panels, ())
        plan.append(
            _LegTask(
                slot=("direct",),
                name="direct",
                key=leg_key(
                    "direct",
                    ap_digest,
                    pts_digest,
                    obstacle_digest((), d_lo, d_hi),
                ),
                lo=d_lo,
                hi=d_hi,
                fn=lambda obs=direct_obstacles: node_to_points(
                    env,
                    ap,
                    points,
                    freq,
                    panel_obstacles=obs,
                    include_reflections=self.include_reflections,
                ),
            )
        )

        for panel in panels:
            pid = panel.panel_id
            others = self._obstacles_excluding(panels, (panel,))
            a_lo, a_hi = leg_aabb(
                ap.positions, bounds[pid][0], bounds[pid][1], pad=0.0
            )
            plan.append(
                _LegTask(
                    slot=("a2s", pid),
                    name="ap-to-surface",
                    attrs={"panel": pid},
                    key=leg_key(
                        "a2s",
                        ap_digest,
                        digests[pid],
                        obstacle_digest((pid,), a_lo, a_hi),
                    ),
                    lo=a_lo,
                    hi=a_hi,
                    fn=lambda p=panel, obs=others: node_to_elements(
                        env, ap, p, freq, panel_obstacles=obs
                    ),
                )
            )
            s_lo, s_hi = leg_aabb(
                points, bounds[pid][0], bounds[pid][1], pad=0.0
            )
            plan.append(
                _LegTask(
                    slot=("s2p", pid),
                    name="surface-to-points",
                    attrs={"panel": pid},
                    key=leg_key(
                        "s2p",
                        digests[pid],
                        pts_digest,
                        obstacle_digest((pid,), s_lo, s_hi),
                    ),
                    lo=s_lo,
                    hi=s_hi,
                    fn=lambda p=panel, obs=others: elements_to_points(
                        env, p, points, freq, panel_obstacles=obs
                    ),
                )
            )

        for source in panels:
            for target in panels:
                if source.panel_id == target.panel_id:
                    continue
                gap = float(np.linalg.norm(source.center - target.center))
                if gap > self.max_cascade_distance_m:
                    continue
                if not self._panels_face_each_other(source, target):
                    continue
                sid, tid = source.panel_id, target.panel_id
                others = self._obstacles_excluding(panels, (source, target))
                p_lo, p_hi = leg_aabb(
                    bounds[sid][0],
                    bounds[sid][1],
                    bounds[tid][0],
                    bounds[tid][1],
                    pad=0.0,
                )
                plan.append(
                    _LegTask(
                        slot=("s2s", sid, tid),
                        name="surface-to-surface",
                        attrs={"source": sid, "target": tid},
                        key=leg_key(
                            "s2s",
                            digests[sid],
                            digests[tid],
                            obstacle_digest((sid, tid), p_lo, p_hi),
                        ),
                        lo=p_lo,
                        hi=p_hi,
                        fn=lambda s=source, t=target, obs=others: (
                            elements_to_elements(
                                env, s, t, freq, panel_obstacles=obs
                            )
                        ),
                    )
                )
        return plan

    def _assemble(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> ChannelModel:
        """Serve legs from the leg cache, trace the rest, assemble."""
        plan = self._plan_legs(ap, points, panels)
        use_legs = self.leg_cache_size > 0
        values: Dict[Tuple[str, ...], np.ndarray] = {}
        tasks: List[_LegTask] = []
        prefetch_hits = 0
        for task in plan:
            entry = self._legs.get(task.key) if use_legs else None
            if entry is not None:
                self._legs.move_to_end(task.key)
                if entry.prefetched:
                    entry.prefetched = False
                    prefetch_hits += 1
                values[task.slot] = entry.value
            else:
                tasks.append(task)
        hits = len(plan) - len(tasks)
        self._leg_hits += hits
        self._legs_retraced += len(tasks)
        self._prefetch_hits += prefetch_hits
        if hits:
            self.telemetry.counter("channel.leg_cache_hits", hits)
            self.telemetry.counter("channel.partial_rebuilds")
        if prefetch_hits:
            self.telemetry.counter("channel.prefetch_hits", prefetch_hits)
        if tasks:
            self.telemetry.counter("channel.legs_retraced", len(tasks))

        with self.telemetry.span(
            "channel-trace",
            points=int(points.shape[0]),
            panels=len(panels),
            legs=len(plan),
            retraced=len(tasks),
        ):
            self._trace_tasks(tasks, values)
        if use_legs:
            self.telemetry.gauge("channel.leg_cache_size", len(self._legs))

        ap_to_surface: Dict[str, np.ndarray] = {}
        surface_to_points: Dict[str, np.ndarray] = {}
        surface_to_surface: Dict[Tuple[str, str], np.ndarray] = {}
        direct = values[("direct",)]
        for slot, value in values.items():
            if slot[0] == "a2s":
                ap_to_surface[slot[1]] = value
            elif slot[0] == "s2p":
                surface_to_points[slot[1]] = value
            elif slot[0] == "s2s":
                surface_to_surface[(slot[1], slot[2])] = value
        return ChannelModel(
            points=points,
            direct=direct,
            ap_to_surface=ap_to_surface,
            surface_to_points=surface_to_points,
            surface_to_surface=surface_to_surface,
            frequency_hz=self.frequency_hz,
        )

    def _trace_tasks(
        self,
        tasks: List[_LegTask],
        values: Dict[Tuple[str, ...], np.ndarray],
        prefetched: bool = False,
    ) -> None:
        """Trace legs in plan order, serially or across the pool.

        The map is order-preserving — each leg is independent, so
        assembly (and the leg cache) sees exactly the serial results at
        any worker count.  Per-leg telemetry is emitted post-trace from
        this thread, identically for the serial and pooled paths, so
        sim-only exports are byte-identical regardless of
        ``parallel_workers``.
        """
        if not tasks:
            return

        def timed(task: _LegTask) -> Tuple[np.ndarray, float]:
            t0 = time.perf_counter()
            return task.fn(), time.perf_counter() - t0

        workers = min(self.parallel_workers, len(tasks))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                traced = list(pool.map(timed, tasks))
        else:
            traced = [timed(task) for task in tasks]
        for task, (value, wall_s) in zip(tasks, traced):
            self.telemetry.event(
                "leg-trace",
                kind=task.name,
                speculative=prefetched,
                wall_trace_s=wall_s,
                **task.attrs,
            )
            values[task.slot] = value
            self._store_leg(task, value, prefetched=prefetched)

    def prefetch(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
        legs: Sequence[str] = ("direct", "s2p"),
    ) -> int:
        """Speculatively warm the leg LRU for a predicted point set.

        Traces the selected leg families (slots ``"direct"``,
        ``"a2s"``, ``"s2p"``, ``"s2s"``) for ``points`` — typically a
        mobility model's ``peek``-predicted next positions — off the
        reaction path.  A later ``build`` whose plan lands on the same
        keys serves them as ordinary cache hits (counted once as
        ``channel.prefetch_hits``); warmed legs purged or evicted
        before any build uses them count as ``channel.prefetch_wasted``.

        Prefetching never changes outputs: the leg key digests the
        exact float bytes of the point set, so a warmed leg is served
        only to a build computing the identical trace, and assembly is
        bit-identical whether the leg was traced here or inline.

        Returns the number of legs traced (0 when everything wanted is
        already cached, or leg caching is disabled).
        """
        if self.leg_cache_size <= 0:
            return 0
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = [p.panel_id for p in panels]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate panel ids: {ids}")
        self._sync_leg_cache()
        wanted = set(legs)
        plan = self._plan_legs(ap, points, panels)
        tasks = [
            t
            for t in plan
            if t.slot[0] in wanted and t.key not in self._legs
        ]
        if not tasks:
            return 0
        with self.telemetry.span(
            "channel-prefetch",
            points=int(points.shape[0]),
            panels=len(panels),
            legs=len(tasks),
        ):
            self._trace_tasks(tasks, {}, prefetched=True)
        self._prefetched_legs += len(tasks)
        self.telemetry.counter("channel.prefetch_legs", len(tasks))
        self.telemetry.gauge("channel.leg_cache_size", len(self._legs))
        return len(tasks)

    def _count_wasted(self, count: int) -> None:
        if count:
            self._prefetch_wasted += count
            self.telemetry.counter("channel.prefetch_wasted", count)

    def _store_leg(
        self, task: _LegTask, value: np.ndarray, prefetched: bool = False
    ) -> None:
        if self.leg_cache_size <= 0:
            return
        while len(self._legs) >= self.leg_cache_size:
            _, evicted = self._legs.popitem(last=False)
            self.telemetry.counter("channel.leg_cache_evictions")
            if evicted.prefetched:
                self._count_wasted(1)
        self._legs[task.key] = _LegEntry(
            value, task.lo, task.hi, prefetched=prefetched
        )

    def _sync_leg_cache(self) -> None:
        """Reconcile the leg cache with environment mutations.

        Attributed mutations purge only the legs whose ray corridor
        intersects a dirty region (unbounded legs always); mutations
        the environment cannot attribute purge everything.
        """
        version = self.env.version
        if version == self._leg_version:
            return
        regions = self.env.dirty_regions(self._leg_version)
        self._leg_version = version
        if not self._legs:
            return
        if regions is None:
            purged = len(self._legs)
            wasted = sum(1 for e in self._legs.values() if e.prefetched)
            self._legs.clear()
            self.telemetry.counter("channel.leg_cache_full_purges")
            self.telemetry.counter("channel.legs_purged", purged)
            self._count_wasted(wasted)
        else:
            pad = _CORRIDOR_PAD
            drop = [
                key
                for key, entry in self._legs.items()
                if entry.lo is None
                or any(
                    aabb_overlap(entry.lo, entry.hi, lo - pad, hi + pad)
                    for lo, hi in regions
                )
            ]
            wasted = sum(1 for key in drop if self._legs[key].prefetched)
            for key in drop:
                del self._legs[key]
            if drop:
                self.telemetry.counter("channel.legs_purged", len(drop))
            self._count_wasted(wasted)
        self.telemetry.gauge("channel.leg_cache_size", len(self._legs))

    # ------------------------------------------------------------------

    def _purge_stale(self) -> None:
        """Eagerly drop models built against an older environment version.

        Their keys can never hit again (the key embeds the version), so
        keeping them would only crowd live entries out of the LRU.
        """
        version = self.env.version
        if version == self._last_version:
            return
        self._last_version = version
        stale = [k for k, (v, _) in self._cache.items() if v != version]
        for k in stale:
            del self._cache[k]
        if stale:
            self.telemetry.counter("channel.cache_stale_evictions", len(stale))
            self.telemetry.gauge("channel.cache_size", len(self._cache))

    @staticmethod
    def _panels_face_each_other(a: SurfacePanel, b: SurfacePanel) -> bool:
        """Geometric cull: reflective panels must be in front of each other."""
        def front(panel: SurfacePanel, point: np.ndarray) -> bool:
            if panel.spec.operation_mode is not OperationMode.REFLECTIVE:
                return True
            return float(np.dot(point - panel.center, panel.normal)) > 0.0

        return front(a, b.center) and front(b, a.center)

    # ------------------------------------------------------------------

    def point_channel(
        self,
        ap: RadioNode,
        point: Sequence[float],
        panels: Sequence[SurfacePanel],
        configs: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Channel ``(M,)`` to a single point with the panels' live configs."""
        model = self.build(ap, np.asarray(point, dtype=float)[None, :], panels)
        if configs is None:
            configs = {
                p.panel_id: p.configuration.coefficients().reshape(-1)
                for p in panels
            }
        return model.evaluate(configs)[0]

    def invalidate(self) -> None:
        """Drop all cached models and legs, and reset hit/miss stats.

        The monotonic ``channel.cache_invalidations`` counter keeps
        counting across invalidations; ``cache_stats``,
        ``leg_cache_stats``, and the cache-size gauges restart from a
        clean slate so the numbers after an invalidation describe only
        the new epoch.
        """
        self._cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0
        self._last_version = self.env.version
        self._legs.clear()
        self._leg_version = self.env.version
        self._leg_hits = 0
        self._legs_retraced = 0
        self._prefetched_legs = 0
        self._prefetch_hits = 0
        self._prefetch_wasted = 0
        self.telemetry.counter("channel.cache_invalidations")
        self.telemetry.gauge("channel.cache_size", 0)
        self.telemetry.gauge("channel.leg_cache_size", 0)


def live_configs(panels: Sequence[SurfacePanel]) -> Dict[str, np.ndarray]:
    """The panels' currently actuated configurations as coefficient vectors."""
    return {
        p.panel_id: p.configuration.coefficients().reshape(-1) for p in panels
    }
