"""The wireless channel simulator SurfOS orchestrates with.

This is the repository's substitute for the AutoMS ray tracer the paper
uses: given surface specifications and the 3-D environment model, it
outputs the channel matrices between the surfaces and endpoints on the
relevant frequency bands (§3.2 "Modeling interactions").

Channel builds are cached against the environment's mutation counter,
so the runtime daemon pays for re-tracing only when geometry actually
changed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SimulationError
from ..geometry.environment import Environment
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import OperationMode
from ..telemetry import Telemetry
from .links import (
    elements_to_elements,
    elements_to_points,
    node_to_elements,
    node_to_points,
)
from .model import ChannelModel
from .nodes import RadioNode
from .tracer import PanelObstacle


def _points_digest(points: np.ndarray) -> str:
    data = np.ascontiguousarray(np.asarray(points, dtype=float))
    return hashlib.sha1(data.tobytes()).hexdigest()


def _panel_digest(panel: SurfacePanel) -> str:
    parts = (
        panel.panel_id,
        panel.spec.design,
        str(panel.shape),
        np.array2string(panel.center, precision=6),
        np.array2string(panel.normal, precision=6),
    )
    return "|".join(parts)


class ChannelSimulator:
    """Builds :class:`ChannelModel` objects for a radio environment.

    Args:
        env: the environment (walls, obstacles, rooms).
        frequency_hz: carrier for all traced paths.
        include_reflections: trace first-order wall bounces on direct
            node→point legs.
        include_panel_blockage: treat surface panels as thin obstacles
            for paths not terminating on them (the §2.1 unintended
            blocking hazard).
        max_cascade_distance_m: skip surface-pair interactions farther
            apart than this (their second-order term is negligible).
        cache_size: LRU bound on cached channel builds; the oldest
            entry is evicted when exceeded, and entries built against
            a stale environment version are purged eagerly.
        telemetry: where cache counters and per-leg trace spans go;
            defaults to a private instance.
    """

    def __init__(
        self,
        env: Environment,
        frequency_hz: float,
        include_reflections: bool = True,
        include_panel_blockage: bool = True,
        max_cascade_distance_m: float = 30.0,
        cache_size: int = 32,
        telemetry: Optional[Telemetry] = None,
    ):
        if frequency_hz <= 0:
            raise SimulationError("carrier frequency must be positive")
        if cache_size < 1:
            raise SimulationError("cache_size must be at least 1")
        self.env = env
        self.frequency_hz = frequency_hz
        self.include_reflections = include_reflections
        self.include_panel_blockage = include_panel_blockage
        self.max_cascade_distance_m = max_cascade_distance_m
        self.cache_size = cache_size
        self.telemetry = telemetry or Telemetry()
        self._cache: "OrderedDict[str, Tuple[int, ChannelModel]]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._last_version = env.version

    # ------------------------------------------------------------------

    @property
    def cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the channel-build cache."""
        return (self._cache_hits, self._cache_misses)

    def _cache_key(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> str:
        parts = [
            str(self.env.version),
            ap.node_id,
            _points_digest(ap.positions),
            _points_digest(points),
        ]
        parts.extend(sorted(_panel_digest(p) for p in panels))
        return hashlib.sha1("||".join(parts).encode()).hexdigest()

    def _obstacles_excluding(
        self,
        panels: Sequence[SurfacePanel],
        exclude: Iterable[SurfacePanel],
    ) -> List[PanelObstacle]:
        if not self.include_panel_blockage:
            return []
        excluded = {p.panel_id for p in exclude}
        return [
            PanelObstacle(p) for p in panels if p.panel_id not in excluded
        ]

    # ------------------------------------------------------------------

    def build(
        self,
        ap: RadioNode,
        points: np.ndarray,
        panels: Sequence[SurfacePanel],
    ) -> ChannelModel:
        """Trace all legs and assemble the cascade channel model.

        ``points`` is ``(K, 3)``.  Results are cached until the
        environment or any panel geometry changes.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = [p.panel_id for p in panels]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate panel ids: {ids}")
        self._purge_stale()
        key = self._cache_key(ap, points, panels)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._cache_hits += 1
            self.telemetry.counter("channel.cache_hits")
            return cached[1]
        self._cache_misses += 1
        self.telemetry.counter("channel.cache_misses")

        freq = self.frequency_hz
        with self.telemetry.span(
            "channel-trace", points=int(points.shape[0]), panels=len(panels)
        ):
            with self.telemetry.span("direct"):
                direct = node_to_points(
                    self.env,
                    ap,
                    points,
                    freq,
                    panel_obstacles=self._obstacles_excluding(panels, ()),
                    include_reflections=self.include_reflections,
                )
            ap_to_surface: Dict[str, np.ndarray] = {}
            surface_to_points: Dict[str, np.ndarray] = {}
            for panel in panels:
                others = self._obstacles_excluding(panels, (panel,))
                with self.telemetry.span("ap-to-surface", panel=panel.panel_id):
                    ap_to_surface[panel.panel_id] = node_to_elements(
                        self.env, ap, panel, freq, panel_obstacles=others
                    )
                with self.telemetry.span(
                    "surface-to-points", panel=panel.panel_id
                ):
                    surface_to_points[panel.panel_id] = elements_to_points(
                        self.env, panel, points, freq, panel_obstacles=others
                    )
            surface_to_surface: Dict[Tuple[str, str], np.ndarray] = {}
            for source in panels:
                for target in panels:
                    if source.panel_id == target.panel_id:
                        continue
                    gap = float(np.linalg.norm(source.center - target.center))
                    if gap > self.max_cascade_distance_m:
                        continue
                    if not self._panels_face_each_other(source, target):
                        continue
                    others = self._obstacles_excluding(panels, (source, target))
                    with self.telemetry.span(
                        "surface-to-surface",
                        source=source.panel_id,
                        target=target.panel_id,
                    ):
                        surface_to_surface[
                            (source.panel_id, target.panel_id)
                        ] = elements_to_elements(
                            self.env, source, target, freq, panel_obstacles=others
                        )
        model = ChannelModel(
            points=points,
            direct=direct,
            ap_to_surface=ap_to_surface,
            surface_to_points=surface_to_points,
            surface_to_surface=surface_to_surface,
            frequency_hz=freq,
        )
        self._cache[key] = (self.env.version, model)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.telemetry.counter("channel.cache_evictions")
        self.telemetry.gauge("channel.cache_size", len(self._cache))
        return model

    def _purge_stale(self) -> None:
        """Eagerly drop entries built against an older environment version.

        Their keys can never hit again (the key embeds the version), so
        keeping them would only crowd live entries out of the LRU.
        """
        version = self.env.version
        if version == self._last_version:
            return
        self._last_version = version
        stale = [k for k, (v, _) in self._cache.items() if v != version]
        for k in stale:
            del self._cache[k]
        if stale:
            self.telemetry.counter("channel.cache_stale_evictions", len(stale))
            self.telemetry.gauge("channel.cache_size", len(self._cache))

    @staticmethod
    def _panels_face_each_other(a: SurfacePanel, b: SurfacePanel) -> bool:
        """Geometric cull: reflective panels must be in front of each other."""
        def front(panel: SurfacePanel, point: np.ndarray) -> bool:
            if panel.spec.operation_mode is not OperationMode.REFLECTIVE:
                return True
            return float(np.dot(point - panel.center, panel.normal)) > 0.0

        return front(a, b.center) and front(b, a.center)

    # ------------------------------------------------------------------

    def point_channel(
        self,
        ap: RadioNode,
        point: Sequence[float],
        panels: Sequence[SurfacePanel],
        configs: Optional[Mapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Channel ``(M,)`` to a single point with the panels' live configs."""
        model = self.build(ap, np.asarray(point, dtype=float)[None, :], panels)
        if configs is None:
            configs = {
                p.panel_id: p.configuration.coefficients().reshape(-1)
                for p in panels
            }
        return model.evaluate(configs)[0]

    def invalidate(self) -> None:
        """Drop all cached channel builds and reset hit/miss stats.

        The monotonic ``channel.cache_invalidations`` counter keeps
        counting across invalidations; ``cache_stats`` and the
        ``channel.cache_size`` gauge restart from a clean slate so the
        numbers after an invalidation describe only the new epoch.
        """
        self._cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0
        self._last_version = self.env.version
        self.telemetry.counter("channel.cache_invalidations")
        self.telemetry.gauge("channel.cache_size", 0)


def live_configs(panels: Sequence[SurfacePanel]) -> Dict[str, np.ndarray]:
    """The panels' currently actuated configurations as coefficient vectors."""
    return {
        p.panel_id: p.configuration.coefficients().reshape(-1) for p in panels
    }
