"""Vectorized ray-model primitives.

Everything the channel builder needs reduces to two queries over many
point pairs at once:

* the *penetration amplitude* of every straight segment between two
  point sets (walls and boxes crossed), and
* first-order *specular reflection* paths between two points via the
  environment's reflective walls (image method).

Both run on the precompiled broadcast kernels in
:mod:`~repro.channel.geomkernels`: the environment's walls and boxes
are stacked into contiguous arrays once per
:attr:`Environment.version`, so a query over ``n`` segments is a single
``(n × n_obstacles)`` pass instead of a per-obstacle Python loop — a
single channel build evaluates hundreds of thousands of segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..geometry.environment import Environment
from ..geometry.shapes import Wall
from ..geometry.vec import as_vec3
from ..surfaces.panel import SurfacePanel
from .geomkernels import PanelStack, compiled_geometry

_EPS = 1e-9


@dataclass(frozen=True)
class PanelObstacle:
    """A surface panel acting as a (thin rectangular) obstacle.

    Panels block signals that try to pass *through* them with the
    spec's through-loss — the §2.1 "unintended blocking" hazard.  Used
    for all legs that do not terminate on the panel itself.
    """

    panel: SurfacePanel

    def crossing_mask(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Which segments ``a[i]→b[i]`` cross the panel rectangle."""
        n = self.panel.normal
        c = self.panel.center
        u, v = self.panel.plane_axes()
        half_w = self.panel.width_m / 2.0
        half_h = self.panel.height_m / 2.0
        da = (a - c[None, :]) @ n
        db = (b - c[None, :]) @ n
        crosses_plane = (da * db) < -_EPS
        denom = np.where(np.abs(da - db) < _EPS, 1.0, da - db)
        t = da / denom
        hit = a + t[:, None] * (b - a)
        rel = hit - c[None, :]
        return (
            crosses_plane
            & (np.abs(rel @ u) <= half_w + _EPS)
            & (np.abs(rel @ v) <= half_h + _EPS)
        )

    def loss_db(self, frequency_hz: float) -> float:
        """Through-panel loss at a carrier."""
        return self.panel.spec.through_loss_db(frequency_hz)


def segment_loss_db(
    env: Environment,
    a: np.ndarray,
    b: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    exclude_walls: Sequence[Wall] = (),
) -> np.ndarray:
    """Total penetration loss (dB) for matched segment arrays.

    ``a`` and ``b`` are ``(n, 3)``; returns ``(n,)`` losses summing
    every wall, box, and panel obstacle each segment crosses.
    ``exclude_walls`` removes walls (e.g. the reflector of an image
    path) from consideration.
    """
    compiled = compiled_geometry(env)
    exclude = compiled.wall_indices(exclude_walls) if exclude_walls else None
    panels = PanelStack(panel_obstacles) if panel_obstacles else None
    return compiled.segment_loss_db(a, b, frequency_hz, panels, exclude)


def segment_amplitude(
    env: Environment,
    a: np.ndarray,
    b: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    exclude_walls: Sequence[Wall] = (),
) -> np.ndarray:
    """Linear amplitude factor for matched segment arrays."""
    loss = segment_loss_db(
        env, a, b, frequency_hz, panel_obstacles, exclude_walls
    )
    return 10.0 ** (-loss / 20.0)


@dataclass(frozen=True)
class ReflectionPath:
    """One first-order specular bounce between two points.

    Attributes:
        wall: the reflecting wall.
        bounce_point: where the path hits the wall.
        total_length: geometric length of both legs (m).
        amplitude_factor: reflectivity × penetration of everything else
            crossed along both legs (linear amplitude).
    """

    wall: Wall
    bounce_point: np.ndarray
    total_length: float
    amplitude_factor: float


def reflection_paths(
    env: Environment,
    a: Sequence[float],
    b: Sequence[float],
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
) -> List[ReflectionPath]:
    """All single-bounce wall reflections between two points.

    Image method: mirror ``a`` across each reflective wall, intersect
    the mirror→``b`` segment with the wall, and require the bounce
    point to lie on the wall rectangle.  The reflecting wall itself is
    excluded from the legs' penetration loss.
    """
    a3, b3 = as_vec3(a)[None, :], as_vec3(b)[None, :]
    compiled = compiled_geometry(env)
    panels = PanelStack(panel_obstacles) if panel_obstacles else None
    paths: List[ReflectionPath] = []
    for index in compiled.reflective_wall_indices():
        valid, bounce, length, amp = compiled.reflection_legs(
            index, a3, b3, frequency_hz, panels
        )
        if not valid[0, 0]:
            continue
        paths.append(
            ReflectionPath(
                wall=compiled.walls[index],
                bounce_point=bounce[0, 0],
                total_length=float(length[0, 0]),
                amplitude_factor=float(amp[0, 0]),
            )
        )
    return paths
