"""Vectorized ray-model primitives.

Everything the channel builder needs reduces to two queries over many
point pairs at once:

* the *penetration amplitude* of every straight segment between two
  point sets (walls and boxes crossed), and
* first-order *specular reflection* paths between two points via the
  environment's reflective walls (image method).

Both are vectorized over numpy arrays because a single channel build
evaluates hundreds of thousands of segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.environment import Environment
from ..geometry.shapes import Box, Wall
from ..geometry.vec import as_vec3
from ..surfaces.panel import SurfacePanel

_EPS = 1e-9


def _wall_crossing_mask(
    wall: Wall, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Boolean mask of which segments ``a[i]→b[i]`` cross a wall.

    ``a`` and ``b`` are ``(n, 3)`` arrays of matched endpoints.
    """
    p, q = wall.start[:2], wall.end[:2]
    s = q - p
    r = b[:, :2] - a[:, :2]
    denom = r[:, 0] * s[1] - r[:, 1] * s[0]
    ok = np.abs(denom) > _EPS
    safe = np.where(ok, denom, 1.0)
    ap = p[None, :] - a[:, :2]
    t = (ap[:, 0] * s[1] - ap[:, 1] * s[0]) / safe
    u = (ap[:, 0] * r[:, 1] - ap[:, 1] * r[:, 0]) / safe
    z = a[:, 2] + t * (b[:, 2] - a[:, 2])
    return (
        ok
        & (t > _EPS)
        & (t < 1.0 - _EPS)
        & (u >= -_EPS)
        & (u <= 1.0 + _EPS)
        & (z >= wall.z_min - _EPS)
        & (z <= wall.z_max + _EPS)
    )


def _box_crossing_mask(box: Box, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean mask of which segments ``a[i]→b[i]`` pass through a box."""
    d = b - a
    t_enter = np.zeros(a.shape[0])
    t_exit = np.ones(a.shape[0])
    inside_slabs = np.ones(a.shape[0], dtype=bool)
    for axis in range(3):
        da = d[:, axis]
        parallel = np.abs(da) < _EPS
        safe = np.where(parallel, 1.0, da)
        t1 = (box.lo[axis] - a[:, axis]) / safe
        t2 = (box.hi[axis] - a[:, axis]) / safe
        lo_t = np.minimum(t1, t2)
        hi_t = np.maximum(t1, t2)
        # Parallel segments must start inside the slab to ever hit.
        in_slab = (a[:, axis] >= box.lo[axis] - _EPS) & (
            a[:, axis] <= box.hi[axis] + _EPS
        )
        inside_slabs &= np.where(parallel, in_slab, True)
        t_enter = np.where(parallel, t_enter, np.maximum(t_enter, lo_t))
        t_exit = np.where(parallel, t_exit, np.minimum(t_exit, hi_t))
    return inside_slabs & (t_enter < t_exit) & (t_exit > _EPS) & (t_enter < 1.0 - _EPS)


@dataclass(frozen=True)
class PanelObstacle:
    """A surface panel acting as a (thin rectangular) obstacle.

    Panels block signals that try to pass *through* them with the
    spec's through-loss — the §2.1 "unintended blocking" hazard.  Used
    for all legs that do not terminate on the panel itself.
    """

    panel: SurfacePanel

    def crossing_mask(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Which segments ``a[i]→b[i]`` cross the panel rectangle."""
        n = self.panel.normal
        c = self.panel.center
        u, v = self.panel.plane_axes()
        half_w = self.panel.width_m / 2.0
        half_h = self.panel.height_m / 2.0
        da = (a - c[None, :]) @ n
        db = (b - c[None, :]) @ n
        crosses_plane = (da * db) < -_EPS
        denom = np.where(np.abs(da - db) < _EPS, 1.0, da - db)
        t = da / denom
        hit = a + t[:, None] * (b - a)
        rel = hit - c[None, :]
        return (
            crosses_plane
            & (np.abs(rel @ u) <= half_w + _EPS)
            & (np.abs(rel @ v) <= half_h + _EPS)
        )

    def loss_db(self, frequency_hz: float) -> float:
        """Through-panel loss at a carrier."""
        return self.panel.spec.through_loss_db(frequency_hz)


def segment_loss_db(
    env: Environment,
    a: np.ndarray,
    b: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    exclude_walls: Sequence[Wall] = (),
) -> np.ndarray:
    """Total penetration loss (dB) for matched segment arrays.

    ``a`` and ``b`` are ``(n, 3)``; returns ``(n,)`` losses summing
    every wall, box, and panel obstacle each segment crosses.
    ``exclude_walls`` removes walls (e.g. the reflector of an image
    path) from consideration.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape != b.shape:
        raise ValueError(f"endpoint arrays differ: {a.shape} vs {b.shape}")
    loss = np.zeros(a.shape[0])
    excluded = {id(w) for w in exclude_walls}
    for wall in env.walls:
        if id(wall) in excluded:
            continue
        mask = _wall_crossing_mask(wall, a, b)
        if mask.any():
            loss[mask] += wall.material.penetration_loss_db(frequency_hz)
    for box in env.boxes:
        mask = _box_crossing_mask(box, a, b)
        if mask.any():
            loss[mask] += box.material.penetration_loss_db(frequency_hz)
    for obstacle in panel_obstacles:
        mask = obstacle.crossing_mask(a, b)
        if mask.any():
            loss[mask] += obstacle.loss_db(frequency_hz)
    return loss


def segment_amplitude(
    env: Environment,
    a: np.ndarray,
    b: np.ndarray,
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
    exclude_walls: Sequence[Wall] = (),
) -> np.ndarray:
    """Linear amplitude factor for matched segment arrays."""
    loss = segment_loss_db(
        env, a, b, frequency_hz, panel_obstacles, exclude_walls
    )
    return 10.0 ** (-loss / 20.0)


@dataclass(frozen=True)
class ReflectionPath:
    """One first-order specular bounce between two points.

    Attributes:
        wall: the reflecting wall.
        bounce_point: where the path hits the wall.
        total_length: geometric length of both legs (m).
        amplitude_factor: reflectivity × penetration of everything else
            crossed along both legs (linear amplitude).
    """

    wall: Wall
    bounce_point: np.ndarray
    total_length: float
    amplitude_factor: float


def reflection_paths(
    env: Environment,
    a: Sequence[float],
    b: Sequence[float],
    frequency_hz: float,
    panel_obstacles: Sequence[PanelObstacle] = (),
) -> List[ReflectionPath]:
    """All single-bounce wall reflections between two points.

    Image method: mirror ``a`` across each reflective wall, intersect
    the mirror→``b`` segment with the wall, and require the bounce
    point to lie on the wall rectangle.  The reflecting wall itself is
    excluded from the legs' penetration loss.
    """
    a3, b3 = as_vec3(a), as_vec3(b)
    paths: List[ReflectionPath] = []
    for wall in env.reflective_walls():
        mirrored = wall.mirror_point(a3)
        bounce = wall.intersect_segment(mirrored, b3)
        if bounce is None:
            continue
        leg1 = float(np.linalg.norm(bounce - a3))
        leg2 = float(np.linalg.norm(b3 - bounce))
        if leg1 < _EPS or leg2 < _EPS:
            continue
        amp = wall.material.reflectivity
        amp *= float(
            segment_amplitude(
                env,
                a3[None, :],
                bounce[None, :],
                frequency_hz,
                panel_obstacles,
                exclude_walls=(wall,),
            )[0]
        )
        amp *= float(
            segment_amplitude(
                env,
                bounce[None, :],
                b3[None, :],
                frequency_hz,
                panel_obstacles,
                exclude_walls=(wall,),
            )[0]
        )
        if amp < 1e-8:
            continue
        paths.append(
            ReflectionPath(
                wall=wall,
                bounce_point=bounce,
                total_length=leg1 + leg2,
                amplitude_factor=amp,
            )
        )
    return paths
