"""Wideband channel evaluation: frequency-selective behavior.

Everything else in the simulator is narrowband (one carrier).  Real
links run OFDM over hundreds of megahertz, and multipath — wall bounces
plus the surface's own cascade — makes the channel *frequency
selective*: per-subcarrier SNR varies, and capacity must be summed over
subcarriers rather than read off the center frequency.

This module sweeps the ray model across subcarriers (path lengths are
frequency-independent, so each sweep is a rebuild at a shifted carrier)
and derives the OFDM metrics the orchestrator's monitoring/diagnosis
can reason about: per-subcarrier SNR, frequency-selective capacity, RMS
delay-band flatness, and the coherence-bandwidth estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..em.noise import LinkBudget
from ..geometry.environment import Environment
from ..surfaces.panel import SurfacePanel
from .nodes import RadioNode
from .simulator import ChannelSimulator


def subcarrier_frequencies(
    center_hz: float, bandwidth_hz: float, count: int
) -> np.ndarray:
    """Evenly spaced subcarrier centers across an OFDM band."""
    if count < 2:
        raise SimulationError("need at least two subcarriers")
    if bandwidth_hz <= 0 or center_hz <= 0:
        raise SimulationError("center and bandwidth must be positive")
    half = bandwidth_hz / 2.0
    return np.linspace(center_hz - half, center_hz + half, count)


@dataclass(frozen=True)
class WidebandResponse:
    """Per-subcarrier channel response at one evaluation point.

    Attributes:
        frequencies_hz: subcarrier centers.
        gains: linear channel power gains per subcarrier
            (``‖h(f)‖²`` with transmit MRT per subcarrier).
    """

    frequencies_hz: np.ndarray
    gains: np.ndarray

    def __post_init__(self) -> None:
        f = np.asarray(self.frequencies_hz, dtype=float).reshape(-1)
        g = np.asarray(self.gains, dtype=float).reshape(-1)
        if f.shape != g.shape or f.size < 2:
            raise SimulationError("mismatched or too-short response arrays")
        object.__setattr__(self, "frequencies_hz", f)
        object.__setattr__(self, "gains", g)

    def snrs_db(self, budget: LinkBudget) -> np.ndarray:
        """Per-subcarrier SNR (equal power allocation, per-subcarrier noise)."""
        noise = budget.noise_watts / self.frequencies_hz.size
        tx = budget.tx_power_watts / self.frequencies_hz.size
        snr = tx * self.gains / noise
        return 10.0 * np.log10(np.maximum(snr, 1e-4))

    def capacity_bps(self, budget: LinkBudget) -> float:
        """OFDM capacity: per-subcarrier Shannon sum, equal power."""
        spacing = budget.bandwidth_hz / self.frequencies_hz.size
        noise = budget.noise_watts / self.frequencies_hz.size
        tx = budget.tx_power_watts / self.frequencies_hz.size
        snr = tx * self.gains / noise
        return float(spacing * np.sum(np.log2(1.0 + snr)))

    def flatness_db(self) -> float:
        """Peak-to-trough gain spread across the band (dB).

        ≈0 for a flat (single-path) channel; grows with multipath —
        the quantity the §3.3 broker watches for "smooth link
        conditions" demands like video streaming.
        """
        gains = np.maximum(self.gains, 1e-30)
        return float(10.0 * np.log10(gains.max() / gains.min()))

    def coherence_bandwidth_hz(self, threshold: float = 0.7) -> float:
        """Smallest lag at which spectral autocorrelation drops below
        ``threshold`` (the standard coherence-bandwidth estimate).

        Returns the full swept band when the channel never decorrelates.
        """
        amplitudes = np.sqrt(np.maximum(self.gains, 0.0))
        centered = amplitudes - amplitudes.mean()
        denom = float(np.sum(centered ** 2))
        if denom <= 0:
            return float(
                self.frequencies_hz[-1] - self.frequencies_hz[0]
            )
        spacing = float(np.diff(self.frequencies_hz).mean())
        n = centered.size
        for lag in range(1, n):
            corr = float(
                np.sum(centered[:-lag] * centered[lag:])
            ) / denom
            if corr < threshold:
                return lag * spacing
        return float(self.frequencies_hz[-1] - self.frequencies_hz[0])


def sweep_point(
    env: Environment,
    ap: RadioNode,
    point: Sequence[float],
    panels: Sequence[SurfacePanel],
    configs: Mapping[str, np.ndarray],
    center_hz: float,
    bandwidth_hz: float,
    subcarriers: int = 16,
    include_reflections: bool = True,
) -> WidebandResponse:
    """Sweep one point's channel across the band.

    The surface configuration is held fixed across subcarriers (phase
    shifters are frequency-flat within their band) while the propagation
    phases vary with the subcarrier — exactly the mechanism that makes
    surface-assisted links frequency selective.
    """
    point = np.asarray(point, dtype=float)[None, :]
    frequencies = subcarrier_frequencies(center_hz, bandwidth_hz, subcarriers)
    gains = np.zeros(frequencies.size)
    for i, freq in enumerate(frequencies):
        simulator = ChannelSimulator(
            env, float(freq), include_reflections=include_reflections
        )
        model = simulator.build(ap, point, list(panels))
        h = model.evaluate(configs)[0]
        gains[i] = float(np.sum(np.abs(h) ** 2))
    return WidebandResponse(frequencies_hz=frequencies, gains=gains)


def band_report(
    response: WidebandResponse, budget: LinkBudget
) -> Dict[str, float]:
    """Summary metrics for monitoring dashboards."""
    snrs = response.snrs_db(budget)
    return {
        "capacity_mbps": response.capacity_bps(budget) / 1e6,
        "median_subcarrier_snr_db": float(np.median(snrs)),
        "worst_subcarrier_snr_db": float(snrs.min()),
        "flatness_db": response.flatness_db(),
        "coherence_bandwidth_mhz": response.coherence_bandwidth_hz() / 1e6,
    }
