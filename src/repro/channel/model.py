"""The cascade channel model and its per-surface linearization.

A deployment's channel from AP antennas to K evaluation points through
S surfaces is, keeping up to second-order surface interactions:

``h[k,m] = D[k,m]
         + Σ_s Σ_e A_s[m,e] · x_s[e] · B_s[k,e]
         + Σ_{s≠t} Σ_{e,f} A_s[m,e] · x_s[e] · S_st[e,f] · x_t[f] · B_t[k,f]``

where ``x_s`` is surface s's complex element coefficients
(``amplitude · e^{jφ}``).  The model is *linear* in each surface's
coefficients with the others held fixed — exactly what block-coordinate
optimization needs — and :meth:`ChannelModel.linear_form` extracts that
``(C, d)`` pair so objectives can differentiate analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SimulationError


@dataclass(frozen=True)
class LinearChannelForm:
    """``h[k,m] = Σ_e C[k,m,e]·x[e] + d[k,m]`` for one surface.

    Attributes:
        surface_id: which surface ``x`` belongs to.
        coeffs: tensor ``C``, shape ``(K, M, E)``.
        offset: tensor ``d``, shape ``(K, M)``.
    """

    surface_id: str
    coeffs: np.ndarray
    offset: np.ndarray

    def __post_init__(self) -> None:
        if self.coeffs.ndim != 3:
            raise SimulationError(f"coeffs must be 3-D, got {self.coeffs.shape}")
        if self.offset.shape != self.coeffs.shape[:2]:
            raise SimulationError(
                f"offset shape {self.offset.shape} != {self.coeffs.shape[:2]}"
            )

    @property
    def num_points(self) -> int:
        """K, the number of evaluation points."""
        return self.coeffs.shape[0]

    @property
    def num_antennas(self) -> int:
        """M, the number of AP antennas."""
        return self.coeffs.shape[1]

    @property
    def num_elements(self) -> int:
        """E, the surface's element count."""
        return self.coeffs.shape[2]

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Channel ``(K, M)`` for element coefficients ``x`` of shape ``(E,)``."""
        x = np.asarray(x)
        if x.shape != (self.num_elements,):
            raise SimulationError(
                f"x shape {x.shape} != (E,) = ({self.num_elements},)"
            )
        return self.coeffs @ x + self.offset

    def evaluate_many(self, x: np.ndarray) -> np.ndarray:
        """Channels ``(P, K, M)`` for a batch of coefficients ``(P, E)``.

        One tensor contraction for the whole population — the hook the
        batched objectives (:meth:`Objective.value_many`) evaluate
        through.
        """
        x = np.atleast_2d(np.asarray(x))
        if x.ndim != 2 or x.shape[1] != self.num_elements:
            raise SimulationError(
                f"batch shape {x.shape} != (P, {self.num_elements})"
            )
        return (
            np.tensordot(x, self.coeffs, axes=([1], [2]))
            + self.offset[None, :, :]
        )

    def restricted(self, point_indices: Sequence[int]) -> "LinearChannelForm":
        """The same form over a subset of evaluation points."""
        idx = np.asarray(point_indices, dtype=int)
        return LinearChannelForm(
            surface_id=self.surface_id,
            coeffs=self.coeffs[idx],
            offset=self.offset[idx],
        )


class ChannelModel:
    """Cascade channel between one AP and K points through S surfaces.

    Built by :class:`~repro.channel.simulator.ChannelSimulator`; holds
    the precomputed gain factors and evaluates/linearizes channels for
    arbitrary surface configurations.
    """

    def __init__(
        self,
        points: np.ndarray,
        direct: np.ndarray,
        ap_to_surface: Mapping[str, np.ndarray],
        surface_to_points: Mapping[str, np.ndarray],
        surface_to_surface: Mapping[Tuple[str, str], np.ndarray],
        frequency_hz: float,
    ):
        self.points = np.atleast_2d(np.asarray(points, dtype=float))
        self.direct = np.asarray(direct)
        self.ap_to_surface = dict(ap_to_surface)
        self.surface_to_points = dict(surface_to_points)
        self.surface_to_surface = dict(surface_to_surface)
        self.frequency_hz = frequency_hz
        k, m = self.direct.shape
        self._num_points = k
        self._num_antennas = m
        for sid, a in self.ap_to_surface.items():
            b = self.surface_to_points.get(sid)
            if b is None:
                raise SimulationError(f"surface {sid!r} missing points leg")
            if a.shape[0] != m or b.shape[0] != k or a.shape[1] != b.shape[1]:
                raise SimulationError(f"inconsistent legs for surface {sid!r}")

    # ------------------------------------------------------------------

    @property
    def surface_ids(self) -> List[str]:
        """Surfaces participating in this model."""
        return sorted(self.ap_to_surface)

    @property
    def num_points(self) -> int:
        """K evaluation points."""
        return self._num_points

    @property
    def num_antennas(self) -> int:
        """M AP antennas."""
        return self._num_antennas

    @property
    def num_legs(self) -> int:
        """Total traced legs: direct + 2 per surface + cascade pairs.

        The denominator for the simulator's incremental-rebuild
        accounting (``channel.legs_retraced`` out of ``num_legs``).
        """
        return 1 + 2 * len(self.ap_to_surface) + len(self.surface_to_surface)

    def num_elements(self, surface_id: str) -> int:
        """Element count of one surface."""
        return self.ap_to_surface[surface_id].shape[1]

    def _check_configs(self, configs: Mapping[str, np.ndarray]) -> None:
        for sid in self.surface_ids:
            if sid not in configs:
                raise SimulationError(f"missing configuration for {sid!r}")
            x = np.asarray(configs[sid])
            if x.shape != (self.num_elements(sid),):
                raise SimulationError(
                    f"config for {sid!r} has shape {x.shape}, expected "
                    f"({self.num_elements(sid)},)"
                )

    # ------------------------------------------------------------------

    def evaluate(self, configs: Mapping[str, np.ndarray]) -> np.ndarray:
        """Channel ``(K, M)`` given per-surface coefficient vectors."""
        self._check_configs(configs)
        h = self.direct.copy()
        for sid in self.surface_ids:
            x = np.asarray(configs[sid])
            a = self.ap_to_surface[sid]  # (M, E)
            b = self.surface_to_points[sid]  # (K, E)
            h += (b * x[None, :]) @ a.T
        for (sid, tid), s_st in self.surface_to_surface.items():
            x_s = np.asarray(configs[sid])
            x_t = np.asarray(configs[tid])
            a = self.ap_to_surface[sid]  # (M, E_s)
            b = self.surface_to_points[tid]  # (K, E_t)
            # AP → s → t → points: (M,) = A (x_s ⊙ ·) then through S_st.
            mid = (a * x_s[None, :]) @ s_st  # (M, E_t)
            h += (b * x_t[None, :]) @ mid.T
        return h

    def linear_form(
        self,
        surface_id: str,
        other_configs: Mapping[str, np.ndarray],
    ) -> LinearChannelForm:
        """Linearize the channel in one surface's coefficients.

        ``other_configs`` must provide coefficient vectors for every
        *other* surface (entries for ``surface_id`` are ignored).
        """
        if surface_id not in self.ap_to_surface:
            raise SimulationError(f"unknown surface {surface_id!r}")
        e_s = self.num_elements(surface_id)
        k, m = self.num_points, self.num_antennas
        a_s = self.ap_to_surface[surface_id]
        b_s = self.surface_to_points[surface_id]
        # Single-bounce term through this surface.
        coeffs = a_s[None, :, :] * b_s[:, None, :]  # (K, M, E)
        offset = self.direct.copy()

        for sid in self.surface_ids:
            if sid == surface_id:
                continue
            x = np.asarray(other_configs[sid])
            a = self.ap_to_surface[sid]
            b = self.surface_to_points[sid]
            offset += (b * x[None, :]) @ a.T

        for (sid, tid), s_st in self.surface_to_surface.items():
            if sid == surface_id and tid == surface_id:
                raise SimulationError("self-cascade is not allowed")
            if sid == surface_id:
                # AP → THIS → t → points: coefficient on x_this[e]:
                # A_this[m,e] · Σ_f S[e,f] x_t[f] B_t[k,f]
                x_t = np.asarray(other_configs[tid])
                b_t = self.surface_to_points[tid]
                w = (b_t * x_t[None, :]) @ s_st.T  # (K, E_this)
                coeffs += a_s[None, :, :] * w[:, None, :]
            elif tid == surface_id:
                # AP → s → THIS → points: coefficient on x_this[f]:
                # B_this[k,f] · Σ_e A_s[m,e] x_s[e] S[e,f]
                x_s = np.asarray(other_configs[sid])
                a_o = self.ap_to_surface[sid]
                v = (a_o * x_s[None, :]) @ s_st  # (M, E_this)
                coeffs += b_s[:, None, :] * v[None, :, :]
            else:
                x_s = np.asarray(other_configs[sid])
                x_t = np.asarray(other_configs[tid])
                a_o = self.ap_to_surface[sid]
                b_o = self.surface_to_points[tid]
                mid = (a_o * x_s[None, :]) @ s_st
                offset += (b_o * x_t[None, :]) @ mid.T

        return LinearChannelForm(
            surface_id=surface_id, coeffs=coeffs, offset=offset
        )

    def restricted(self, point_indices: Sequence[int]) -> "ChannelModel":
        """The same model over a subset of evaluation points."""
        idx = np.asarray(point_indices, dtype=int)
        return ChannelModel(
            points=self.points[idx],
            direct=self.direct[idx],
            ap_to_surface=self.ap_to_surface,
            surface_to_points={
                sid: b[idx] for sid, b in self.surface_to_points.items()
            },
            surface_to_surface=self.surface_to_surface,
            frequency_hz=self.frequency_hz,
        )


class LinearFormCache:
    """Memoized :meth:`ChannelModel.linear_form` extractions.

    A surface's linear form depends only on the *other* surfaces'
    coefficients, so across block-coordinate rounds — and always in
    single-surface deployments — the extraction is recomputed for
    identical inputs.  This cache keys each form on a digest of the
    other surfaces' coefficient bytes and keeps a small LRU per
    surface id.

    Create one per optimization pass (it holds references into the
    model's tensors); pass a telemetry instance to surface
    ``channel.form_cache_hits`` / ``channel.form_cache_misses``.
    """

    def __init__(self, model: ChannelModel, maxsize: int = 8, telemetry=None):
        import collections

        self.model = model
        self.maxsize = max(1, maxsize)
        self.telemetry = telemetry
        self._entries: "collections.OrderedDict[Tuple[str, str], LinearChannelForm]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def _key(
        self, surface_id: str, other_configs: Mapping[str, np.ndarray]
    ) -> Tuple[str, str]:
        import hashlib

        digest = hashlib.sha1()
        for sid in self.model.surface_ids:
            if sid == surface_id:
                continue
            digest.update(sid.encode())
            digest.update(
                np.ascontiguousarray(
                    np.asarray(other_configs[sid], dtype=complex)
                ).tobytes()
            )
        return (surface_id, digest.hexdigest())

    def linear_form(
        self,
        surface_id: str,
        other_configs: Mapping[str, np.ndarray],
    ) -> LinearChannelForm:
        """Like :meth:`ChannelModel.linear_form`, but memoized."""
        key = self._key(surface_id, other_configs)
        form = self._entries.get(key)
        if form is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if self.telemetry is not None:
                self.telemetry.counter("channel.form_cache_hits")
            return form
        self.misses += 1
        if self.telemetry is not None:
            self.telemetry.counter("channel.form_cache_misses")
        form = self.model.linear_form(surface_id, other_configs)
        self._entries[key] = form
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return form
