"""Precompiled, fully vectorized geometry kernels for the ray model.

The tracer's queries all reduce to "which of these ``n`` segments cross
which of these obstacles".  The per-obstacle formulation loops over
walls and boxes in Python, paying hundreds of small numpy dispatches
per channel build; a build traces hundreds of thousands of segments, so
that loop is the dominant metasurface-control cost (the workload
characterized by Saeed et al.).

:class:`CompiledGeometry` stacks every wall and box of an
:class:`~repro.geometry.environment.Environment` into contiguous arrays
*once* per :attr:`Environment.version`, after which

* :meth:`CompiledGeometry.segment_loss_db` is a single broadcast pass
  over ``(n_segments × n_obstacles)``, accumulating per-obstacle losses
  with one matrix product, and
* :meth:`CompiledGeometry.reflection_legs` runs the image method for
  *all* source/target pairs against one wall at once.

:class:`PanelStack` does the same stacking for the per-call panel
obstacle lists (which vary with the excluded panel, so they cannot be
compiled against the environment).

All kernels follow the reference per-obstacle formulas operation by
operation, so results agree with the loop implementations to float64
rounding (the golden tests in ``tests/channel/test_geomkernels.py``
assert 1e-9 agreement on randomized environments).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from ..geometry.environment import Environment
from ..geometry.shapes import Wall

_EPS = 1e-9

#: Target temporary size (elements) for one kernel tile.  Row chunks
#: are sized so each ``(rows, n_obstacles)`` float64 intermediate stays
#: around 256 KB — resident in L2 — instead of multi-MB arrays that
#: stream through DRAM on every elementwise pass.
_CHUNK_CELLS = 32768


def _chunk_rows(n: int, count: int) -> int:
    return min(n, max(256, _CHUNK_CELLS // max(1, count)))


def _as_segments(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    if a.shape != b.shape:
        raise ValueError(f"endpoint arrays differ: {a.shape} vs {b.shape}")
    return a, b


class _TileScratch:
    """Reusable work arrays for one obstacle family's kernel tiles.

    Every elementwise pass writes into these via ``out=`` instead of
    allocating: tile-sized (≥128 KB) temporaries would otherwise hit
    glibc's mmap threshold on every numpy op, paying page faults on
    each pass.  One pool per :class:`CompiledGeometry`, sized for the
    largest tile, sliced down with ``[:rows]`` for the tail tile.
    """

    __slots__ = ("rows", "f", "b", "lhs")

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.f = [np.empty((rows, cols)) for _ in range(5)]
        self.b = [np.empty((rows, cols), dtype=bool) for _ in range(3)]
        self.lhs = np.empty((rows, 3))


class PanelStack:
    """Surface panels acting as thin obstacles, stacked for broadcasting.

    Built per call from a ``Sequence[PanelObstacle]`` (the set varies
    with which panel a leg terminates on); holds ``(P, …)`` arrays so a
    crossing test over ``n`` segments is one ``(n, P)`` pass.
    """

    __slots__ = (
        "count",
        "normals",
        "centers",
        "axes_u",
        "axes_v",
        "half_w",
        "half_h",
        "_obstacles",
        "_losses",
    )

    def __init__(self, panel_obstacles: Sequence) -> None:
        self._obstacles = tuple(panel_obstacles)
        self.count = len(self._obstacles)
        self._losses: Dict[float, np.ndarray] = {}
        if not self.count:
            return
        panels = [o.panel for o in self._obstacles]
        self.normals = np.stack([p.normal for p in panels])
        self.centers = np.stack([p.center for p in panels])
        axes = [p.plane_axes() for p in panels]
        self.axes_u = np.stack([u for u, _ in axes])
        self.axes_v = np.stack([v for _, v in axes])
        self.half_w = np.array([p.width_m / 2.0 for p in panels])
        self.half_h = np.array([p.height_m / 2.0 for p in panels])

    def losses_db(self, frequency_hz: float) -> np.ndarray:
        """Per-panel through-loss vector ``(P,)`` at a carrier."""
        losses = self._losses.get(frequency_hz)
        if losses is None:
            losses = np.array(
                [o.loss_db(frequency_hz) for o in self._obstacles]
            )
            self._losses[frequency_hz] = losses
        return losses

    def crossing_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Which segments cross which panels, shape ``(n, P)``."""
        a, b = _as_segments(a, b)
        if not self.count:
            return np.zeros((a.shape[0], 0), dtype=bool)
        rel_a = a[:, None, :] - self.centers[None, :, :]  # (n, P, 3)
        rel_b = b[:, None, :] - self.centers[None, :, :]
        da = np.einsum("npk,pk->np", rel_a, self.normals)
        db = np.einsum("npk,pk->np", rel_b, self.normals)
        crosses_plane = (da * db) < -_EPS
        denom = np.where(np.abs(da - db) < _EPS, 1.0, da - db)
        t = da / denom
        hit_rel = rel_a + t[:, :, None] * (b - a)[:, None, :]
        return (
            crosses_plane
            & (
                np.abs(np.einsum("npk,pk->np", hit_rel, self.axes_u))
                <= self.half_w[None, :] + _EPS
            )
            & (
                np.abs(np.einsum("npk,pk->np", hit_rel, self.axes_v))
                <= self.half_h[None, :] + _EPS
            )
        )


class CompiledGeometry:
    """An environment's walls and boxes as contiguous kernel arrays.

    Compiled once per :attr:`Environment.version` via
    :func:`compiled_geometry`.  The compiled arrays are pure reads, and
    the tile scratch pools live in thread-local storage, so one
    instance serves every concurrent query against that version (the
    channel simulator's parallel leg tracing runs several kernels at
    once against the same compiled environment).
    """

    def __init__(self, env: Environment) -> None:
        self.version = env.version
        self.walls: Tuple[Wall, ...] = env.walls
        boxes = env.boxes
        self.num_walls = len(self.walls)
        self.num_boxes = len(boxes)
        self._wall_index = {id(w): i for i, w in enumerate(self.walls)}
        self._wall_materials = tuple(w.material for w in self.walls)
        self._box_materials = tuple(b.material for b in boxes)
        self._wall_losses: Dict[float, np.ndarray] = {}
        self._box_losses: Dict[float, np.ndarray] = {}
        # Scratch pools are mutated by every kernel call, so each
        # thread gets its own — concurrent traces sharing one pool
        # would corrupt each other's tiles.
        self._scratch = threading.local()
        if self.num_walls:
            self.wall_p = np.stack([w.start[:2] for w in self.walls])  # (W, 2)
            self.wall_s = (
                np.stack([w.end[:2] for w in self.walls]) - self.wall_p
            )
            self.wall_zmin = np.array([w.z_min for w in self.walls])
            self.wall_zmax = np.array([w.z_max for w in self.walls])
            # The segment/wall cross-product numerators are bilinear in
            # the endpoint coordinates, so they factor into fixed (3, W)
            # right-hand matrices applied to per-segment (n, 3) stacks.
            s0, s1 = self.wall_s[:, 0], self.wall_s[:, 1]
            p0, p1 = self.wall_p[:, 0], self.wall_p[:, 1]
            self._wall_mt = np.ascontiguousarray(
                np.stack([s1, s0, p0 * s1 - p1 * s0])
            )
            self._wall_mu = np.ascontiguousarray(
                np.stack([p0, p1, np.ones(self.num_walls)])
            )
        if self.num_boxes:
            self.box_lo = np.stack([b.lo for b in boxes])  # (B, 3)
            self.box_hi = np.stack([b.hi for b in boxes])

    # ------------------------------------------------------------------
    # loss vectors
    # ------------------------------------------------------------------

    def wall_losses_db(self, frequency_hz: float) -> np.ndarray:
        """Per-wall penetration loss ``(W,)`` at a carrier (cached)."""
        losses = self._wall_losses.get(frequency_hz)
        if losses is None:
            losses = np.array(
                [m.penetration_loss_db(frequency_hz) for m in self._wall_materials]
            )
            self._wall_losses[frequency_hz] = losses
        return losses

    def box_losses_db(self, frequency_hz: float) -> np.ndarray:
        """Per-box penetration loss ``(B,)`` at a carrier (cached)."""
        losses = self._box_losses.get(frequency_hz)
        if losses is None:
            losses = np.array(
                [m.penetration_loss_db(frequency_hz) for m in self._box_materials]
            )
            self._box_losses[frequency_hz] = losses
        return losses

    def wall_indices(self, walls: Sequence[Wall]) -> np.ndarray:
        """Compiled indices of the given wall objects (identity match)."""
        return np.array(
            [
                self._wall_index[id(w)]
                for w in walls
                if id(w) in self._wall_index
            ],
            dtype=int,
        )

    # ------------------------------------------------------------------
    # crossing kernels
    # ------------------------------------------------------------------

    def wall_crossing_matrix(
        self, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Which segments ``a[i]→b[i]`` cross which walls, ``(n, W)``.

        The 2-D segment/segment cross products are bilinear in the
        segment and wall endpoint coordinates, so the ``(n, W)``
        numerators factor into ``(n, 3) @ (3, W)`` matrix products
        (BLAS) followed by a handful of elementwise passes — no
        ``(n, W, 2)`` temporaries, and one reciprocal instead of two
        divisions per pair.
        """
        a, b = _as_segments(a, b)
        n = a.shape[0]
        if not self.num_walls:
            return np.zeros((n, 0), dtype=bool)
        out = np.empty((n, self.num_walls), dtype=bool)
        rows = _chunk_rows(n, self.num_walls)
        for i in range(0, n, rows):
            self._wall_tile(a[i : i + rows], b[i : i + rows], out[i : i + rows])
        return out

    def _wall_tile_scratch(self) -> _TileScratch:
        sc = getattr(self._scratch, "wall", None)
        if sc is None:
            sc = _TileScratch(
                _chunk_rows(1 << 30, self.num_walls), self.num_walls
            )
            self._scratch.wall = sc
        return sc

    def _wall_tile(
        self, a: np.ndarray, b: np.ndarray, ok: np.ndarray
    ) -> np.ndarray:
        """One tile of the wall crossing test, written into ``ok``."""
        sc = self._wall_tile_scratch()
        rows = a.shape[0]
        f0, f1, f2, f3 = (sc.f[i][:rows] for i in range(4))
        cmp = sc.b[0][:rows]
        lhs = sc.lhs[:rows]
        s0, s1 = self.wall_s[:, 0], self.wall_s[:, 1]  # (W,)
        a0, a1, a2 = a[:, 0], a[:, 1], a[:, 2]
        r0 = b[:, 0] - a0
        r1 = b[:, 1] - a1
        # denom = r × s → f0;  t_num = (p − a) × s → f2;
        # u_num = (p − a) × r → f3  (both as (rows, 3) @ (3, W) BLAS).
        np.multiply.outer(r0, s1, out=f0)
        f0 -= np.multiply.outer(r1, s0)
        np.abs(f0, out=f1)
        np.greater(f1, _EPS, out=ok)
        f1[:] = f0
        np.logical_not(ok, out=cmp)
        np.copyto(f1, 1.0, where=cmp)
        inv = np.divide(1.0, f1, out=f1)
        lhs[:, 0] = -a0
        lhs[:, 1] = a1
        lhs[:, 2] = 1.0
        np.matmul(lhs, self._wall_mt, out=f2)
        t = np.multiply(f2, inv, out=f2)
        lhs[:, 0] = r1
        np.negative(r0, out=lhs[:, 1])
        np.multiply(a1, r0, out=lhs[:, 2])
        lhs[:, 2] -= a0 * r1
        np.matmul(lhs, self._wall_mu, out=f3)
        u = np.multiply(f3, inv, out=f3)
        np.greater(t, _EPS, out=cmp)
        ok &= cmp
        np.less(t, 1.0 - _EPS, out=cmp)
        ok &= cmp
        np.greater_equal(u, -_EPS, out=cmp)
        ok &= cmp
        np.less_equal(u, 1.0 + _EPS, out=cmp)
        ok &= cmp
        # z = a2 + t·dz → f0 (denom no longer needed).
        np.multiply(t, (b[:, 2] - a2)[:, None], out=f0)
        f0 += a2[:, None]
        np.greater_equal(f0, self.wall_zmin[None, :] - _EPS, out=cmp)
        ok &= cmp
        np.less_equal(f0, self.wall_zmax[None, :] + _EPS, out=cmp)
        ok &= cmp
        return ok

    def box_crossing_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Which segments ``a[i]→b[i]`` pass through which boxes, ``(n, B)``.

        Slab method over all boxes at once, one axis at a time: every
        intermediate is ``(n, B)`` (never ``(n, B, 3)``) and the slab
        parameters use one reciprocal per segment axis instead of a
        division per pair.
        """
        a, b = _as_segments(a, b)
        n = a.shape[0]
        if not self.num_boxes:
            return np.zeros((n, 0), dtype=bool)
        out = np.empty((n, self.num_boxes), dtype=bool)
        rows = _chunk_rows(n, self.num_boxes)
        for i in range(0, n, rows):
            self._box_tile(a[i : i + rows], b[i : i + rows], out[i : i + rows])
        return out

    def _box_tile_scratch(self) -> _TileScratch:
        sc = getattr(self._scratch, "box", None)
        if sc is None:
            sc = _TileScratch(
                _chunk_rows(1 << 30, self.num_boxes), self.num_boxes
            )
            self._scratch.box = sc
        return sc

    def _box_tile(
        self, a: np.ndarray, b: np.ndarray, inside: np.ndarray
    ) -> np.ndarray:
        """One tile of the box slab test, written into ``inside``."""
        sc = self._box_tile_scratch()
        rows = a.shape[0]
        t_enter, t_exit, w0, w1, w2 = (x[:rows] for x in sc.f)
        cmp0, cmp1 = sc.b[0][:rows], sc.b[1][:rows]
        t_enter[:] = 0.0
        t_exit[:] = 1.0
        inside[:] = True
        for axis in range(3):
            da = b[:, axis] - a[:, axis]
            aa = a[:, axis]
            lo = self.box_lo[:, axis]  # (B,)
            hi = self.box_hi[:, axis]
            parallel = np.abs(da) < _EPS  # (n,)
            inv = 1.0 / np.where(parallel, 1.0, da)
            np.subtract(lo[None, :], aa[:, None], out=w0)
            w0 *= inv[:, None]  # t1
            np.subtract(hi[None, :], aa[:, None], out=w1)
            w1 *= inv[:, None]  # t2
            lo_t = np.minimum(w0, w1, out=w2)
            hi_t = np.maximum(w0, w1, out=w0)
            if parallel.any():
                # Parallel segments must start inside that slab to hit.
                np.greater_equal(aa[:, None], lo[None, :] - _EPS, out=cmp0)
                np.less_equal(aa[:, None], hi[None, :] + _EPS, out=cmp1)
                cmp0 &= cmp1
                cmp0 |= ~parallel[:, None]
                inside &= cmp0
                lo_t[parallel] = -np.inf
                hi_t[parallel] = np.inf
            np.maximum(t_enter, lo_t, out=t_enter)
            np.minimum(t_exit, hi_t, out=t_exit)
        np.less(t_enter, t_exit, out=cmp0)
        inside &= cmp0
        np.greater(t_exit, _EPS, out=cmp0)
        inside &= cmp0
        np.less(t_enter, 1.0 - _EPS, out=cmp0)
        inside &= cmp0
        return inside

    # ------------------------------------------------------------------
    # loss accumulation
    # ------------------------------------------------------------------

    def segment_loss_db(
        self,
        a: np.ndarray,
        b: np.ndarray,
        frequency_hz: float,
        panels: Optional[PanelStack] = None,
        exclude_wall_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Total penetration loss (dB) per segment, ``(n,)``.

        One broadcast pass over all walls, boxes, and stacked panel
        obstacles; ``exclude_wall_indices`` zeroes walls out of the
        accumulation (e.g. the reflector of an image path).
        """
        a, b = _as_segments(a, b)
        n = a.shape[0]
        loss = np.zeros(n)
        wall_losses = box_losses = panel_losses = None
        if self.num_walls:
            wall_losses = self.wall_losses_db(frequency_hz)
            if exclude_wall_indices is not None and len(exclude_wall_indices):
                wall_losses = wall_losses.copy()
                wall_losses[exclude_wall_indices] = 0.0
        if self.num_boxes:
            box_losses = self.box_losses_db(frequency_hz)
        if panels is not None and panels.count:
            panel_losses = panels.losses_db(frequency_hz)
        # One tile loop accumulating all families: the crossing masks
        # and their dot products against the loss vectors never leave
        # the scratch tiles, so nothing (n × n_obstacles)-sized is ever
        # materialized.
        widest = max(self.num_walls, self.num_boxes)
        if widest == 0:
            rows = n
        else:
            rows = _chunk_rows(n, widest)
        for i in range(0, n, rows):
            asl, bsl = a[i : i + rows], b[i : i + rows]
            lsl = loss[i : i + rows]
            if wall_losses is not None:
                sc = self._wall_tile_scratch()
                ok = self._wall_tile(asl, bsl, sc.b[2][: asl.shape[0]])
                cast = sc.f[0][: asl.shape[0]]
                np.copyto(cast, ok)
                lsl += cast @ wall_losses
            if box_losses is not None:
                sc = self._box_tile_scratch()
                ok = self._box_tile(asl, bsl, sc.b[2][: asl.shape[0]])
                cast = sc.f[2][: asl.shape[0]]
                np.copyto(cast, ok)
                lsl += cast @ box_losses
            if panel_losses is not None:
                lsl += panels.crossing_matrix(asl, bsl) @ panel_losses
        return loss

    def segment_amplitude(
        self,
        a: np.ndarray,
        b: np.ndarray,
        frequency_hz: float,
        panels: Optional[PanelStack] = None,
        exclude_wall_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Linear amplitude factor per segment, ``(n,)``."""
        loss = self.segment_loss_db(
            a, b, frequency_hz, panels, exclude_wall_indices
        )
        return 10.0 ** (-loss / 20.0)

    # ------------------------------------------------------------------
    # image-method reflections
    # ------------------------------------------------------------------

    def reflection_legs(
        self,
        wall_index: int,
        sources: np.ndarray,
        targets: np.ndarray,
        frequency_hz: float,
        panels: Optional[PanelStack] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Single-bounce paths via one wall for all source/target pairs.

        Image method, batched: mirrors every source across the wall,
        intersects every mirror→target segment with the wall rectangle,
        and prices both legs' penetration (wall itself excluded) in two
        stacked kernel passes.

        Returns ``(valid, bounce, total_length, amplitude)`` with
        shapes ``(S, T)`` / ``(S, T, 3)`` / ``(S, T)`` / ``(S, T)``;
        ``amplitude`` includes the wall's reflectivity and is zero
        wherever ``valid`` is False.
        """
        wall = self.walls[wall_index]
        sources = np.atleast_2d(np.asarray(sources, dtype=float))
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        n_s, n_t = sources.shape[0], targets.shape[0]
        p = self.wall_p[wall_index]
        s = self.wall_s[wall_index]
        seg_len = np.linalg.norm(s)
        normal = np.array([-s[1], s[0]]) / seg_len
        dist = (sources[:, :2] - p[None, :]) @ normal
        mirrored = sources.copy()
        mirrored[:, :2] -= 2.0 * dist[:, None] * normal[None, :]

        # Intersect mirrored[i]→targets[j] with the wall rectangle.
        r = targets[None, :, :2] - mirrored[:, None, :2]  # (S, T, 2)
        denom = r[:, :, 0] * s[1] - r[:, :, 1] * s[0]
        ok = np.abs(denom) > _EPS
        safe = np.where(ok, denom, 1.0)
        ap = p[None, None, :] - mirrored[:, None, :2]
        t = (ap[:, :, 0] * s[1] - ap[:, :, 1] * s[0]) / safe
        u = (ap[:, :, 0] * r[:, :, 1] - ap[:, :, 1] * r[:, :, 0]) / safe
        dz = targets[None, :, 2] - mirrored[:, None, 2]
        z = mirrored[:, None, 2] + t * dz
        valid = (
            ok
            & (t > _EPS)
            & (t < 1.0 - _EPS)
            & (u >= -_EPS)
            & (u <= 1.0 + _EPS)
            & (z >= wall.z_min - _EPS)
            & (z <= wall.z_max + _EPS)
        )

        bounce = np.empty((n_s, n_t, 3))
        bounce[:, :, :2] = mirrored[:, None, :2] + t[:, :, None] * r
        bounce[:, :, 2] = z
        leg1 = np.linalg.norm(bounce - sources[:, None, :], axis=2)
        leg2 = np.linalg.norm(targets[None, :, :] - bounce, axis=2)
        valid &= (leg1 >= _EPS) & (leg2 >= _EPS)
        total_length = leg1 + leg2

        amplitude = np.zeros((n_s, n_t))
        if valid.any():
            si, ti = np.nonzero(valid)
            exclude = np.array([wall_index], dtype=int)
            amp1 = self.segment_amplitude(
                sources[si], bounce[si, ti], frequency_hz, panels, exclude
            )
            amp2 = self.segment_amplitude(
                bounce[si, ti], targets[ti], frequency_hz, panels, exclude
            )
            amplitude[si, ti] = wall.material.reflectivity * amp1 * amp2
        # Negligible bounces are dropped, matching the loop formulation.
        faint = amplitude < 1e-8
        valid &= ~faint
        amplitude[faint] = 0.0
        return valid, bounce, total_length, amplitude

    def reflective_wall_indices(
        self, min_reflectivity: float = 0.05
    ) -> Tuple[int, ...]:
        """Compiled indices of walls worth bouncing off."""
        return tuple(
            i
            for i, w in enumerate(self.walls)
            if w.material.reflectivity >= min_reflectivity
        )


_COMPILED: "WeakKeyDictionary[Environment, CompiledGeometry]" = (
    WeakKeyDictionary()
)


def compiled_geometry(env: Environment) -> CompiledGeometry:
    """The compiled kernels for an environment's current version.

    Recompiles only when :attr:`Environment.version` has moved since
    the last call; compilation is a handful of small array stacks, but
    the returned object also memoizes per-frequency loss vectors, so
    reuse matters.
    """
    compiled = _COMPILED.get(env)
    if compiled is None or compiled.version != env.version:
        compiled = CompiledGeometry(env)
        _COMPILED[env] = compiled
    return compiled
