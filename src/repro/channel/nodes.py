"""Radio endpoints as the channel simulator sees them.

A :class:`RadioNode` is just an antenna array: positions, a shared
radiation pattern, and a boresight.  Higher layers (the hardware
manager's access points, clients, sensors) build these; the simulator
consumes them without knowing what they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..em.antenna import ISOTROPIC, PATCH, AntennaPattern
from ..em.steering import ula_positions
from ..geometry.vec import as_vec3, normalize


@dataclass(frozen=True)
class RadioNode:
    """An antenna array endpoint.

    Attributes:
        node_id: stable identifier.
        positions: ``(M, 3)`` antenna positions.
        pattern: per-antenna radiation pattern.
        boresight: unit vector the antennas face.
    """

    node_id: str
    positions: np.ndarray
    pattern: AntennaPattern = ISOTROPIC
    boresight: np.ndarray = field(
        default_factory=lambda: np.array([1.0, 0.0, 0.0])
    )

    def __post_init__(self) -> None:
        pos = np.atleast_2d(np.asarray(self.positions, dtype=float))
        if pos.shape[1] != 3:
            raise ValueError(f"positions must be (M, 3), got {pos.shape}")
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "boresight", normalize(self.boresight))

    @property
    def num_antennas(self) -> int:
        """Antenna count M."""
        return self.positions.shape[0]

    @property
    def centroid(self) -> np.ndarray:
        """Array centroid."""
        return self.positions.mean(axis=0)


def single_antenna_node(
    node_id: str,
    position: Sequence[float],
    pattern: AntennaPattern = ISOTROPIC,
    boresight: Sequence[float] = (1.0, 0.0, 0.0),
) -> RadioNode:
    """A one-antenna endpoint (typical client device)."""
    return RadioNode(
        node_id=node_id,
        positions=as_vec3(position)[None, :],
        pattern=pattern,
        boresight=as_vec3(boresight),
    )


def ula_node(
    node_id: str,
    center: Sequence[float],
    num_antennas: int,
    frequency_hz: float,
    axis: Sequence[float],
    boresight: Sequence[float],
    pattern: AntennaPattern = PATCH,
) -> RadioNode:
    """A uniform-linear-array endpoint (typical AP)."""
    return RadioNode(
        node_id=node_id,
        positions=ula_positions(num_antennas, frequency_hz, center, axis),
        pattern=pattern,
        boresight=as_vec3(boresight),
    )
