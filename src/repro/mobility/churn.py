"""Seeded Poisson client arrival/departure churn schedules.

Churn is precomputed into an eager, deterministic event list so a
scenario can register every event on the :class:`~repro.runtime.clock`
before the run starts — the same seed always yields the identical
join/leave sequence, which the byte-identical JSONL gates depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.errors import ServiceError

__all__ = ["ChurnEvent", "churn_schedule"]


@dataclass(frozen=True)
class ChurnEvent:
    """One client joining or leaving the environment."""

    at: float
    kind: str  # "arrive" | "depart"
    client_id: str


def churn_schedule(
    rate_hz: float,
    horizon_s: float,
    seed: int = 0,
    lifetime_s: float = 20.0,
    max_live: int = 8,
    prefix: str = "churn",
) -> List[ChurnEvent]:
    """Poisson arrivals with exponential lifetimes, capped at ``max_live``.

    Arrivals past the cap are dropped (an admission-controlled lobby),
    and departures past the horizon are clipped to it so every joined
    client also leaves inside the run.  Returns events sorted by time;
    at equal times departures sort before arrivals so the live count
    never transiently exceeds the cap.
    """
    if rate_hz < 0:
        raise ServiceError("churn rate must be non-negative")
    if horizon_s <= 0:
        raise ServiceError("churn horizon must be positive")
    if lifetime_s <= 0:
        raise ServiceError("churn lifetime must be positive")
    if max_live < 1:
        raise ServiceError("max_live must be at least 1")
    events: List[ChurnEvent] = []
    if rate_hz == 0:
        return events
    rng = np.random.default_rng(seed)
    now = 0.0
    index = 0
    departures: List[float] = []
    while True:
        now += float(rng.exponential(1.0 / rate_hz))
        if now >= horizon_s:
            break
        lifetime = float(rng.exponential(lifetime_s))
        departures = [d for d in departures if d > now]
        if len(departures) >= max_live:
            continue
        leave_at = min(now + lifetime, horizon_s)
        client_id = f"{prefix}-{index}"
        index += 1
        events.append(ChurnEvent(at=now, kind="arrive", client_id=client_id))
        events.append(
            ChurnEvent(at=leave_at, kind="depart", client_id=client_id)
        )
        departures.append(leave_at)
    events.sort(key=lambda e: (e.at, 0 if e.kind == "depart" else 1, e.client_id))
    return events
