"""Seeded mobility models and churn schedules for motion scenarios.

``repro.mobility`` is the motion layer the runtime and the mobility
experiment share: pluggable :class:`MobilityModel` implementations
(waypoint walking with per-segment speeds and pauses, seeded random
walks, JSONL trace replay) plus deterministic Poisson arrival/departure
churn.  ``MobilityModel.peek(dt)`` is the speculation primitive the
channel leg prefetcher builds on — see ``DESIGN.md``.
"""

from .churn import ChurnEvent, churn_schedule
from .models import (
    MobilityModel,
    MobilityModelBase,
    RandomWalk,
    TraceReplay,
    WaypointWalker,
    read_mobility_trace,
    write_mobility_trace,
)

__all__ = [
    "ChurnEvent",
    "churn_schedule",
    "MobilityModel",
    "MobilityModelBase",
    "RandomWalk",
    "TraceReplay",
    "WaypointWalker",
    "read_mobility_trace",
    "write_mobility_trace",
]
