"""Pluggable, seeded mobility models.

Extracted from ``runtime.dynamics.Walker`` so every moving thing in a
scenario — obstacle humans, client endpoints, replayed measurement
campaigns — shares one tiny API:

* ``position()`` — current position (3-vector, never mutates state).
* ``step(dt)`` — advance the model ``dt`` seconds, return the new
  position.
* ``peek(dt)`` — what ``step(dt)`` *would* return, without advancing.

``peek`` is the speculation primitive behind leg prefetching: it runs
the identical deterministic arithmetic as the real next ``step`` on a
deep copy of the model (including any RNG state), so the predicted
position is **bit-identical** to the position the walker will actually
occupy.  The channel leg cache keys legs on a digest of the exact float
bytes of the point set — an approximate extrapolation would never hit;
a ``peek``-predicted one always can.

Models:

* :class:`WaypointWalker` — closed-loop (or one-way) waypoint walking
  with per-segment speeds and per-waypoint dwell pauses (doorway
  transitions are just waypoints placed in the doorway).
* :class:`RandomWalk` — seeded heading-jitter walk reflected inside an
  axis-aligned box.
* :class:`TraceReplay` — replays ``{"t": …, "pos": [x, y, z]}`` JSONL
  samples (the ``repro.load`` trace conventions, plus a position),
  piecewise-linearly interpolated.
"""

from __future__ import annotations

import copy
import json
import math
import os
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServiceError
from ..geometry.vec import as_vec3

__all__ = [
    "MobilityModel",
    "MobilityModelBase",
    "WaypointWalker",
    "RandomWalk",
    "TraceReplay",
    "read_mobility_trace",
    "write_mobility_trace",
]

try:  # pragma: no cover - Protocol is importable on 3.8+
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class MobilityModel(Protocol):
        """Anything that can walk: the pluggable mobility API."""

        def position(self) -> np.ndarray:  # pragma: no cover - protocol
            """Current position (3-vector); must not mutate state."""
            ...

        def step(self, dt: float) -> np.ndarray:  # pragma: no cover
            """Advance ``dt`` seconds and return the new position."""
            ...

        def peek(self, dt: float) -> np.ndarray:  # pragma: no cover
            """Predict ``step(dt)`` without advancing (bit-exact)."""
            ...

except ImportError:  # pragma: no cover - very old typing fallback
    MobilityModel = object  # type: ignore[assignment,misc]


class MobilityModelBase:
    """Shared ``peek`` implementation for concrete models.

    ``peek`` deep-copies the model (state *and* RNG) and steps the
    copy, so the prediction runs the exact float arithmetic the real
    step will — the prefetch determinism contract.
    """

    def position(self) -> np.ndarray:
        raise NotImplementedError

    def step(self, dt: float) -> np.ndarray:
        raise NotImplementedError

    def peek(self, dt: float) -> np.ndarray:
        ghost = copy.deepcopy(self)
        return ghost.step(dt)


def _check_dt(dt: float) -> float:
    if dt <= 0:
        raise ValueError("dt must be positive")
    return float(dt)


class WaypointWalker(MobilityModelBase):
    """Waypoint walking with per-segment speeds and dwell pauses.

    Args:
        waypoints: path vertices (2-D points get z=0; pass 3-D points
            for endpoints carried at device height).
        speed_mps: uniform speed used when ``speeds`` is omitted.
        speeds: optional per-segment speeds; one entry per leg
            (``len(waypoints)`` legs on a loop, one fewer one-way).
        pauses: optional dwell seconds applied on *arrival* at each
            waypoint (scalar broadcasts; per-waypoint sequence aligns
            with ``waypoints``).
        loop: walk the closed loop forever (default) or stop at the
            final waypoint.
    """

    def __init__(
        self,
        waypoints: Sequence[Sequence[float]],
        speed_mps: float = 1.2,
        speeds: Optional[Sequence[float]] = None,
        pauses: object = None,
        loop: bool = True,
    ):
        if len(waypoints) < 2:
            raise ValueError("walker needs at least two waypoints")
        self._points: List[np.ndarray] = [as_vec3(w) for w in waypoints]
        n = len(self._points)
        legs = n if loop else n - 1
        if speeds is None:
            if speed_mps <= 0:
                raise ValueError("walker speed must be positive")
            self._speeds = [float(speed_mps)] * legs
        else:
            if len(speeds) != legs:
                raise ValueError(
                    f"need {legs} per-segment speeds, got {len(speeds)}"
                )
            self._speeds = [float(s) for s in speeds]
            if any(s <= 0 for s in self._speeds):
                raise ValueError("walker speed must be positive")
        if pauses is None:
            self._pauses = [0.0] * n
        elif np.isscalar(pauses):
            if float(pauses) < 0:  # type: ignore[arg-type]
                raise ValueError("pause must be non-negative")
            self._pauses = [float(pauses)] * n  # type: ignore[arg-type]
        else:
            if len(pauses) != n:  # type: ignore[arg-type]
                raise ValueError(
                    f"need {n} per-waypoint pauses, got {len(pauses)}"  # type: ignore[arg-type]
                )
            self._pauses = [float(p) for p in pauses]  # type: ignore[union-attr]
            if any(p < 0 for p in self._pauses):
                raise ValueError("pause must be non-negative")
        self.loop = bool(loop)
        self._leg = 0
        self._progress = 0.0
        self._pause_left = 0.0
        self._done = False

    def _leg_len(self, leg: int) -> float:
        a = self._points[leg]
        b = self._points[(leg + 1) % len(self._points)]
        return float(np.linalg.norm(b - a))

    def position(self) -> np.ndarray:
        if self._done:
            return self._points[-1].copy()
        a = self._points[self._leg]
        b = self._points[(self._leg + 1) % len(self._points)]
        leg_len = self._leg_len(self._leg)
        t = min(self._progress / leg_len, 1.0) if leg_len > 0 else 1.0
        return a + (b - a) * t

    def step(self, dt: float) -> np.ndarray:
        t_left = _check_dt(dt)
        # A lap of zero-length legs with zero pauses consumes no time;
        # bail rather than spin (matches "standing still").
        spins = 0
        limit = 4 * len(self._points) + 8
        while t_left > 0 and not self._done:
            if self._pause_left > 0:
                used = min(self._pause_left, t_left)
                self._pause_left -= used
                t_left -= used
                continue
            leg_len = self._leg_len(self._leg)
            speed = self._speeds[self._leg]
            left_on_leg = leg_len - self._progress
            need = left_on_leg / speed
            if t_left < need:
                self._progress += speed * t_left
                t_left = 0.0
            else:
                t_left -= need
                arrived = (self._leg + 1) % len(self._points)
                self._pause_left = self._pauses[arrived]
                if not self.loop and arrived == len(self._points) - 1:
                    self._done = True
                    break
                self._leg = arrived
                self._progress = 0.0
                spins += 1
                if spins > limit and self._pause_left == 0.0:
                    break
        return self.position()


class RandomWalk(MobilityModelBase):
    """Seeded heading-jitter walk reflected inside a box.

    Each step perturbs the heading by a Gaussian draw scaled by
    ``sqrt(dt)`` and advances at constant speed; positions leaving the
    ``[lo, hi]`` xy box are mirrored back inside.  Height stays fixed
    at the start point's z.  Same seed + same step sequence → the
    identical path, and ``peek`` copies the Generator, so predictions
    match the actual next draw bit for bit.
    """

    def __init__(
        self,
        start: Sequence[float],
        lo: Sequence[float],
        hi: Sequence[float],
        speed_mps: float = 1.0,
        turn_std_rad: float = 0.8,
        seed: int = 0,
    ):
        if speed_mps <= 0:
            raise ValueError("walker speed must be positive")
        self._pos = as_vec3(start).astype(float)
        self._lo = as_vec3(lo).astype(float)
        self._hi = as_vec3(hi).astype(float)
        if np.any(self._hi[:2] <= self._lo[:2]):
            raise ValueError("random-walk bounds must have positive extent")
        self.speed_mps = float(speed_mps)
        self.turn_std_rad = float(turn_std_rad)
        self._rng = np.random.default_rng(seed)
        self._heading = float(self._rng.uniform(0.0, 2.0 * math.pi))

    def position(self) -> np.ndarray:
        return self._pos.copy()

    def step(self, dt: float) -> np.ndarray:
        dt = _check_dt(dt)
        self._heading += float(
            self._rng.normal(0.0, self.turn_std_rad) * math.sqrt(dt)
        )
        nxt = self._pos.copy()
        nxt[0] += math.cos(self._heading) * self.speed_mps * dt
        nxt[1] += math.sin(self._heading) * self.speed_mps * dt
        for axis in (0, 1):
            lo, hi = self._lo[axis], self._hi[axis]
            if nxt[axis] < lo:
                nxt[axis] = min(2.0 * lo - nxt[axis], hi)
                self._heading = (
                    math.pi - self._heading if axis == 0 else -self._heading
                )
            elif nxt[axis] > hi:
                nxt[axis] = max(2.0 * hi - nxt[axis], lo)
                self._heading = (
                    math.pi - self._heading if axis == 0 else -self._heading
                )
        self._pos = nxt
        return self._pos.copy()


class TraceReplay(MobilityModelBase):
    """Replays a recorded position trace (JSONL, load-style).

    Each line is ``{"t": <seconds>, "pos": [x, y, z]}`` with
    non-decreasing timestamps — the same file shape as
    ``repro.load``'s arrival traces, extended with a position.  The
    replayed position is the piecewise-linear interpolation at the
    model's local time; before the first sample it holds the first
    position, after the last it holds the last.
    """

    def __init__(self, path: str):
        if not os.path.exists(path):
            raise ServiceError(f"trace file not found: {path}")
        self.path = path
        times: List[float] = []
        positions: List[np.ndarray] = []
        last = -math.inf
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                if not line.strip():
                    continue
                t, pos = self._parse_line(line, lineno, path)
                if t < last:
                    raise ServiceError(
                        f"{path}:{lineno}: trace times must be "
                        f"non-decreasing ({t} after {last})"
                    )
                last = t
                times.append(t)
                positions.append(pos)
        if not times:
            raise ServiceError(f"trace file is empty: {path}")
        self._times = np.asarray(times, dtype=float)
        self._positions = np.vstack(positions)
        self._time = 0.0

    @staticmethod
    def _parse_line(
        line: str, lineno: int, path: str
    ) -> Tuple[float, np.ndarray]:
        try:
            record = json.loads(line)
            return float(record["t"]), as_vec3(record["pos"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ServiceError(
                f"{path}:{lineno}: bad trace line ({exc})"
            ) from exc

    def position(self) -> np.ndarray:
        t = self._time
        times, pos = self._times, self._positions
        if t <= times[0]:
            return pos[0].copy()
        if t >= times[-1]:
            return pos[-1].copy()
        i = int(np.searchsorted(times, t, side="right")) - 1
        t0, t1 = times[i], times[i + 1]
        if t1 == t0:
            return pos[i + 1].copy()
        frac = (t - t0) / (t1 - t0)
        return pos[i] + (pos[i + 1] - pos[i]) * frac

    def step(self, dt: float) -> np.ndarray:
        self._time += _check_dt(dt)
        return self.position()


def write_mobility_trace(
    path: str, samples: Sequence[Tuple[float, Sequence[float]]]
) -> int:
    """Record ``(t, position)`` samples as a JSONL trace.

    Values are rounded to nanometer/nanosecond precision so the file
    round-trips bit-stably through JSON across platforms.
    """
    count = 0
    with open(path, "w") as fh:
        for t, pos in samples:
            record = {
                "t": round(float(t), 9),
                "pos": [round(float(v), 9) for v in as_vec3(pos)],
            }
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_mobility_trace(path: str) -> Iterator[Tuple[float, np.ndarray]]:
    """All ``(t, position)`` samples from a mobility trace (eager)."""
    replay = TraceReplay(path)
    return list(zip(replay._times.tolist(), list(replay._positions)))
