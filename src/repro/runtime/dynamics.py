"""Environment dynamics: scripted people and furniture movement.

The runtime's job is reacting to a physical world it cannot control.
This engine moves human-sized obstacles along waypoint paths and
relocates furniture/endpoints on schedules, mutating the
:class:`Environment` (which bumps its version, invalidating channel
caches) and publishing events on the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.environment import Environment
from ..geometry.materials import HUMAN
from ..geometry.shapes import Box
from ..geometry.vec import as_vec3
from .events import EndpointMoved, EventBus, FurnitureMoved, HumanMoved

#: Footprint and height of the walker obstacle (meters).
HUMAN_SIZE = (0.5, 0.5, 1.8)


@dataclass
class Walker:
    """A person walking a closed waypoint loop.

    Attributes:
        key: dynamic-obstacle key in the environment.
        waypoints: loop vertices (each a 2-D/3-D point).
        speed_mps: walking speed.
    """

    key: str
    waypoints: Sequence[Sequence[float]]
    speed_mps: float = 1.2
    _leg: int = field(default=0, repr=False)
    _progress: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("walker needs at least two waypoints")
        if self.speed_mps <= 0:
            raise ValueError("walker speed must be positive")
        self._points = [as_vec3(w) for w in self.waypoints]

    def position(self) -> np.ndarray:
        """Current feet position (xy at floor level)."""
        a = self._points[self._leg]
        b = self._points[(self._leg + 1) % len(self._points)]
        leg_len = float(np.linalg.norm(b - a))
        t = min(self._progress / leg_len, 1.0) if leg_len > 0 else 1.0
        return a + (b - a) * t

    def step(self, dt: float) -> np.ndarray:
        """Advance along the loop; returns the new position."""
        remaining = self.speed_mps * dt
        while remaining > 0:
            a = self._points[self._leg]
            b = self._points[(self._leg + 1) % len(self._points)]
            leg_len = float(np.linalg.norm(b - a))
            left_on_leg = leg_len - self._progress
            if remaining < left_on_leg:
                self._progress += remaining
                remaining = 0.0
            else:
                remaining -= left_on_leg
                self._leg = (self._leg + 1) % len(self._points)
                self._progress = 0.0
        return self.position()

    def box(self) -> Box:
        """The obstacle box at the current position."""
        pos = self.position()
        w, d, h = HUMAN_SIZE
        lo = np.array([pos[0] - w / 2, pos[1] - d / 2, 0.0])
        hi = np.array([pos[0] + w / 2, pos[1] + d / 2, h])
        return Box(lo, hi, HUMAN, name=self.key)


class EnvironmentDynamics:
    """Drives walkers (and one-shot moves) against an environment."""

    def __init__(self, env: Environment, bus: Optional[EventBus] = None):
        self.env = env
        self.bus = bus or EventBus()
        self._walkers: List[Walker] = []
        self._time = 0.0

    @property
    def time(self) -> float:
        """Simulated dynamics time."""
        return self._time

    def add_walker(self, walker: Walker) -> Walker:
        """Register a walker and place its obstacle."""
        self._walkers.append(walker)
        self.env.add_dynamic_box(walker.key, walker.box())
        return walker

    def step(self, dt: float) -> int:
        """Advance all walkers; returns events published."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._time += dt
        published = 0
        for walker in self._walkers:
            pos = walker.step(dt)
            self.env.add_dynamic_box(walker.key, walker.box())
            self.bus.publish(
                HumanMoved(
                    time=self._time,
                    key=walker.key,
                    position=tuple(map(float, pos)),
                )
            )
            published += 1
        return published

    def move_furniture(self, key: str, offset: Sequence[float]) -> None:
        """Translate a dynamic obstacle once and publish the event."""
        self.env.move_dynamic_box(key, offset)
        self.bus.publish(
            FurnitureMoved(
                time=self._time,
                key=key,
                offset=tuple(map(float, as_vec3(offset))),
            )
        )

    def move_endpoint(self, client, position: Sequence[float]) -> None:
        """Relocate a client device and publish the event."""
        client.move_to(position)
        self.bus.publish(
            EndpointMoved(
                time=self._time,
                client_id=client.client_id,
                position=tuple(map(float, as_vec3(position))),
            )
        )
