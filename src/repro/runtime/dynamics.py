"""Environment dynamics: scripted people, clients, and furniture.

The runtime's job is reacting to a physical world it cannot control.
This engine drives :class:`~repro.mobility.MobilityModel` instances —
human-sized obstacles walking waypoint loops, mobile client endpoints,
replayed traces — mutating the :class:`Environment` (which bumps its
version, invalidating channel caches) and publishing events on the bus.

Mutation attribution matters here: obstacle motion goes through
``Environment.add_dynamic_box``, which records the *union* of the old
and new AABBs as the dirty region, so the channel leg cache purges only
legs whose ray corridors cross the motion — never the whole cache.
Mobile client endpoints are not geometry; their moves publish
:class:`EndpointMoved` (re-pointing the client's tasks) without any
environment mutation at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geometry.environment import Environment
from ..geometry.materials import HUMAN
from ..geometry.shapes import Box
from ..geometry.vec import as_vec3
from ..mobility import MobilityModelBase, WaypointWalker
from .events import EndpointMoved, EventBus, FurnitureMoved, HumanMoved

#: Footprint and height of the walker obstacle (meters).
HUMAN_SIZE = (0.5, 0.5, 1.8)


class Walker:
    """A person walking a waypoint loop (thin mobility-model adapter).

    Kept for compatibility with pre-``repro.mobility`` callers: the
    classic ``Walker(key, waypoints, speed_mps)`` signature builds a
    closed-loop :class:`WaypointWalker` underneath, and any other
    :class:`MobilityModel` can be slotted in via ``model=``.

    Attributes:
        key: dynamic-obstacle key in the environment.
        model: the underlying mobility model.
    """

    def __init__(
        self,
        key: str,
        waypoints: Optional[Sequence[Sequence[float]]] = None,
        speed_mps: float = 1.2,
        model: Optional[MobilityModelBase] = None,
    ):
        self.key = key
        if model is None:
            model = WaypointWalker(waypoints or [], speed_mps=speed_mps)
        self.model = model

    def position(self) -> np.ndarray:
        """Current feet position (xy at floor level)."""
        return self.model.position()

    def step(self, dt: float) -> np.ndarray:
        """Advance the model; returns the new position."""
        return self.model.step(dt)

    def peek(self, dt: float) -> np.ndarray:
        """Predict the next position without advancing (bit-exact)."""
        return self.model.peek(dt)

    def box(self) -> Box:
        """The obstacle box at the current position.

        The position's z is the floor the walker stands on (0 for 2-D
        waypoints), so upper-storey walkers block upper-storey rays.
        """
        pos = self.position()
        w, d, h = HUMAN_SIZE
        lo = np.array([pos[0] - w / 2, pos[1] - d / 2, pos[2]])
        hi = np.array([pos[0] + w / 2, pos[1] + d / 2, pos[2] + h])
        return Box(lo, hi, HUMAN, name=self.key)


class _MobileClient:
    """A client endpoint carried by a mobility model."""

    __slots__ = ("client", "model")

    def __init__(self, client, model: MobilityModelBase):
        self.client = client
        self.model = model


class EnvironmentDynamics:
    """Drives walkers, mobile clients, and one-shot moves."""

    def __init__(self, env: Environment, bus: Optional[EventBus] = None):
        self.env = env
        self.bus = bus or EventBus()
        self._walkers: List[Walker] = []
        self._last_pos: Dict[str, np.ndarray] = {}
        self._clients: Dict[str, _MobileClient] = {}
        self._time = 0.0

    @property
    def time(self) -> float:
        """Simulated dynamics time."""
        return self._time

    @property
    def walkers(self) -> List[Walker]:
        """Registered obstacle walkers."""
        return list(self._walkers)

    def add_walker(self, walker: Walker) -> Walker:
        """Register a walker and place its obstacle."""
        self._walkers.append(walker)
        self.env.add_dynamic_box(walker.key, walker.box())
        self._last_pos[walker.key] = walker.position()
        return walker

    def attach_client(self, client, model: MobilityModelBase):
        """Carry a client endpoint along a mobility model.

        The client snaps to the model's current position (quietly — no
        event; the first ``step`` publishes normally).  Endpoints are
        not obstacles: their motion never mutates the environment.
        """
        client.move_to(model.position())
        self._clients[client.client_id] = _MobileClient(client, model)
        return model

    def detach_client(self, client_id: str) -> bool:
        """Stop carrying a client (e.g. on churn departure)."""
        return self._clients.pop(client_id, None) is not None

    def mobile_clients(self) -> Dict[str, MobilityModelBase]:
        """client_id → mobility model for every carried endpoint."""
        return {cid: mc.model for cid, mc in self._clients.items()}

    def step(self, dt: float) -> int:
        """Advance all walkers and mobile clients; returns events published.

        A walker whose position did not change (mid-pause) neither
        touches the environment nor publishes — dwelling is free.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._time += dt
        published = 0
        for walker in self._walkers:
            pos = walker.step(dt)
            if np.array_equal(pos, self._last_pos.get(walker.key)):
                continue
            self._last_pos[walker.key] = pos
            self.env.add_dynamic_box(walker.key, walker.box())
            self.bus.publish(
                HumanMoved(
                    time=self._time,
                    key=walker.key,
                    position=tuple(map(float, pos)),
                )
            )
            published += 1
        for mobile in self._clients.values():
            pos = mobile.model.step(dt)
            if np.array_equal(pos, mobile.client.position):
                continue
            self.move_endpoint(mobile.client, pos)
            published += 1
        return published

    def peek_clients(self, dt: float) -> Dict[str, np.ndarray]:
        """Predicted client positions one ``step(dt)`` ahead.

        Runs each model's ``peek`` — the exact arithmetic of the real
        next step on a copy — so predictions are bit-identical to where
        the endpoints will actually be.  This is what the speculative
        leg prefetcher feeds into the channel cache.
        """
        return {
            cid: mc.model.peek(dt) for cid, mc in self._clients.items()
        }

    def move_furniture(self, key: str, offset: Sequence[float]) -> None:
        """Translate a dynamic obstacle once and publish the event."""
        self.env.move_dynamic_box(key, offset)
        self.bus.publish(
            FurnitureMoved(
                time=self._time,
                key=key,
                offset=tuple(map(float, as_vec3(offset))),
            )
        )

    def move_endpoint(self, client, position: Sequence[float]) -> None:
        """Relocate a client device and publish the event."""
        client.move_to(position)
        self.bus.publish(
            EndpointMoved(
                time=self._time,
                client_id=client.client_id,
                position=tuple(map(float, as_vec3(position))),
            )
        )
