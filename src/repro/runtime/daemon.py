"""The SurfOS runtime daemon: the §5 "OS versus libraries" argument.

A library configures surfaces once at "compile time"; a runtime watches
the environment and reconfigures.  The daemon subscribes to dynamics
events, samples coverage through the monitor, and re-optimizes the
active tasks when degradation crosses a threshold — recording reaction
latency (detection → configurations live) as ``daemon.reaction``
telemetry events the runtime benchmarks read their timings from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.errors import ServiceError
from ..services.connectivity import snr_map_db
from ..services.monitoring import ChannelMonitor
from ..telemetry import Telemetry
from .clock import SimClock
from .dynamics import EnvironmentDynamics
from .events import (
    ChannelDegraded,
    EndpointMoved,
    Event,
    EventBus,
    HumanMoved,
    SurfaceDegraded,
)


@dataclass
class ReactionRecord:
    """One detection→reconfiguration cycle."""

    detected_at: float
    completed_at: float
    trigger: str
    median_snr_before_db: float
    median_snr_after_db: float
    #: Channel legs re-traced while reacting (the rest came from the
    #: simulator's incremental leg cache); -1 when no simulator stats
    #: were available.
    legs_retraced: int = -1
    #: Adaptive solve-budget accounting for this reaction, from the
    #: orchestrator's :class:`ReoptimizationResult` (all zero when
    #: adaptive budgets are disabled).
    solver_budgeted_iterations: int = 0
    solver_used_iterations: int = 0
    solver_warm_hits: int = 0
    solver_early_stops: int = 0
    #: Wall-clock seconds spent in the optimize phase (the ``wall_``
    #: prefix keeps it out of sim-only telemetry exports).
    wall_solve_s: float = 0.0

    @property
    def reaction_latency_s(self) -> float:
        """Detection to configurations-live latency."""
        return self.completed_at - self.detected_at


class SurfOSDaemon:
    """Monitors the environment and keeps active tasks served."""

    def __init__(
        self,
        orchestrator,
        dynamics: Optional[EnvironmentDynamics] = None,
        monitor: Optional[ChannelMonitor] = None,
        clock: Optional[SimClock] = None,
        degradation_threshold_db: float = 8.0,
        observe_room: Optional[str] = None,
        pipeline=None,
    ):
        self.orchestrator = orchestrator
        self.telemetry = getattr(orchestrator, "telemetry", None) or Telemetry()
        self.clock = clock or SimClock()
        #: Optional request pipeline; when set, triggers are coalesced
        #: through it instead of reoptimizing immediately.
        self.pipeline = pipeline
        self.bus = dynamics.bus if dynamics else EventBus()
        self.dynamics = dynamics
        self.monitor = monitor or ChannelMonitor(
            drop_threshold_db=degradation_threshold_db
        )
        self.reactions: List[ReactionRecord] = []
        self.reoptimize_failures = 0
        self._observe_room = observe_room
        self._observe_points: Optional[np.ndarray] = None
        self._dirty = False
        self._mobility_dirty = False
        self._fault_dirty = False
        self.bus.subscribe(HumanMoved, self._on_motion)
        self.bus.subscribe(EndpointMoved, self._on_endpoint_moved)
        self.bus.subscribe(SurfaceDegraded, self._on_surface_degraded)
        # Hardware health changes (quarantine, panel death, element
        # loss) surface as bus events so the daemon reacts to broken
        # hardware exactly like it reacts to motion.
        hardware = getattr(orchestrator, "hardware", None)
        if hardware is not None and getattr(hardware, "on_degraded", 1) is None:
            hardware.on_degraded = self._publish_degraded

    # ------------------------------------------------------------------

    def _points(self) -> np.ndarray:
        if self._observe_points is None:
            room = self._observe_room
            if room is None:
                contexts = self.orchestrator.active_contexts()
                if not contexts:
                    raise ServiceError("daemon has nothing to observe")
                self._observe_points = np.concatenate(
                    [c.points for c in contexts], axis=0
                )
            else:
                self._observe_points = self.orchestrator._room_points(room)
        return self._observe_points

    def _on_motion(self, event: Event) -> None:
        self._dirty = True

    def _on_endpoint_moved(self, event: EndpointMoved) -> None:
        """A client moved: re-point its tasks and force reoptimization."""
        affected = self.orchestrator.refresh_client_tasks(event.client_id)
        if affected:
            self._mobility_dirty = True

    def _publish_degraded(self, surface_id: str, reason: str) -> None:
        """Hardware-manager hook → :class:`SurfaceDegraded` bus event."""
        self.bus.publish(
            SurfaceDegraded(
                time=self.clock.now, surface_id=surface_id, reason=reason
            )
        )

    def _on_surface_degraded(self, event: SurfaceDegraded) -> None:
        self._fault_dirty = True

    def observe(self) -> np.ndarray:
        """Sample current coverage and feed the monitor."""
        with self.telemetry.span("daemon-observe"):
            model = self.orchestrator.simulator.build(
                self.orchestrator.ap.node(),
                self._points(),
                self.orchestrator.hardware.panels(),
            )
            configs = self.orchestrator._live_coefficients()
            snrs = snr_map_db(model, configs, self.orchestrator.budget)
            anomalies = self.monitor.observe(self.clock.now, snrs)
        self.telemetry.counter("daemon.observations")
        if anomalies:
            self.telemetry.counter("daemon.anomalies", len(anomalies))
        for anomaly in anomalies:
            self.bus.publish(
                ChannelDegraded(
                    time=self.clock.now,
                    point_index=anomaly.point_index,
                    drop_db=anomaly.drop_db,
                )
            )
        return snrs

    def step(self, dt: float = 0.5) -> Optional[ReactionRecord]:
        """One daemon cycle: advance dynamics, observe, react if needed.

        With a request pipeline attached, triggers route through its
        coalescing window — several triggers landing within the window
        are absorbed by one joint reoptimization — and the returned
        reaction record (when the pipeline fired this cycle) measures
        detection at the *earliest* coalesced trigger.  Without a
        pipeline the daemon reoptimizes immediately, as before.

        Returns the reaction record when a re-optimization happened.
        """
        self.clock.advance(dt)
        if self.dynamics is not None:
            self.dynamics.step(dt)
        hardware = getattr(self.orchestrator, "hardware", None)
        if hardware is not None and hasattr(hardware, "tick_faults"):
            hardware.tick_faults(self.clock.now)
        snrs_before = self.observe()
        degraded = bool(
            self.monitor.anomalies
            and self.monitor.anomalies[-1].time == self.clock.now
        )
        if self._fault_dirty:
            trigger = "surface-degraded"
        elif self._mobility_dirty:
            trigger = "endpoint-moved"
        elif degraded and self._dirty:
            trigger = "channel-degraded"
        else:
            trigger = None
        if self.pipeline is not None:
            return self._step_pipelined(trigger, snrs_before)
        if trigger is None:
            return None
        detected_at = self.clock.now
        legs_before = self._legs_retraced_total()
        try:
            if trigger == "surface-degraded":
                with self.telemetry.span("degraded-recovery") as span:
                    result = self.orchestrator.reoptimize(now=self.clock.now)
                    span.set(trigger=trigger)
            else:
                result = self.orchestrator.reoptimize(now=self.clock.now)
        except ServiceError as exc:
            # Degraded-mode guarantee: a reoptimization that cannot be
            # satisfied (e.g. every panel dead) degrades service, it
            # does not crash the daemon.
            self.reoptimize_failures += 1
            self.telemetry.counter("daemon.reoptimize_failures")
            self.telemetry.event(
                "daemon.reoptimize_failed", trigger=trigger, error=str(exc)
            )
            self._dirty = False
            self._mobility_dirty = False
            self._fault_dirty = False
            return None
        self._dirty = False
        self._mobility_dirty = False
        self._fault_dirty = False
        snrs_after = self.observe()
        record = ReactionRecord(
            detected_at=detected_at,
            completed_at=self.orchestrator.clock_now,
            trigger=trigger,
            median_snr_before_db=float(np.median(snrs_before)),
            median_snr_after_db=float(np.median(snrs_after)),
            legs_retraced=self._legs_delta(legs_before),
            **self._solver_fields(result),
        )
        self.reactions.append(record)
        self.telemetry.counter("daemon.reactions")
        self.telemetry.event(
            "daemon.reaction",
            trigger=record.trigger,
            detected_at=record.detected_at,
            completed_at=record.completed_at,
            reaction_latency_s=record.reaction_latency_s,
            median_snr_before_db=record.median_snr_before_db,
            median_snr_after_db=record.median_snr_after_db,
            legs_retraced=record.legs_retraced,
            **self._solver_event_attrs(result, record),
        )
        return record

    @staticmethod
    def _solver_fields(result) -> Dict[str, float]:
        """Adaptive-solve record fields from a reoptimization result."""
        stats = dict(getattr(result, "solver", None) or {})
        timing = dict(getattr(result, "timing", None) or {})
        return {
            "solver_budgeted_iterations": int(
                stats.get("budgeted_iterations", 0)
            ),
            "solver_used_iterations": int(stats.get("used_iterations", 0)),
            "solver_warm_hits": int(stats.get("warm_hits", 0)),
            "solver_early_stops": int(stats.get("early_stops", 0)),
            "wall_solve_s": float(timing.get("optimize_s", 0.0)),
        }

    @staticmethod
    def _solver_event_attrs(result, record: ReactionRecord) -> Dict[str, int]:
        """``daemon.reaction`` attrs for adaptive solves.

        Empty when adaptive budgets are off, so the disabled path emits
        byte-identical telemetry to a daemon without the feature.
        """
        if not getattr(result, "solver", None):
            return {}
        return {
            "solver_budgeted_iterations": record.solver_budgeted_iterations,
            "solver_used_iterations": record.solver_used_iterations,
            "solver_warm_hits": record.solver_warm_hits,
            "solver_early_stops": record.solver_early_stops,
        }

    def _legs_retraced_total(self) -> int:
        """Legs traced so far by the orchestrator's channel simulator."""
        simulator = getattr(self.orchestrator, "simulator", None)
        if simulator is None or not hasattr(simulator, "leg_cache_stats"):
            return -1
        return int(simulator.leg_cache_stats[1])

    def _legs_delta(self, before: int) -> int:
        after = self._legs_retraced_total()
        if before < 0 or after < 0:
            return -1
        return after - before

    def _step_pipelined(
        self, trigger: Optional[str], snrs_before: np.ndarray
    ) -> Optional[ReactionRecord]:
        """Route this cycle's trigger through the request pipeline.

        The pipeline owns coalescing: the trigger is noted, the dirty
        flags clear immediately, and the single tick below may or may
        not fire a joint reoptimization depending on the window.
        """
        legs_before = self._legs_retraced_total()
        if trigger is not None:
            self.pipeline.note_trigger(trigger, now=self.clock.now)
            if trigger in ("surface-degraded", "channel-degraded"):
                self.orchestrator.mark_dirty()  # environment-wide
            self._dirty = False
            self._mobility_dirty = False
            self._fault_dirty = False
        tick = self.pipeline.tick(self.clock.now)
        if tick.failure_reason:
            self.reoptimize_failures += 1
            self.telemetry.counter("daemon.reoptimize_failures")
            self.telemetry.event(
                "daemon.reoptimize_failed",
                trigger=tick.primary_trigger or (trigger or "pipeline"),
                error=tick.failure_reason,
            )
            return None
        if not tick.reoptimized:
            return None
        snrs_after = self.observe()
        record = ReactionRecord(
            detected_at=(
                tick.first_trigger_at
                if tick.first_trigger_at is not None
                else self.clock.now
            ),
            completed_at=self.orchestrator.clock_now,
            trigger=tick.primary_trigger or (trigger or "pipeline"),
            median_snr_before_db=float(np.median(snrs_before)),
            median_snr_after_db=float(np.median(snrs_after)),
            legs_retraced=self._legs_delta(legs_before),
            **self._solver_fields(tick.result),
        )
        self.reactions.append(record)
        self.telemetry.counter("daemon.reactions")
        self.telemetry.event(
            "daemon.reaction",
            trigger=record.trigger,
            detected_at=record.detected_at,
            completed_at=record.completed_at,
            reaction_latency_s=record.reaction_latency_s,
            median_snr_before_db=record.median_snr_before_db,
            median_snr_after_db=record.median_snr_after_db,
            coalesced=len(tick.coalesced),
            **self._solver_event_attrs(tick.result, record),
        )
        return record

    def run(self, steps: int, dt: float = 0.5) -> List[ReactionRecord]:
        """Run several daemon cycles; returns reactions that fired."""
        fired = []
        for _ in range(steps):
            record = self.step(dt)
            if record is not None:
                fired.append(record)
        return fired
