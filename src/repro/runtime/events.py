"""Runtime events: what makes radio environments need an OS (§5).

"Events such as furniture movement and people walking can require
dynamic reconfiguration of surface states."  These event types flow
over a simple synchronous bus from the dynamics engine (and device
layer) to the SurfOS daemon, which decides when to re-optimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Type

import numpy as np


@dataclass(frozen=True)
class Event:
    """Base event: everything carries a timestamp."""

    time: float


@dataclass(frozen=True)
class HumanMoved(Event):
    """A person moved to a new position."""

    key: str = ""
    position: tuple = (0.0, 0.0, 0.0)


@dataclass(frozen=True)
class FurnitureMoved(Event):
    """A furniture obstacle moved."""

    key: str = ""
    offset: tuple = (0.0, 0.0, 0.0)


@dataclass(frozen=True)
class EndpointMoved(Event):
    """A client device changed position."""

    client_id: str = ""
    position: tuple = (0.0, 0.0, 0.0)


@dataclass(frozen=True)
class DemandArrived(Event):
    """A new application demand arrived at the broker."""

    app_name: str = ""
    client_id: str = ""


@dataclass(frozen=True)
class ChannelDegraded(Event):
    """The monitor detected a coverage anomaly."""

    point_index: int = -1
    drop_db: float = 0.0


@dataclass(frozen=True)
class SurfaceDegraded(Event):
    """Hardware health changed: a surface died, lost elements, or was
    quarantined after repeated control failures.

    Published by the daemon from the hardware manager's
    ``on_degraded`` hook; the daemon itself reacts by re-optimizing
    around the degraded surface.
    """

    surface_id: str = ""
    reason: str = ""


class EventBus:
    """Synchronous publish/subscribe by event type (subclass-aware)."""

    def __init__(self) -> None:
        self._subscribers: Dict[Type[Event], List[Callable[[Event], None]]] = {}
        self._log: List[Event] = []

    def subscribe(
        self, event_type: Type[Event], handler: Callable[[Event], None]
    ) -> None:
        """Register a handler for an event type (and its subclasses)."""
        self._subscribers.setdefault(event_type, []).append(handler)

    def publish(self, event: Event) -> int:
        """Deliver an event; returns the number of handlers invoked."""
        self._log.append(event)
        invoked = 0
        for event_type, handlers in self._subscribers.items():
            if isinstance(event, event_type):
                for handler in handlers:
                    handler(event)
                    invoked += 1
        return invoked

    @property
    def log(self) -> List[Event]:
        """Every event ever published, in order."""
        return list(self._log)

    def events_of(self, event_type: Type[Event]) -> List[Event]:
        """Published events of one type (including subclasses)."""
        return [e for e in self._log if isinstance(e, event_type)]
