"""Runtime layer: clock, events, environment dynamics, daemon."""

from .clock import SimClock
from .daemon import ReactionRecord, SurfOSDaemon
from .dynamics import HUMAN_SIZE, EnvironmentDynamics, Walker
from .events import (
    ChannelDegraded,
    DemandArrived,
    EndpointMoved,
    Event,
    EventBus,
    FurnitureMoved,
    HumanMoved,
    SurfaceDegraded,
)

__all__ = [
    "ChannelDegraded",
    "DemandArrived",
    "EndpointMoved",
    "Event",
    "EventBus",
    "EnvironmentDynamics",
    "FurnitureMoved",
    "HUMAN_SIZE",
    "HumanMoved",
    "ReactionRecord",
    "SimClock",
    "SurfOSDaemon",
    "SurfaceDegraded",
    "Walker",
]
