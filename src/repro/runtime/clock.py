"""Simulated wall clock for the SurfOS runtime."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple


class SimClock:
    """A monotonic simulated clock with scheduled callbacks."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run a callback when the clock reaches ``at``."""
        if at < self._now:
            raise ValueError(f"cannot schedule in the past ({at} < {self._now})")
        heapq.heappush(self._queue, (at, next(self._counter), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run a callback ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def advance(self, dt: float) -> int:
        """Move time forward, firing due callbacks in order.

        Returns the number of callbacks fired.
        """
        if dt < 0:
            raise ValueError("time cannot move backwards")
        deadline = self._now + dt
        fired = 0
        while self._queue and self._queue[0][0] <= deadline:
            at, _, callback = heapq.heappop(self._queue)
            self._now = at
            callback()
            fired += 1
        self._now = deadline
        return fired

    def next_event_at(self):
        """Sim time of the earliest scheduled callback (None when idle).

        Event-driven drivers (``RequestPipeline.pump``, the load
        harness) advance straight to this instant instead of crawling a
        fixed tick grid — submissions and window deadlines then happen
        at their exact simulated times.
        """
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        """Callbacks still scheduled."""
        return len(self._queue)
