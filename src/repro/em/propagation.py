"""Free-space propagation primitives.

The channel simulator composes paths out of straight legs; each leg's
complex amplitude gain is the Friis amplitude (``λ / 4πd`` scaled by
the endpoint antenna gains) times a phase rotation from the electrical
path length.  The convention throughout the codebase: a channel ``h``
is an *amplitude* gain, i.e. received power is ``P_tx * |h|^2``.
"""

from __future__ import annotations

import math

from ..core.units import SPEED_OF_LIGHT, wavelength


def fspl_db(distance_m: float, frequency_hz: float) -> float:
    """Free-space path loss (dB) between isotropic antennas."""
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    lam = wavelength(frequency_hz)
    return -20.0 * math.log10(lam / (4.0 * math.pi * distance_m))

def friis_amplitude(
    distance_m: float,
    frequency_hz: float,
    gain_tx_linear: float = 1.0,
    gain_rx_linear: float = 1.0,
) -> float:
    """Linear amplitude gain of a free-space leg.

    ``|h| = (λ / 4πd) * sqrt(G_tx * G_rx)`` so that
    ``P_rx = P_tx |h|^2`` reproduces the Friis equation.
    """
    if distance_m <= 0:
        raise ValueError("distance must be positive")
    lam = wavelength(frequency_hz)
    return (lam / (4.0 * math.pi * distance_m)) * math.sqrt(
        gain_tx_linear * gain_rx_linear
    )


def path_phase(distance_m: float, frequency_hz: float) -> float:
    """Phase rotation (radians) accumulated over a path length.

    Negative sign convention: ``h ∝ exp(-j * 2π d / λ)``.
    """
    lam = wavelength(frequency_hz)
    return -2.0 * math.pi * distance_m / lam


def propagation_delay_s(distance_m: float) -> float:
    """Time of flight (s) over a distance."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return distance_m / SPEED_OF_LIGHT


def complex_leg_gain(
    distance_m: float,
    frequency_hz: float,
    gain_tx_linear: float = 1.0,
    gain_rx_linear: float = 1.0,
    extra_amplitude: float = 1.0,
) -> complex:
    """Full complex gain of one leg: Friis amplitude × path phase.

    ``extra_amplitude`` carries penetration/reflection factors collected
    along the leg.
    """
    amp = friis_amplitude(distance_m, frequency_hz, gain_tx_linear, gain_rx_linear)
    phase = path_phase(distance_m, frequency_hz)
    return amp * extra_amplitude * complex(math.cos(phase), math.sin(phase))
