"""Electromagnetics substrate: propagation, antennas, steering, noise."""

from .antenna import (
    ISOTROPIC,
    META_ATOM,
    META_ATOM_TRANSMISSIVE,
    PATCH,
    AntennaPattern,
    db_gain_to_linear,
)
from .noise import (
    LinkBudget,
    shannon_required_snr_db,
    snr_db_from_channel,
)
from .propagation import (
    complex_leg_gain,
    friis_amplitude,
    fspl_db,
    path_phase,
    propagation_delay_s,
)
from .steering import (
    beam_codebook_targets,
    focus_configuration,
    steering_phases_toward_angle,
    steering_phases_toward_point,
    ula_positions,
)

__all__ = [
    "AntennaPattern",
    "ISOTROPIC",
    "LinkBudget",
    "META_ATOM",
    "META_ATOM_TRANSMISSIVE",
    "PATCH",
    "beam_codebook_targets",
    "complex_leg_gain",
    "db_gain_to_linear",
    "focus_configuration",
    "friis_amplitude",
    "fspl_db",
    "path_phase",
    "propagation_delay_s",
    "shannon_required_snr_db",
    "snr_db_from_channel",
    "steering_phases_toward_angle",
    "steering_phases_toward_point",
    "ula_positions",
]
