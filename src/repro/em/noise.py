"""Noise floors, SNR, and link-capacity math."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.units import dbm_to_watts, thermal_noise_dbm, watts_to_dbm


@dataclass(frozen=True)
class LinkBudget:
    """Transmit-side and receiver-noise parameters of a link.

    Attributes:
        tx_power_dbm: transmit power.
        bandwidth_hz: channel bandwidth for noise and capacity.
        noise_figure_db: receiver noise figure.
    """

    tx_power_dbm: float = 20.0
    bandwidth_hz: float = 400e6
    noise_figure_db: float = 7.0

    @property
    def noise_floor_dbm(self) -> float:
        """Receiver noise floor in dBm."""
        return thermal_noise_dbm(self.bandwidth_hz, self.noise_figure_db)

    @property
    def tx_power_watts(self) -> float:
        """Transmit power in watts."""
        return dbm_to_watts(self.tx_power_dbm)

    @property
    def noise_watts(self) -> float:
        """Noise power in watts."""
        return dbm_to_watts(self.noise_floor_dbm)

    def rss_dbm(self, channel_power_gain: float) -> float:
        """Received signal strength for a linear channel power gain."""
        return watts_to_dbm(self.tx_power_watts * max(channel_power_gain, 0.0))

    def snr_db(self, channel_power_gain: float) -> float:
        """SNR in dB for a linear channel power gain (floored at -40 dB)."""
        snr_linear = self.tx_power_watts * max(channel_power_gain, 0.0) / self.noise_watts
        return 10.0 * math.log10(max(snr_linear, 1e-4))

    def snr_linear(self, channel_power_gain: float) -> float:
        """Linear SNR for a channel power gain."""
        return self.tx_power_watts * max(channel_power_gain, 0.0) / self.noise_watts

    def capacity_bps(self, channel_power_gain: float) -> float:
        """Shannon capacity (bit/s) for a channel power gain."""
        return self.bandwidth_hz * math.log2(1.0 + self.snr_linear(channel_power_gain))

    def required_gain_for_snr(self, snr_db: float) -> float:
        """Channel power gain needed to hit a target SNR."""
        return 10.0 ** (snr_db / 10.0) * self.noise_watts / self.tx_power_watts


def snr_db_from_channel(h: np.ndarray, budget: LinkBudget) -> float:
    """SNR with transmit MRT across the AP array.

    ``h`` is the per-AP-antenna complex amplitude channel; maximum-ratio
    transmission delivers power ``P_tx * ||h||^2``.
    """
    gain = float(np.sum(np.abs(np.asarray(h)) ** 2))
    return budget.snr_db(gain)


def shannon_required_snr_db(throughput_bps: float, bandwidth_hz: float) -> float:
    """Minimum SNR (dB) for a throughput over a bandwidth (Shannon inverse)."""
    if throughput_bps <= 0:
        raise ValueError("throughput must be positive")
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    snr_linear = 2.0 ** (throughput_bps / bandwidth_hz) - 1.0
    return 10.0 * math.log10(max(snr_linear, 1e-12))
