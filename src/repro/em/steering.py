"""Array steering vectors and beam codebooks.

Steering math appears in three places: the AP's antenna array, the
surface's element array (phase profiles that form beams toward points
or angles), and the AoA estimator's candidate predictions.  All of it
lives here.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..core.configuration import SurfaceConfiguration, wrap_phase
from ..core.units import wavelength
from ..geometry.vec import as_vec3


def ula_positions(
    num_antennas: int,
    frequency_hz: float,
    center: Sequence[float],
    axis: Sequence[float],
    spacing_wavelengths: float = 0.5,
) -> np.ndarray:
    """3-D positions of a uniform linear array centered on ``center``.

    Returns an ``(num_antennas, 3)`` array with elements spread along
    ``axis`` at ``spacing_wavelengths`` of the carrier wavelength.
    """
    if num_antennas < 1:
        raise ValueError("array needs at least one antenna")
    lam = wavelength(frequency_hz)
    axis_v = as_vec3(axis)
    norm = np.linalg.norm(axis_v)
    if norm == 0.0:
        raise ValueError("array axis must be non-zero")
    axis_v = axis_v / norm
    spacing = spacing_wavelengths * lam
    offsets = (np.arange(num_antennas) - (num_antennas - 1) / 2.0) * spacing
    return as_vec3(center)[None, :] + offsets[:, None] * axis_v[None, :]


def steering_phases_toward_point(
    element_positions: np.ndarray,
    source: Sequence[float],
    target: Sequence[float],
    frequency_hz: float,
) -> np.ndarray:
    """Per-element phase shifts focusing a source onto a target point.

    Classic RIS focusing: each element cancels the phase accumulated on
    its source→element and element→target legs, so contributions add
    coherently at the target.  Returns phases in [0, 2π), one per row of
    ``element_positions``.
    """
    lam = wavelength(frequency_hz)
    src = as_vec3(source)
    tgt = as_vec3(target)
    d1 = np.linalg.norm(element_positions - src[None, :], axis=1)
    d2 = np.linalg.norm(element_positions - tgt[None, :], axis=1)
    total = d1 + d2
    return wrap_phase(2.0 * math.pi * total / lam)


def steering_phases_toward_angle(
    element_positions: np.ndarray,
    source: Sequence[float],
    azimuth_rad: float,
    plane_axes: Sequence[Sequence[float]],
    frequency_hz: float,
) -> np.ndarray:
    """Phase profile steering a plane wave toward a far-field azimuth.

    ``plane_axes`` gives the two in-plane unit axes of the surface; the
    azimuth is measured in that plane from the first axis's normal
    projection.  Used to build DFT-style beam codebooks.
    """
    lam = wavelength(frequency_hz)
    u, v = (as_vec3(a) for a in plane_axes)
    # Outgoing direction in the surface's local frame: rotate the
    # surface normal (u × v) by the azimuth within the (normal, u) plane.
    normal = np.cross(u, v)
    normal = normal / np.linalg.norm(normal)
    direction = math.cos(azimuth_rad) * normal + math.sin(azimuth_rad) * (
        u / np.linalg.norm(u)
    )
    src = as_vec3(source)
    d_in = np.linalg.norm(element_positions - src[None, :], axis=1)
    # Far-field: outgoing phase advance is the projection on the
    # steering direction.
    proj = element_positions @ direction
    return wrap_phase(2.0 * math.pi * (d_in - proj) / lam)


def focus_configuration(
    element_positions: np.ndarray,
    shape: Sequence[int],
    source: Sequence[float],
    target: Sequence[float],
    frequency_hz: float,
    name: str = "",
) -> SurfaceConfiguration:
    """A :class:`SurfaceConfiguration` focusing ``source`` onto ``target``."""
    phases = steering_phases_toward_point(
        element_positions, source, target, frequency_hz
    )
    rows, cols = int(shape[0]), int(shape[1])
    return SurfaceConfiguration(
        phases=phases.reshape(rows, cols),
        name=name or "focus",
        frequency_hz=frequency_hz,
    )


def beam_codebook_targets(
    region_center: Sequence[float],
    region_span: Sequence[float],
    beams_x: int,
    beams_y: int,
    z: float = 1.0,
) -> List[np.ndarray]:
    """Grid of focal targets covering a rectangular region.

    A programmable surface stores one focus configuration per target —
    the paper's "multiple sets of phase shift values, each for a
    distinct beam direction".
    """
    if beams_x < 1 or beams_y < 1:
        raise ValueError("need at least one beam per axis")
    center = as_vec3(region_center)
    span = as_vec3(region_span)
    xs = center[0] + (np.linspace(-0.5, 0.5, beams_x) * span[0] if beams_x > 1 else [0.0])
    ys = center[1] + (np.linspace(-0.5, 0.5, beams_y) * span[1] if beams_y > 1 else [0.0])
    targets = []
    for y in np.atleast_1d(ys):
        for x in np.atleast_1d(xs):
            targets.append(np.array([x, y, z], dtype=float))
    return targets
