"""Antenna and meta-atom radiation patterns.

Every radiating endpoint in the simulator — AP antennas, client
antennas, and individual surface elements — is described by an
:class:`AntennaPattern`: a peak gain plus a normalized directivity
envelope over the angle from boresight.  Surface elements use the
standard ``cos^q`` meta-atom model; the exponent and peak gain are part
of each surface's hardware spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry.vec import as_vec3, normalize


def db_gain_to_linear(gain_dbi: float) -> float:
    """Convert an antenna gain in dBi to a linear power gain."""
    return 10.0 ** (gain_dbi / 10.0)


@dataclass(frozen=True)
class AntennaPattern:
    """A rotationally symmetric radiation pattern around boresight.

    Attributes:
        peak_gain_dbi: gain on boresight in dBi.
        cos_exponent: exponent ``q`` of the ``cos^q(θ)`` envelope;
            ``0`` means isotropic over the front hemisphere.
        front_only: if True, the back hemisphere (θ > 90°) radiates
            nothing — the right model for patch antennas and for
            reflective surface elements.
    """

    peak_gain_dbi: float = 0.0
    cos_exponent: float = 0.0
    front_only: bool = True

    def __post_init__(self) -> None:
        if self.cos_exponent < 0:
            raise ValueError("cos exponent must be non-negative")

    @property
    def peak_gain_linear(self) -> float:
        """Boresight power gain (linear)."""
        return db_gain_to_linear(self.peak_gain_dbi)

    def gain_linear(self, cos_theta: float) -> float:
        """Power gain at an angle whose cosine from boresight is given."""
        if self.front_only and cos_theta <= 0.0:
            return 0.0
        c = min(abs(cos_theta), 1.0)
        if self.cos_exponent == 0.0:
            return self.peak_gain_linear
        return self.peak_gain_linear * (c ** self.cos_exponent)

    def gain_toward(
        self, position: np.ndarray, boresight: np.ndarray, target: np.ndarray
    ) -> float:
        """Power gain from ``position`` (facing ``boresight``) toward ``target``."""
        direction = as_vec3(target) - as_vec3(position)
        dist = np.linalg.norm(direction)
        if dist == 0.0:
            return self.peak_gain_linear
        cos_theta = float(np.dot(direction / dist, normalize(boresight)))
        return self.gain_linear(cos_theta)

    def amplitude_toward(
        self, position: np.ndarray, boresight: np.ndarray, target: np.ndarray
    ) -> float:
        """Amplitude (sqrt power) gain toward a target point."""
        return math.sqrt(self.gain_toward(position, boresight, target))


#: Idealized isotropic radiator (client devices).
ISOTROPIC = AntennaPattern(peak_gain_dbi=0.0, cos_exponent=0.0, front_only=False)

#: A patch-like AP antenna: ~8 dBi, cos^2 envelope, front hemisphere.
PATCH = AntennaPattern(peak_gain_dbi=8.0, cos_exponent=2.0, front_only=True)

#: Standard meta-atom element model: ~5 dBi with cos envelope.
META_ATOM = AntennaPattern(peak_gain_dbi=5.0, cos_exponent=1.0, front_only=True)

#: Wide meta-atom used by transmissive surfaces (radiates both sides).
META_ATOM_TRANSMISSIVE = AntennaPattern(
    peak_gain_dbi=5.0, cos_exponent=1.0, front_only=False
)
