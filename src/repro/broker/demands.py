"""Application-level demands (§3.3).

The service broker exists because "existing systems optimize for
signal-level metrics like SNR or RSSI, [which] does not always align
with ... the application-level end user demands."  An
:class:`ApplicationDemand` expresses what the *application* needs —
throughput, latency, sensing, security, powering — and the translation
layer maps it down to service-level targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import TranslationError


@dataclass(frozen=True)
class ApplicationDemand:
    """What one application needs from the radio environment.

    Attributes:
        app_name: application label ("vr_gaming", …).
        client_id: the device running the application.
        room_id: room the user occupies (for coverage/sensing scope).
        throughput_mbps: sustained goodput the app needs.
        latency_ms: latency bound (drives priority, not PHY targets).
        needs_sensing: motion tracking / presence required.
        needs_security: physical-layer protection required.
        charging_w: wireless charging draw, 0 for none.
        priority: user-assigned importance (higher = more).
    """

    app_name: str
    client_id: str
    room_id: str
    throughput_mbps: float = 0.0
    latency_ms: Optional[float] = None
    needs_sensing: bool = False
    needs_security: bool = False
    charging_w: float = 0.0
    priority: int = 5

    def __post_init__(self) -> None:
        if self.throughput_mbps < 0:
            raise TranslationError("throughput must be non-negative")
        if self.latency_ms is not None and self.latency_ms <= 0:
            raise TranslationError("latency bound must be positive")
        if self.charging_w < 0:
            raise TranslationError("charging draw must be non-negative")
        if self.priority < 0:
            raise TranslationError("priority must be non-negative")
        if (
            self.throughput_mbps == 0
            and not self.needs_sensing
            and not self.needs_security
            and self.charging_w == 0
        ):
            raise TranslationError(
                f"{self.app_name}: demand requests nothing from the network"
            )

    @property
    def latency_sensitive(self) -> bool:
        """Sub-20 ms bounds mark hard-interactive applications."""
        return self.latency_ms is not None and self.latency_ms <= 20.0
