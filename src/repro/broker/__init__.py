"""Service broker layer: demands, profiles, translation, daemon."""

from .broker import ServedApplication, ServiceBroker
from .calls import (
    SERVICE_SIGNATURES,
    RequestStatus,
    ServiceCall,
    ServiceRequest,
    ServiceResponse,
)
from .demands import ApplicationDemand
from .frontend import ServiceFrontend
from .handle import HandleStatus, ServiceHandle
from .profiles import PROFILES, demand_for
from .translation import (
    BASE_MARGIN_DB,
    LATENCY_MARGIN_DB,
    SHANNON_EFFICIENCY,
    required_snr_db,
    translate_demand,
)

__all__ = [
    "ApplicationDemand",
    "BASE_MARGIN_DB",
    "HandleStatus",
    "LATENCY_MARGIN_DB",
    "PROFILES",
    "RequestStatus",
    "SERVICE_SIGNATURES",
    "SHANNON_EFFICIENCY",
    "ServedApplication",
    "ServiceBroker",
    "ServiceCall",
    "ServiceFrontend",
    "ServiceHandle",
    "ServiceRequest",
    "ServiceResponse",
    "demand_for",
    "required_snr_db",
    "translate_demand",
]
