"""Service broker layer: demands, profiles, translation, daemon."""

from .broker import ServedApplication, ServiceBroker
from .calls import SERVICE_SIGNATURES, ServiceCall
from .demands import ApplicationDemand
from .profiles import PROFILES, demand_for
from .translation import (
    BASE_MARGIN_DB,
    LATENCY_MARGIN_DB,
    SHANNON_EFFICIENCY,
    required_snr_db,
    translate_demand,
)

__all__ = [
    "ApplicationDemand",
    "BASE_MARGIN_DB",
    "LATENCY_MARGIN_DB",
    "PROFILES",
    "SERVICE_SIGNATURES",
    "SHANNON_EFFICIENCY",
    "ServedApplication",
    "ServiceBroker",
    "ServiceCall",
    "demand_for",
    "required_snr_db",
    "translate_demand",
]
