"""Service handles: the caller's grip on a served application.

:meth:`~repro.broker.broker.ServiceBroker.register_application` used to
return the broker's *internal* :class:`ServedApplication` record, so
callers poked at raw task lists and re-entered the broker by name to
stop or inspect anything.  A :class:`ServiceHandle` is the redesigned
surface: a stable object with a derived :class:`HandleStatus`, the
created task ids, ``satisfaction()``, ``stop()``, and a sim-clock
``wait()`` that pumps the request pipeline until the application is
actually being served.

The transitional duck-type shim that exposed the internal record's
``demand``/``calls``/``tasks``/``active``/``stopped`` attributes has
been retired: use the handle API (``status``, ``task_ids``,
``satisfaction()``, ``stop()``).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core.errors import ServiceError
from ..orchestrator.tasks import TaskState
from .calls import ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .broker import ServedApplication, ServiceBroker


class HandleStatus(enum.Enum):
    """Lifecycle of one brokered application, derived from its tasks."""

    QUEUED = "queued"          #: waiting in the pipeline queue
    ADMITTED = "admitted"      #: tasks hold slices, not yet optimized
    RUNNING = "running"        #: at least one task is actively served
    COMPLETED = "completed"    #: every task finished cleanly
    STOPPED = "stopped"        #: explicitly stopped by the caller
    FAILED = "failed"          #: admission or optimization failed
    REJECTED = "rejected"      #: never accepted (queue full, duplicate)


#: States in which :meth:`ServiceHandle.wait` stops pumping the clock.
_SETTLED = (
    HandleStatus.RUNNING,
    HandleStatus.COMPLETED,
    HandleStatus.STOPPED,
    HandleStatus.FAILED,
    HandleStatus.REJECTED,
)


class ServiceHandle:
    """The caller-facing handle for one registered application."""

    def __init__(self, broker: "ServiceBroker", request: ServiceRequest):
        self._broker = broker
        self.request = request
        self._served: Optional["ServedApplication"] = None
        self._pipeline = None
        self._rejected_reason = ""
        self._failure_reason = ""
        self._cancelled = False
        #: Sim-clock timestamps the pipeline fills in as the request
        #: progresses (submit → admit → first configurations live).
        self.submitted_at: float = request.submitted_at
        self.admitted_at: Optional[float] = None
        self.served_at: Optional[float] = None
        #: Fleet-level routing record (a ``RoutingDecision``) when this
        #: handle was placed by a :class:`~repro.fleet.FleetBroker`.
        self.routing = None

    # -- wiring (broker/pipeline internal) ------------------------------

    def _attach(self, served: "ServedApplication") -> None:
        self._served = served

    def _bind_pipeline(self, pipeline) -> None:
        self._pipeline = pipeline

    def _mark_rejected(self, reason: str) -> None:
        self._rejected_reason = reason

    def _mark_failed(self, reason: str) -> None:
        self._failure_reason = reason

    # -- the new API -----------------------------------------------------

    @property
    def key(self) -> str:
        """The broker registry key (``app@client``)."""
        return self.request.key

    @property
    def status(self) -> HandleStatus:
        """Current lifecycle state, derived from the underlying tasks."""
        if self._rejected_reason:
            return HandleStatus.REJECTED
        if self._cancelled:
            return HandleStatus.STOPPED
        served = self._served
        if served is None:
            return HandleStatus.QUEUED
        if served.stopped:
            return HandleStatus.STOPPED
        if self._failure_reason:
            return HandleStatus.FAILED
        states = [t.state for t in served.tasks]
        if any(s is TaskState.PENDING for s in states):
            return HandleStatus.QUEUED
        if any(s in (TaskState.RUNNING, TaskState.IDLE) for s in states):
            return HandleStatus.RUNNING
        if states and all(
            s in (TaskState.COMPLETED, TaskState.FAILED) for s in states
        ):
            if any(s is TaskState.FAILED for s in states):
                return HandleStatus.FAILED
            return HandleStatus.COMPLETED
        return HandleStatus.ADMITTED

    @property
    def reason(self) -> str:
        """Why the request was rejected or failed (empty otherwise)."""
        return self._rejected_reason or self._failure_reason

    @property
    def task_ids(self) -> List[str]:
        """Ids of every task created for this application."""
        if self._served is None:
            return []
        return [t.task_id for t in self._served.tasks]

    @property
    def task_id(self) -> str:
        """The primary (first-created) task id, or ``""`` if queued."""
        ids = self.task_ids
        return ids[0] if ids else ""

    def satisfaction(self) -> Dict[str, object]:
        """Per-requirement verdicts against the demand (broker report)."""
        if self._served is None:
            raise ServiceError(
                f"{self.key}: not admitted yet (status {self.status.value})"
            )
        return self._broker.satisfaction(self._served)

    def stop(self):
        """Stop the application; returns the broker's ServiceResponse."""
        from .calls import RequestStatus, ServiceResponse

        if self._served is None:
            # Still queued: cancel in place, nothing to tear down.
            self._cancelled = True
            return ServiceResponse(
                status=RequestStatus.STOPPED,
                request=self.request,
                key=self.key,
            )
        return self._broker.stop_application(
            self.request.demand.app_name, self.request.demand.client_id
        )

    def wait(
        self, timeout_s: float = 60.0, dt: float = 0.5
    ) -> HandleStatus:
        """Pump the request pipeline's sim clock until served or timed out.

        Advances the attached pipeline (submit → batch admission →
        coalesced reoptimization) in ``dt`` steps of simulated time
        until the handle settles (running, completed, stopped, failed,
        or rejected) or ``timeout_s`` of simulated time elapses.
        Without a pipeline the handle cannot make progress on its own,
        so the current status is returned immediately.
        """
        if self._pipeline is None:
            return self.status
        deadline = self._pipeline.clock.now + timeout_s
        while self.status not in _SETTLED:
            if self._pipeline.clock.now >= deadline:
                break
            self._pipeline.clock.advance(dt)
            self._pipeline.tick()
        return self.status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceHandle({self.key}, {self.status.value}, "
            f"tasks={self.task_ids})"
        )
