"""The service broker daemon (§3.3).

"For existing applications not aware of surfaces, we introduce a
service broker, as a base application (a daemon), that invokes services
based on their demands."  The broker registers applications, translates
their demands into service calls, submits them to the orchestrator, and
tracks whether achieved metrics satisfy the demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ServiceError, TranslationError
from ..llm.intent import dispatch_calls
from ..orchestrator.tasks import ServiceTask, TaskState
from ..telemetry import Telemetry
from .calls import ServiceCall
from .demands import ApplicationDemand
from .profiles import demand_for
from .translation import required_snr_db, translate_demand


@dataclass
class ServedApplication:
    """Broker-side record of one registered application."""

    demand: ApplicationDemand
    calls: List[ServiceCall]
    tasks: List[ServiceTask]
    stopped: bool = False

    @property
    def active(self) -> bool:
        """Whether the application still holds running tasks.

        An explicitly stopped application is inactive regardless of
        its tasks' states, so its registry key can be reused.
        """
        if self.stopped:
            return False
        return any(not t.is_terminal for t in self.tasks)


class ServiceBroker:
    """Serves surface-unaware applications over the orchestrator."""

    def __init__(self, orchestrator):
        self.orchestrator = orchestrator
        self.telemetry = (
            getattr(orchestrator, "telemetry", None) or Telemetry()
        )
        self._apps: Dict[str, ServedApplication] = {}

    # ------------------------------------------------------------------

    def register_application(
        self, demand: ApplicationDemand
    ) -> ServedApplication:
        """Translate a demand and submit its service tasks.

        A fully-inactive record under the same ``app@client`` key is
        replaced; registering over a still-active one raises.
        """
        key = f"{demand.app_name}@{demand.client_id}"
        if key in self._apps and self._apps[key].active:
            raise ServiceError(f"application {key!r} already served")
        calls = translate_demand(demand, self.orchestrator.budget)
        tasks = dispatch_calls(calls, self.orchestrator)
        served = ServedApplication(demand=demand, calls=calls, tasks=tasks)
        self._apps[key] = served
        self.telemetry.counter("broker.registrations")
        return served

    def register_profile(
        self, app_name: str, client_id: str, room_id: str, **overrides
    ) -> ServedApplication:
        """Register an application by archetype name."""
        return self.register_application(
            demand_for(app_name, client_id, room_id, **overrides)
        )

    def stop_application(self, app_name: str, client_id: str) -> None:
        """Complete every task an application holds.

        The served record is marked inactive even when some (or all)
        of its tasks already reached a terminal state, so the key is
        always free for re-registration afterwards.
        """
        key = f"{app_name}@{client_id}"
        served = self._apps.get(key)
        if served is None:
            raise ServiceError(f"unknown application {key!r}")
        for task in served.tasks:
            if not task.is_terminal:
                self.orchestrator.complete_task(task.task_id)
        served.stopped = True
        self.telemetry.counter("broker.stops")

    def applications(self) -> List[ServedApplication]:
        """All registered applications."""
        return list(self._apps.values())

    # ------------------------------------------------------------------

    def satisfaction(self, served: ServedApplication) -> Dict[str, object]:
        """Compare achieved metrics against the application's demand.

        Returns a report with the per-requirement verdicts the broker
        uses to decide re-optimization or escalation.
        """
        self.telemetry.counter("broker.satisfaction_checks")
        report: Dict[str, object] = {
            "app": served.demand.app_name,
            "client": served.demand.client_id,
        }
        if served.demand.throughput_mbps > 0:
            target = required_snr_db(served.demand, self.orchestrator.budget)
            link_tasks = [
                t
                for t in served.tasks
                if "median_snr_db" in t.metrics
                and t.goal.get("client") == served.demand.client_id
            ]
            achieved = max(
                (t.metrics["median_snr_db"] for t in link_tasks),
                default=float("-inf"),
            )
            report["target_snr_db"] = round(target, 1)
            report["achieved_snr_db"] = round(achieved, 1)
            report["link_satisfied"] = achieved >= target
        if served.demand.needs_sensing:
            sensing_tasks = [
                t for t in served.tasks if t.service.value == "sensing"
            ]
            report["sensing_active"] = any(
                t.state is TaskState.RUNNING for t in sensing_tasks
            )
        if served.demand.needs_security:
            margins = [
                t.metrics.get("secrecy_margin_db")
                for t in served.tasks
                if t.service.value == "security"
            ]
            margins = [m for m in margins if m is not None]
            report["secrecy_margin_db"] = (
                round(max(margins), 1) if margins else None
            )
            report["security_satisfied"] = bool(margins) and max(margins) > 0
        return report

    def unsatisfied(self) -> List[ServedApplication]:
        """Applications whose link requirement is currently missed."""
        with self.telemetry.span("broker-satisfaction"):
            missed = []
            for served in self._apps.values():
                if not served.active:
                    continue
                report = self.satisfaction(served)
                if report.get("link_satisfied") is False:
                    missed.append(served)
        if missed:
            self.telemetry.counter("broker.unsatisfied", len(missed))
        return missed
