"""The service broker daemon (§3.3).

"For existing applications not aware of surfaces, we introduce a
service broker, as a base application (a daemon), that invokes services
based on their demands."  The broker registers applications, translates
their demands into service calls, submits them to the orchestrator, and
tracks whether achieved metrics satisfy the demands.

Every demand enters as a :class:`~repro.broker.calls.ServiceRequest`
and every verb answers with a
:class:`~repro.broker.calls.ServiceResponse`;
:meth:`ServiceBroker.register_application` hands back a
:class:`~repro.broker.handle.ServiceHandle` rather than the broker's
internal record; the transitional duck-type shim that let the handle
pose as the internal :class:`ServedApplication` has been retired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..core.errors import ServiceError, TranslationError
from ..llm.intent import dispatch_calls
from ..orchestrator.tasks import ServiceTask, TaskState
from ..telemetry import Telemetry
from .calls import (
    RequestStatus,
    ServiceCall,
    ServiceRequest,
    ServiceResponse,
)
from .demands import ApplicationDemand
from .handle import ServiceHandle
from .profiles import demand_for
from .translation import required_snr_db, translate_demand


@dataclass
class ServedApplication:
    """Broker-side record of one registered application."""

    demand: ApplicationDemand
    calls: List[ServiceCall]
    tasks: List[ServiceTask]
    stopped: bool = False

    @property
    def active(self) -> bool:
        """Whether the application still holds running tasks.

        An explicitly stopped application is inactive regardless of
        its tasks' states, so its registry key can be reused.
        """
        if self.stopped:
            return False
        return any(not t.is_terminal for t in self.tasks)


class ServiceBroker:
    """Serves surface-unaware applications over the orchestrator."""

    def __init__(self, orchestrator):
        self.orchestrator = orchestrator
        self.telemetry = (
            getattr(orchestrator, "telemetry", None) or Telemetry()
        )
        self._apps: Dict[str, ServedApplication] = {}
        self._handles: Dict[str, ServiceHandle] = {}

    # ------------------------------------------------------------------

    def serve(
        self,
        request: ServiceRequest,
        handle: Optional[ServiceHandle] = None,
    ) -> ServiceResponse:
        """Serve one typed request: translate, dispatch, record.

        The typed entry point behind both
        :meth:`register_application` and the request pipeline's
        admission batcher.  Never raises for predictable rejections
        (duplicate key, untranslatable demand) — those come back as a
        ``REJECTED`` :class:`ServiceResponse` so a queue drain can keep
        going; scheduler admission errors still propagate unless the
        orchestrator is in deferred (batch) admission mode.
        """
        key = request.key
        if handle is None:
            handle = ServiceHandle(self, request)
        if key in self._apps and self._apps[key].active:
            reason = f"application {key!r} already served"
            handle._mark_rejected(reason)
            self.telemetry.counter("broker.rejections")
            return ServiceResponse(
                status=RequestStatus.REJECTED,
                request=request,
                reason=reason,
                handle=handle,
                key=key,
            )
        try:
            calls = translate_demand(request.demand, self.orchestrator.budget)
        except TranslationError as exc:
            handle._mark_rejected(str(exc))
            self.telemetry.counter("broker.rejections")
            return ServiceResponse(
                status=RequestStatus.REJECTED,
                request=request,
                reason=str(exc),
                handle=handle,
                key=key,
            )
        tasks = dispatch_calls(calls, self.orchestrator)
        served = ServedApplication(
            demand=request.demand, calls=calls, tasks=tasks
        )
        self._apps[key] = served
        handle._attach(served)
        self._handles[key] = handle
        self.telemetry.counter("broker.registrations")
        return ServiceResponse(
            status=RequestStatus.ADMITTED,
            request=request,
            handle=handle,
            key=key,
        )

    def register_application(
        self, demand: ApplicationDemand
    ) -> ServiceHandle:
        """Translate a demand, submit its service tasks, return a handle.

        A fully-inactive record under the same ``app@client`` key is
        replaced; registering over a still-active one raises.  The
        returned :class:`ServiceHandle` carries status, task ids,
        ``satisfaction()`` and ``stop()``.
        """
        request = ServiceRequest(
            demand=demand,
            submitted_at=getattr(self.orchestrator, "clock_now", 0.0),
        )
        response = self.serve(request)
        if response.status is RequestStatus.REJECTED:
            raise ServiceError(response.reason)
        return response.handle

    def register_profile(
        self, app_name: str, client_id: str, room_id: str, **overrides
    ) -> ServiceHandle:
        """Register an application by archetype name."""
        return self.register_application(
            demand_for(app_name, client_id, room_id, **overrides)
        )

    def stop_application(
        self, app_name: str, client_id: str
    ) -> ServiceResponse:
        """Complete every task an application holds.

        The served record is marked inactive even when some (or all)
        of its tasks already reached a terminal state, so the key is
        always free for re-registration afterwards.  Returns a
        ``STOPPED`` :class:`ServiceResponse`.
        """
        key = f"{app_name}@{client_id}"
        served = self._apps.get(key)
        if served is None:
            raise ServiceError(f"unknown application {key!r}")
        for task in served.tasks:
            if not task.is_terminal:
                self.orchestrator.complete_task(task.task_id)
        served.stopped = True
        self.telemetry.counter("broker.stops")
        return ServiceResponse(
            status=RequestStatus.STOPPED,
            key=key,
            completed_at=getattr(self.orchestrator, "clock_now", None),
            handle=self._handles.get(key),
        )

    def applications(self) -> List[ServiceHandle]:
        """Handles of all registered applications."""
        return list(self._handles.values())

    def handle_for(self, app_name: str, client_id: str) -> ServiceHandle:
        """Look up the handle registered under ``app@client``."""
        key = f"{app_name}@{client_id}"
        try:
            return self._handles[key]
        except KeyError:
            raise ServiceError(f"unknown application {key!r}") from None

    # ------------------------------------------------------------------

    def satisfaction(
        self, served: Union[ServedApplication, ServiceHandle]
    ) -> Dict[str, object]:
        """Compare achieved metrics against the application's demand.

        Accepts either a :class:`ServiceHandle` or the internal
        :class:`ServedApplication` record.  Returns a report with the
        per-requirement verdicts the broker uses to decide
        re-optimization or escalation.
        """
        if isinstance(served, ServiceHandle):
            if served._served is None:
                raise ServiceError(f"{served.key}: not admitted yet")
            served = served._served
        self.telemetry.counter("broker.satisfaction_checks")
        report: Dict[str, object] = {
            "app": served.demand.app_name,
            "client": served.demand.client_id,
        }
        if served.demand.throughput_mbps > 0:
            target = required_snr_db(served.demand, self.orchestrator.budget)
            link_tasks = [
                t
                for t in served.tasks
                if "median_snr_db" in t.metrics
                and t.goal.get("client") == served.demand.client_id
            ]
            achieved = max(
                (t.metrics["median_snr_db"] for t in link_tasks),
                default=float("-inf"),
            )
            report["target_snr_db"] = round(target, 1)
            report["achieved_snr_db"] = round(achieved, 1)
            report["link_satisfied"] = achieved >= target
        if served.demand.needs_sensing:
            sensing_tasks = [
                t for t in served.tasks if t.service.value == "sensing"
            ]
            report["sensing_active"] = any(
                t.state is TaskState.RUNNING for t in sensing_tasks
            )
        if served.demand.needs_security:
            margins = [
                t.metrics.get("secrecy_margin_db")
                for t in served.tasks
                if t.service.value == "security"
            ]
            margins = [m for m in margins if m is not None]
            report["secrecy_margin_db"] = (
                round(max(margins), 1) if margins else None
            )
            report["security_satisfied"] = bool(margins) and max(margins) > 0
        return report

    def unsatisfied(self) -> List[ServiceHandle]:
        """Applications whose link requirement is currently missed."""
        with self.telemetry.span("broker-satisfaction"):
            missed = []
            for key, served in self._apps.items():
                if not served.active:
                    continue
                report = self.satisfaction(served)
                if report.get("link_satisfied") is False:
                    missed.append(self._handles[key])
        if missed:
            self.telemetry.counter("broker.unsatisfied", len(missed))
        return missed
