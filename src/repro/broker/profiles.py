"""Application demand profiles (§2.1's motivating examples).

"VR/AR gaming needs high throughput and low latency, smart home
applications need sensing capability, while sensitive data transmission
necessitates added security protection."  These archetypes let the
broker construct demands for named applications.
"""

from __future__ import annotations

from typing import Dict

from ..core.errors import TranslationError
from .demands import ApplicationDemand


def _profile(**kwargs) -> Dict:
    return kwargs


#: Archetype parameters by application name.
PROFILES: Dict[str, Dict] = {
    "vr_gaming": _profile(
        throughput_mbps=400.0,
        latency_ms=10.0,
        needs_sensing=True,
        priority=8,
    ),
    "video_streaming": _profile(
        throughput_mbps=50.0, latency_ms=200.0, priority=5
    ),
    "online_meeting": _profile(
        throughput_mbps=10.0, latency_ms=80.0, priority=6
    ),
    "file_transfer": _profile(throughput_mbps=200.0, priority=3),
    "smart_home": _profile(
        throughput_mbps=1.0, needs_sensing=True, priority=4
    ),
    "secure_banking": _profile(
        throughput_mbps=5.0, needs_security=True, priority=9
    ),
    "wireless_charging": _profile(charging_w=0.005, priority=2),
    "iot_telemetry": _profile(throughput_mbps=0.5, priority=2),
}


def demand_for(
    app_name: str, client_id: str, room_id: str, **overrides
) -> ApplicationDemand:
    """Build a demand from a named profile, with per-field overrides."""
    try:
        params = dict(PROFILES[app_name])
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise TranslationError(
            f"unknown application profile {app_name!r}; known: {known}"
        ) from None
    params.update(overrides)
    return ApplicationDemand(
        app_name=app_name, client_id=client_id, room_id=room_id, **params
    )
