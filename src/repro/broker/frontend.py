"""The shared service front-end protocol.

Three layers hand out :class:`~repro.broker.handle.ServiceHandle`
objects for registered applications: the single-environment
:class:`~repro.broker.broker.ServiceBroker`, the tenant-scoped broker a
:class:`~repro.orchestrator.virtualization.Hypervisor` provisions over
a :class:`~repro.orchestrator.virtualization.TenantOrchestrator`, and
the fleet-level :class:`~repro.fleet.broker.FleetBroker` that routes
across environment shards.  :class:`ServiceFrontend` pins down the
register/stop/handle semantics they all share so callers (and tests)
can treat the three interchangeably.

The protocol is ``runtime_checkable``: ``isinstance(x, ServiceFrontend)``
verifies the method surface is present (signatures are enforced by the
shared contract tests in ``tests/fleet/test_frontend.py``).
"""

from __future__ import annotations

from typing import List, Protocol, runtime_checkable

from .calls import ServiceResponse
from .demands import ApplicationDemand
from .handle import ServiceHandle


@runtime_checkable
class ServiceFrontend(Protocol):
    """Register/stop/handle semantics every service front-end offers.

    Semantics the implementations agree on:

    * ``register_application`` admits a demand and returns a live
      :class:`ServiceHandle`; predictable rejections (duplicate key,
      untranslatable demand, saturation) raise
      :class:`~repro.core.errors.ServiceError`.
    * ``stop_application`` tears down the named application and returns
      a ``STOPPED`` :class:`ServiceResponse`; unknown keys raise.
    * ``handle_for`` looks up the handle registered under
      ``app@client``; unknown keys raise.
    * ``applications`` lists every handle the front-end has issued.
    """

    def register_application(
        self, demand: ApplicationDemand
    ) -> ServiceHandle:
        """Admit one application demand, returning its handle."""
        ...

    def stop_application(
        self, app_name: str, client_id: str
    ) -> ServiceResponse:
        """Stop the application registered under ``app@client``."""
        ...

    def handle_for(self, app_name: str, client_id: str) -> ServiceHandle:
        """Look up the handle registered under ``app@client``."""
        ...

    def applications(self) -> List[ServiceHandle]:
        """Handles of all registered applications."""
        ...
