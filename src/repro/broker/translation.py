"""Demand translation: application targets → service-level targets.

The non-trivial mapping the paper calls out ("translating guaranteed VR
experience to SNR improvement involves multiple non-linear mappings
across network stack layers"): throughput goes through the Shannon
inverse over the link bandwidth plus margins, latency tightens the
margin and raises priority, and the boolean needs become sensing /
security / powering calls.
"""

from __future__ import annotations

from typing import List

from ..core.errors import TranslationError
from ..em.noise import LinkBudget, shannon_required_snr_db
from .calls import ServiceCall
from .demands import ApplicationDemand

#: Base link margin over the Shannon bound (implementation losses).
BASE_MARGIN_DB = 3.0

#: Extra margin for hard-interactive apps: no retransmission headroom.
LATENCY_MARGIN_DB = 3.0

#: Utilization derate: real MCS tables reach ~75% of Shannon.
SHANNON_EFFICIENCY = 0.75


def required_snr_db(demand: ApplicationDemand, budget: LinkBudget) -> float:
    """Target link SNR for a demand's throughput over a budget."""
    if demand.throughput_mbps <= 0:
        raise TranslationError("demand has no throughput requirement")
    effective_rate = demand.throughput_mbps * 1e6 / SHANNON_EFFICIENCY
    snr = shannon_required_snr_db(effective_rate, budget.bandwidth_hz)
    snr += BASE_MARGIN_DB
    if demand.latency_sensitive:
        snr += LATENCY_MARGIN_DB
    return snr


def translate_demand(
    demand: ApplicationDemand, budget: LinkBudget
) -> List[ServiceCall]:
    """An application demand as a list of validated service calls."""
    calls: List[ServiceCall] = []
    if demand.throughput_mbps > 0:
        arguments = {
            "client_id": demand.client_id,
            "snr": round(required_snr_db(demand, budget), 1),
            "priority": demand.priority,
        }
        if demand.latency_ms is not None:
            arguments["latency"] = float(demand.latency_ms)
        calls.append(ServiceCall("enhance_link", arguments))
    if demand.needs_sensing:
        calls.append(
            ServiceCall(
                "enable_sensing",
                {
                    "room_id": demand.room_id,
                    "mode": "tracking",
                    "duration": 3600.0,
                    "priority": demand.priority,
                },
            )
        )
    if demand.needs_security:
        calls.append(
            ServiceCall(
                "protect_link",
                {
                    "client_id": demand.client_id,
                    "priority": max(demand.priority, 7),
                },
            )
        )
    if demand.charging_w > 0:
        calls.append(
            ServiceCall(
                "init_powering",
                {
                    "client_id": demand.client_id,
                    "duration": 3600.0,
                    "priority": demand.priority,
                },
            )
        )
    if not calls:
        raise TranslationError(
            f"{demand.app_name}: demand translated to no service calls"
        )
    return calls
