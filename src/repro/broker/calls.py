"""Service calls and request envelopes: the broker's typed wire forms.

Both the service broker (translating application demands) and the LLM
layer (translating natural language) produce :class:`ServiceCall`
objects; the dispatcher turns them into orchestrator API invocations.
Keeping an explicit, validated intermediate form is what makes
LLM-generated calls safe to execute.

Around the calls sit the request-pipeline envelopes: every demand that
enters the broker — whether directly through
:meth:`~repro.broker.broker.ServiceBroker.register_application` or
queued through :class:`~repro.pipeline.RequestPipeline` — travels as a
:class:`ServiceRequest`, and every broker verb answers with a
:class:`ServiceResponse` carrying a typed status and (on success) the
:class:`~repro.broker.handle.ServiceHandle` for the served
application.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.errors import TranslationError
from .demands import ApplicationDemand

#: Function name → (required kwargs, optional kwargs with types).
SERVICE_SIGNATURES: Dict[str, Tuple[Dict[str, type], Dict[str, type]]] = {
    "enhance_link": (
        {"client_id": str},
        {"snr": float, "latency": float, "priority": int},
    ),
    "optimize_coverage": (
        {"room_id": str},
        {"median_snr": float, "priority": int},
    ),
    "enable_sensing": (
        {"room_id": str},
        # ``type`` is the paper's Fig. 6 spelling, kept for LLM output
        # compatibility; ``mode`` is the orchestrator API's name.
        {"mode": str, "type": str, "duration": float, "priority": int},
    ),
    "init_powering": (
        {"client_id": str},
        {"duration": float, "priority": int},
    ),
    "protect_link": (
        {"client_id": str},
        {"eavesdropper_position": tuple, "nulling_weight": float, "priority": int},
    ),
}


@dataclass(frozen=True)
class ServiceCall:
    """One validated SurfOS service invocation.

    Attributes:
        function: a key of :data:`SERVICE_SIGNATURES`.
        arguments: keyword arguments, type-checked on construction.
    """

    function: str
    arguments: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.function not in SERVICE_SIGNATURES:
            known = ", ".join(sorted(SERVICE_SIGNATURES))
            raise TranslationError(
                f"unknown service function {self.function!r}; known: {known}"
            )
        required, optional = SERVICE_SIGNATURES[self.function]
        allowed = {**required, **optional}
        for key, value in self.arguments.items():
            if key not in allowed:
                raise TranslationError(
                    f"{self.function}: unexpected argument {key!r}"
                )
            expected = allowed[key]
            if expected is float and isinstance(value, int):
                continue  # ints are acceptable where floats are expected
            if expected is tuple and isinstance(value, (tuple, list)):
                continue
            if not isinstance(value, expected):
                raise TranslationError(
                    f"{self.function}: argument {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
        missing = set(required) - set(self.arguments)
        if missing:
            raise TranslationError(
                f"{self.function}: missing required arguments {sorted(missing)}"
            )

    def render(self) -> str:
        """The call as Python source (the paper's Fig. 6 presentation).

        Required arguments render positionally, options as keywords:
        ``enhance_link('VR_headset', snr=30.0, latency=10.0)``.
        """
        required, _ = SERVICE_SIGNATURES[self.function]
        positional = [
            repr(self.arguments[k]) for k in required if k in self.arguments
        ]
        keyword = [
            f"{k}={v!r}"
            for k, v in self.arguments.items()
            if k not in required
        ]
        return f"{self.function}({', '.join(positional + keyword)})"


# ----------------------------------------------------------------------
# request / response envelopes (the broker's typed entry points)
# ----------------------------------------------------------------------

_request_counter = itertools.count(1)


def reset_request_counter() -> None:
    """Restart request-id numbering (determinism tests only)."""
    global _request_counter
    _request_counter = itertools.count(1)


class RequestStatus(enum.Enum):
    """Outcome class of one broker request."""

    QUEUED = "queued"        #: accepted into the pipeline queue
    ADMITTED = "admitted"    #: tasks created and admitted into slices
    REJECTED = "rejected"    #: refused (queue full, duplicate, invalid)
    STOPPED = "stopped"      #: a stop/cancel verb completed
    FAILED = "failed"        #: admission or optimization failed


@dataclass(frozen=True)
class ServiceRequest:
    """One application demand on its way into the broker.

    Attributes:
        demand: the application-level demand to serve.
        submitted_at: simulated time the request entered the system.
        priority: admission priority; defaults to the demand's own.
        request_id: unique id, auto-assigned.
    """

    demand: ApplicationDemand
    submitted_at: float = 0.0
    priority: Optional[int] = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.request_id:
            object.__setattr__(
                self, "request_id", f"req-{next(_request_counter)}"
            )

    @property
    def key(self) -> str:
        """The broker registry key (``app@client``)."""
        return f"{self.demand.app_name}@{self.demand.client_id}"

    @property
    def effective_priority(self) -> int:
        """The priority used for queueing and admission."""
        return (
            self.priority if self.priority is not None else self.demand.priority
        )


@dataclass
class ServiceResponse:
    """Typed answer to one broker verb.

    Attributes:
        request: the request this response answers (``None`` for verbs
            like ``stop_application`` that target an existing key).
        status: outcome class (:class:`RequestStatus`).
        reason: human-readable rejection/failure reason.
        handle: the live :class:`~repro.broker.handle.ServiceHandle`
            when the request was accepted or admitted.
        completed_at: simulated time the verb finished.
        key: the ``app@client`` registry key the verb acted on.
        routing: the fleet placement record (a
            :class:`~repro.fleet.placement.RoutingDecision`) when the
            request travelled through a
            :class:`~repro.fleet.broker.FleetBroker`; ``None`` for
            single-broker requests.
    """

    status: RequestStatus
    request: Optional[ServiceRequest] = None
    reason: str = ""
    handle: Optional[object] = None
    completed_at: Optional[float] = None
    key: str = ""
    routing: Optional[object] = None

    @property
    def ok(self) -> bool:
        """Whether the verb succeeded (queued counts as success)."""
        return self.status in (
            RequestStatus.QUEUED,
            RequestStatus.ADMITTED,
            RequestStatus.STOPPED,
        )

    def __bool__(self) -> bool:
        return self.ok
