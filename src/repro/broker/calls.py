"""Service calls: the validated form of a SurfOS API invocation.

Both the service broker (translating application demands) and the LLM
layer (translating natural language) produce :class:`ServiceCall`
objects; the dispatcher turns them into orchestrator API invocations.
Keeping an explicit, validated intermediate form is what makes
LLM-generated calls safe to execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from ..core.errors import TranslationError

#: Function name → (required kwargs, optional kwargs with types).
SERVICE_SIGNATURES: Dict[str, Tuple[Dict[str, type], Dict[str, type]]] = {
    "enhance_link": (
        {"client_id": str},
        {"snr": float, "latency": float, "priority": int},
    ),
    "optimize_coverage": (
        {"room_id": str},
        {"median_snr": float, "priority": int},
    ),
    "enable_sensing": (
        {"room_id": str},
        # ``type`` is the paper's Fig. 6 spelling, kept for LLM output
        # compatibility; ``mode`` is the orchestrator API's name.
        {"mode": str, "type": str, "duration": float, "priority": int},
    ),
    "init_powering": (
        {"client_id": str},
        {"duration": float, "priority": int},
    ),
    "protect_link": (
        {"client_id": str},
        {"eavesdropper_position": tuple, "nulling_weight": float, "priority": int},
    ),
}


@dataclass(frozen=True)
class ServiceCall:
    """One validated SurfOS service invocation.

    Attributes:
        function: a key of :data:`SERVICE_SIGNATURES`.
        arguments: keyword arguments, type-checked on construction.
    """

    function: str
    arguments: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.function not in SERVICE_SIGNATURES:
            known = ", ".join(sorted(SERVICE_SIGNATURES))
            raise TranslationError(
                f"unknown service function {self.function!r}; known: {known}"
            )
        required, optional = SERVICE_SIGNATURES[self.function]
        allowed = {**required, **optional}
        for key, value in self.arguments.items():
            if key not in allowed:
                raise TranslationError(
                    f"{self.function}: unexpected argument {key!r}"
                )
            expected = allowed[key]
            if expected is float and isinstance(value, int):
                continue  # ints are acceptable where floats are expected
            if expected is tuple and isinstance(value, (tuple, list)):
                continue
            if not isinstance(value, expected):
                raise TranslationError(
                    f"{self.function}: argument {key!r} should be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
        missing = set(required) - set(self.arguments)
        if missing:
            raise TranslationError(
                f"{self.function}: missing required arguments {sorted(missing)}"
            )

    def render(self) -> str:
        """The call as Python source (the paper's Fig. 6 presentation).

        Required arguments render positionally, options as keywords:
        ``enhance_link('VR_headset', snr=30.0, latency=10.0)``.
        """
        required, _ = SERVICE_SIGNATURES[self.function]
        positional = [
            repr(self.arguments[k]) for k in required if k in self.arguments
        ]
        keyword = [
            f"{k}={v!r}"
            for k, v in self.arguments.items()
            if k not in required
        ]
        return f"{self.function}({', '.join(positional + keyword)})"
