"""Unit conversions and physical constants used across SurfOS.

Radio engineering mixes logarithmic (dB, dBm) and linear (mW, W)
quantities freely; every conversion in the codebase goes through this
module so that the sign conventions live in exactly one place.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

#: Reference noise temperature (K) used for thermal-noise floors.
ROOM_TEMPERATURE_K = 290.0

_MIN_LINEAR = 1e-30


def db_to_linear(db: float) -> float:
    """Convert a power ratio from decibels to linear scale."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Ratios at or below zero are clamped to a -300 dB floor rather than
    raising, because they routinely appear as "no signal" placeholders
    in coverage maps.
    """
    return 10.0 * math.log10(max(ratio, _MIN_LINEAR))


def dbm_to_watts(dbm: float) -> float:
    """Convert power from dBm to watts."""
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert power from watts to dBm (clamped at -270 dBm)."""
    return 10.0 * math.log10(max(watts, _MIN_LINEAR) * 1000.0)


def dbm_to_milliwatts(dbm: float) -> float:
    """Convert power from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def milliwatts_to_dbm(milliwatts: float) -> float:
    """Convert power from milliwatts to dBm (clamped at -270 dBm)."""
    return 10.0 * math.log10(max(milliwatts, _MIN_LINEAR))


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength (m) for a carrier frequency (Hz)."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def ghz(value: float) -> float:
    """Express a frequency given in GHz as Hz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Express a frequency given in MHz as Hz."""
    return value * 1e6


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor in dBm for a bandwidth, plus receiver noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    noise_watts = BOLTZMANN * ROOM_TEMPERATURE_K * bandwidth_hz
    return watts_to_dbm(noise_watts) + noise_figure_db
