"""The unified hardware-operation result type.

Every hardware-touching verb — :meth:`SurfaceDriver.push_configuration`,
:meth:`SurfaceDriver.commit`, :meth:`PassiveDriver.fabricate`, and the
:class:`~repro.hwmgr.manager.HardwareManager` methods wrapping them —
returns one :class:`OperationResult` carrying status, attempt count,
control-plane latency, and the error (if any).  Before this, the three
verbs returned a float (ready time), an int (writes applied), and a
:class:`~repro.core.configuration.SurfaceConfiguration` respectively,
so callers had to know which scalar each verb leaked.

The transitional duck-type shim that let an ``OperationResult`` pose as
its operation's old scalar return value has been retired: read
``.ready_at``, ``.applied``, or ``.configuration`` explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .configuration import SurfaceConfiguration


class OperationStatus(enum.Enum):
    """Outcome class of one hardware operation."""

    OK = "ok"                  #: succeeded on the first attempt
    RETRIED = "retried"        #: succeeded after transient failures
    FAILED = "failed"          #: exhausted every retry attempt
    REJECTED = "rejected"      #: refused up front (e.g. quarantined)


@dataclass(eq=False)
class OperationResult:
    """Typed outcome of one hardware operation.

    Attributes:
        status: outcome class (:class:`OperationStatus`).
        operation: the verb — ``"push"``, ``"commit"``, ``"fabricate"``.
        surface_id: target surface (``"*"`` for fan-out operations).
        attempts: how many tries the operation took (retries included).
        latency_s: simulated control-plane latency paid, including
            control delay, link lag, and retry backoff.
        error: stringified terminal error for FAILED/REJECTED results.
        ready_at: simulated time a queued push becomes live.
        applied: number of in-flight writes a commit applied.
        configuration: the projected configuration a fabrication fixed.
    """

    status: OperationStatus
    operation: str
    surface_id: str
    attempts: int = 1
    latency_s: float = 0.0
    error: Optional[str] = None
    ready_at: Optional[float] = None
    applied: int = 0
    configuration: Optional[SurfaceConfiguration] = None

    @property
    def ok(self) -> bool:
        """Whether the operation ultimately succeeded."""
        return self.status in (OperationStatus.OK, OperationStatus.RETRIED)

    def __bool__(self) -> bool:
        return self.ok

    def __eq__(self, other: object):
        # Configurations hold arrays (ambiguous ==), so equality covers
        # every field but the fabricated configuration.
        if not isinstance(other, OperationResult):
            return NotImplemented
        return (
            self.status is other.status
            and self.operation == other.operation
            and self.surface_id == other.surface_id
            and self.attempts == other.attempts
            and self.latency_s == other.latency_s
            and self.error == other.error
            and self.ready_at == other.ready_at
            and self.applied == other.applied
        )

    __hash__ = object.__hash__
