"""The unified hardware-operation result type.

Every hardware-touching verb — :meth:`SurfaceDriver.push_configuration`,
:meth:`SurfaceDriver.commit`, :meth:`PassiveDriver.fabricate`, and the
:class:`~repro.hwmgr.manager.HardwareManager` methods wrapping them —
returns one :class:`OperationResult` carrying status, attempt count,
control-plane latency, and the error (if any).  Before this, the three
verbs returned a float (ready time), an int (writes applied), and a
:class:`~repro.core.configuration.SurfaceConfiguration` respectively,
so callers had to know which scalar each verb leaked.

Legacy callers keep working for one release: an ``OperationResult``
*duck-types* as its operation's old return value (numeric comparison,
arithmetic, and — for fabrication — attribute access on the applied
configuration), emitting a :class:`DeprecationWarning` on each legacy
use.
"""

from __future__ import annotations

import enum
import numbers
import warnings
from dataclasses import dataclass, field
from typing import Optional

from .configuration import SurfaceConfiguration


class OperationStatus(enum.Enum):
    """Outcome class of one hardware operation."""

    OK = "ok"                  #: succeeded on the first attempt
    RETRIED = "retried"        #: succeeded after transient failures
    FAILED = "failed"          #: exhausted every retry attempt
    REJECTED = "rejected"      #: refused up front (e.g. quarantined)


def _legacy_warn(what: str) -> None:
    warnings.warn(
        f"treating an OperationResult as its legacy {what} return value "
        "is deprecated; read .ready_at / .applied / .configuration instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(eq=False)
class OperationResult:
    """Typed outcome of one hardware operation.

    Attributes:
        status: outcome class (:class:`OperationStatus`).
        operation: the verb — ``"push"``, ``"commit"``, ``"fabricate"``.
        surface_id: target surface (``"*"`` for fan-out operations).
        attempts: how many tries the operation took (retries included).
        latency_s: simulated control-plane latency paid, including
            control delay, link lag, and retry backoff.
        error: stringified terminal error for FAILED/REJECTED results.
        ready_at: simulated time a queued push becomes live.
        applied: number of in-flight writes a commit applied.
        configuration: the projected configuration a fabrication fixed.
    """

    status: OperationStatus
    operation: str
    surface_id: str
    attempts: int = 1
    latency_s: float = 0.0
    error: Optional[str] = None
    ready_at: Optional[float] = None
    applied: int = 0
    configuration: Optional[SurfaceConfiguration] = None

    @property
    def ok(self) -> bool:
        """Whether the operation ultimately succeeded."""
        return self.status in (OperationStatus.OK, OperationStatus.RETRIED)

    def __bool__(self) -> bool:
        return self.ok

    # ------------------------------------------------------------------
    # deprecation shims: behave like the legacy return value
    # ------------------------------------------------------------------

    def _legacy_value(self):
        if self.operation == "fabricate":
            return self.configuration
        if self.operation == "commit":
            return self.applied
        return self.ready_at if self.ready_at is not None else self.latency_s

    def _legacy_number(self) -> float:
        value = self._legacy_value()
        if isinstance(value, numbers.Number):
            return value
        raise TypeError(
            f"OperationResult({self.operation}) has no legacy numeric value"
        )

    def __float__(self) -> float:
        _legacy_warn("float")
        return float(self._legacy_number())

    def __int__(self) -> int:
        _legacy_warn("int")
        return int(self._legacy_number())

    __index__ = __int__

    def __eq__(self, other: object):
        if isinstance(other, OperationResult):
            return (
                self.status is other.status
                and self.operation == other.operation
                and self.surface_id == other.surface_id
                and self.attempts == other.attempts
                and self.latency_s == other.latency_s
                and self.error == other.error
                and self.ready_at == other.ready_at
                and self.applied == other.applied
            )
        _legacy_warn("value in a comparison")
        return self._legacy_value() == other

    __hash__ = object.__hash__

    def _cmp(self, other: object, op: str):
        _legacy_warn("value in a comparison")
        return getattr(self._legacy_number(), op)(other)

    def __lt__(self, other):
        return self._cmp(other, "__lt__")

    def __le__(self, other):
        return self._cmp(other, "__le__")

    def __gt__(self, other):
        return self._cmp(other, "__gt__")

    def __ge__(self, other):
        return self._cmp(other, "__ge__")

    def _arith(self, other: object, op: str):
        _legacy_warn("value in arithmetic")
        return getattr(self._legacy_number(), op)(other)

    def __add__(self, other):
        return self._arith(other, "__add__")

    def __radd__(self, other):
        return self._arith(other, "__radd__")

    def __sub__(self, other):
        return self._arith(other, "__sub__")

    def __rsub__(self, other):
        return self._arith(other, "__rsub__")

    def __mul__(self, other):
        return self._arith(other, "__mul__")

    def __rmul__(self, other):
        return self._arith(other, "__rmul__")

    def __truediv__(self, other):
        return self._arith(other, "__truediv__")

    def __rtruediv__(self, other):
        return self._arith(other, "__rtruediv__")

    def __getattr__(self, name: str):
        # Legacy fabricate() callers read SurfaceConfiguration attributes
        # (``.phases``, ``.coefficients()``, …) off the return value.
        configuration = object.__getattribute__(self, "__dict__").get(
            "configuration"
        )
        if configuration is not None and hasattr(configuration, name):
            _legacy_warn("configuration attribute access")
            return getattr(configuration, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


def as_sim_time(now: object) -> float:
    """Coerce a ``now`` argument to simulated seconds.

    Accepts plain numbers and — for legacy call sites that feed a
    previous operation's return straight back in (``commit(now=ready)``)
    — an :class:`OperationResult`, which warns via its float shim.
    """
    if isinstance(now, OperationResult):
        return float(now)
    return float(now)  # type: ignore[arg-type]
