"""Surface configurations — the currency of the SurfOS data plane.

A *configuration* is an array of signal-property alteration values, one
per surface element (the paper's §3.1: "One configuration is an array of
signal property alteration values for each surface element, e.g., phase
shift values").  The hardware manager accepts configurations through the
unified driver primitives; the orchestrator's optimizers treat them as
the decision variables.

Configurations are stored at *element* granularity (rows × cols) even
for hardware with coarser control.  Coarse hardware (column-wise,
row-wise, global) is handled by :func:`tie_to_granularity`, which
projects an element-wise array onto the feasible set of the hardware —
mirroring how the paper treats column-wise mmWave surfaces as a
constrained special case of element-wise control.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .errors import ConfigurationError

TWO_PI = 2.0 * np.pi


class Granularity(enum.Enum):
    """Spatial control granularity of a surface's reconfiguration."""

    ELEMENT = "element"
    COLUMN = "column"
    ROW = "row"
    GLOBAL = "global"

    def degrees_of_freedom(self, rows: int, cols: int) -> int:
        """Number of independently controllable values for a panel."""
        if self is Granularity.ELEMENT:
            return rows * cols
        if self is Granularity.COLUMN:
            return cols
        if self is Granularity.ROW:
            return rows
        return 1


def wrap_phase(phases: np.ndarray) -> np.ndarray:
    """Wrap phases into the canonical [0, 2π) interval.

    ``np.mod(-ε, 2π)`` rounds to exactly 2π for tiny negative inputs;
    those land back on 0 to keep the interval half-open.
    """
    wrapped = np.mod(phases, TWO_PI)
    return np.where(wrapped >= TWO_PI, 0.0, wrapped)


def quantize_phase(phases: np.ndarray, bits: int) -> np.ndarray:
    """Snap phases to the nearest of ``2**bits`` uniform levels.

    Real programmable metasurfaces use 1-bit or 2-bit phase shifters;
    this models the resulting quantization loss.
    """
    if bits < 1:
        raise ConfigurationError(f"phase quantization needs >=1 bit, got {bits}")
    levels = 2 ** bits
    step = TWO_PI / levels
    return wrap_phase(np.round(np.asarray(phases) / step) * step)


def tie_to_granularity(values: np.ndarray, granularity: Granularity) -> np.ndarray:
    """Project an element-wise array onto a coarser control granularity.

    Column-wise hardware shares one state per column, so the per-column
    circular mean (for angles the arithmetic mean of unit phasors) is
    broadcast down the column; likewise for rows and global control.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError(f"expected 2-D array, got shape {values.shape}")
    if granularity is Granularity.ELEMENT:
        return values.copy()
    phasors = np.exp(1j * values)
    if granularity is Granularity.COLUMN:
        tied = np.angle(phasors.mean(axis=0, keepdims=True))
        return wrap_phase(np.broadcast_to(tied, values.shape).copy())
    if granularity is Granularity.ROW:
        tied = np.angle(phasors.mean(axis=1, keepdims=True))
        return wrap_phase(np.broadcast_to(tied, values.shape).copy())
    tied = np.angle(phasors.mean())
    return wrap_phase(np.full_like(values, tied))


@dataclass
class SurfaceConfiguration:
    """Per-element signal alteration values for one surface panel.

    Attributes:
        phases: phase shifts in radians, shape ``(rows, cols)``.
        amplitudes: reflection/transmission amplitude per element in
            [0, 1], same shape as ``phases``.
        name: optional label, e.g. the codebook entry name.
        frequency_hz: carrier the configuration was optimized for, if
            any; purely informational.
    """

    phases: np.ndarray
    amplitudes: Optional[np.ndarray] = None
    name: str = ""
    frequency_hz: Optional[float] = None
    _shape: Tuple[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.phases = wrap_phase(np.asarray(self.phases, dtype=float))
        if self.phases.ndim != 2:
            raise ConfigurationError(
                f"phases must be 2-D (rows, cols), got shape {self.phases.shape}"
            )
        if self.amplitudes is None:
            self.amplitudes = np.ones_like(self.phases)
        else:
            self.amplitudes = np.asarray(self.amplitudes, dtype=float)
            if self.amplitudes.shape != self.phases.shape:
                raise ConfigurationError(
                    "amplitudes shape "
                    f"{self.amplitudes.shape} != phases shape {self.phases.shape}"
                )
            if np.any(self.amplitudes < 0.0) or np.any(self.amplitudes > 1.0):
                raise ConfigurationError("amplitudes must lie in [0, 1]")
        self._shape = self.phases.shape

    @property
    def shape(self) -> Tuple[int, int]:
        """Panel shape as ``(rows, cols)``."""
        return self._shape

    @property
    def num_elements(self) -> int:
        """Total element count of the panel."""
        return self._shape[0] * self._shape[1]

    def coefficients(self) -> np.ndarray:
        """Complex per-element coefficients ``A * exp(j*phase)``."""
        return self.amplitudes * np.exp(1j * self.phases)

    def flat_phases(self) -> np.ndarray:
        """Phases flattened row-major to a 1-D vector."""
        return self.phases.reshape(-1)

    def quantized(self, bits: int) -> "SurfaceConfiguration":
        """A copy with phases snapped to ``2**bits`` uniform levels."""
        return SurfaceConfiguration(
            phases=quantize_phase(self.phases, bits),
            amplitudes=self.amplitudes.copy(),
            name=self.name,
            frequency_hz=self.frequency_hz,
        )

    def tied(self, granularity: Granularity) -> "SurfaceConfiguration":
        """A copy projected onto a coarser control granularity."""
        return SurfaceConfiguration(
            phases=tie_to_granularity(self.phases, granularity),
            amplitudes=self.amplitudes.copy(),
            name=self.name,
            frequency_hz=self.frequency_hz,
        )

    def with_phases(self, phases: np.ndarray) -> "SurfaceConfiguration":
        """A copy with new phases and the same amplitudes/metadata."""
        return SurfaceConfiguration(
            phases=np.asarray(phases, dtype=float).reshape(self._shape),
            amplitudes=self.amplitudes.copy(),
            name=self.name,
            frequency_hz=self.frequency_hz,
        )

    def copy(self) -> "SurfaceConfiguration":
        """A deep copy."""
        return SurfaceConfiguration(
            phases=self.phases.copy(),
            amplitudes=self.amplitudes.copy(),
            name=self.name,
            frequency_hz=self.frequency_hz,
        )

    @classmethod
    def zeros(cls, rows: int, cols: int, name: str = "") -> "SurfaceConfiguration":
        """All-zero phase, unit amplitude (a 'specular mirror')."""
        return cls(phases=np.zeros((rows, cols)), name=name)

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ) -> "SurfaceConfiguration":
        """Uniformly random phases — the optimizers' initial point."""
        rng = rng or np.random.default_rng()
        return cls(phases=rng.uniform(0.0, TWO_PI, size=(rows, cols)), name=name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SurfaceConfiguration):
            return NotImplemented
        return (
            self._shape == other._shape
            and np.allclose(self.phases, other.phases)
            and np.allclose(self.amplitudes, other.amplitudes)
        )
