"""The SurfOS kernel façade: one object wiring every layer together.

Construction order mirrors Figure 3: hardware manager at the bottom,
surface orchestrator above it, service broker and LLM intent translation
in user space, and the runtime daemon watching the environment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..broker.broker import ServiceBroker
from ..broker.calls import ServiceCall
from ..geometry.environment import Environment
from ..hwmgr.devices import AccessPoint, ClientDevice, Sensor
from ..hwmgr.manager import HardwareManager
from ..llm.client import LLMClient
from ..llm.intent import IntentTranslator, dispatch_calls
from ..llm.mock import MockLLM
from ..orchestrator.optimizers import Optimizer
from ..orchestrator.orchestrator import SurfaceOrchestrator
from ..runtime.daemon import SurfOSDaemon
from ..runtime.dynamics import EnvironmentDynamics
from ..surfaces.panel import SurfacePanel
from ..telemetry import Telemetry
from .errors import SurfOSError


class SurfOS:
    """The metasurface operating system for one radio environment.

    Typical setup::

        surfos = SurfOS(env, frequency_hz=ghz(28))
        surfos.add_access_point(AccessPoint("ap", pos, 4, ghz(28)))
        surfos.add_surface(panel)
        surfos.add_client(ClientDevice("phone", pos))
        surfos.boot()
        task = surfos.orchestrator.optimize_coverage("bedroom")
        surfos.orchestrator.reoptimize()
        print(surfos.telemetry.summary())

    One :class:`~repro.telemetry.Telemetry` instance is threaded
    through every layer (hardware manager, channel simulator,
    orchestrator, daemon, broker) and exposed as ``surfos.telemetry``.

    Pass ``fault_injector`` (a :class:`~repro.faults.FaultInjector`) to
    exercise hardware failures; the daemon then reacts to surface
    degradation exactly like it reacts to motion.  Without one, no
    fault code runs at all.

    Pass ``channel_workers`` to fan cold channel-leg traces across a
    thread pool; results are bit-identical to serial at any worker
    count, so this is purely a latency knob.
    """

    def __init__(
        self,
        env: Environment,
        frequency_hz: float,
        llm: Optional[LLMClient] = None,
        optimizer: Optional[Optimizer] = None,
        grid_spacing_m: float = 0.7,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        channel_workers: int = 0,
        solve_budget=None,
    ):
        self.env = env
        self.frequency_hz = frequency_hz
        #: Thread-pool size for parallel channel-leg tracing (<=1 = serial).
        self.channel_workers = channel_workers
        #: Optional :class:`~repro.orchestrator.SolveBudgetConfig` for
        #: drift-aware adaptive solve budgets (None = fixed budgets).
        self.solve_budget = solve_budget
        self.telemetry = telemetry or Telemetry()
        self.hardware = HardwareManager(
            telemetry=self.telemetry, fault_injector=fault_injector
        )
        self.llm = llm or MockLLM()
        self._optimizer = optimizer
        self._grid_spacing = grid_spacing_m
        self.orchestrator: Optional[SurfaceOrchestrator] = None
        self.broker: Optional[ServiceBroker] = None
        self.translator: Optional[IntentTranslator] = None
        self.daemon: Optional[SurfOSDaemon] = None
        self.pipeline = None
        self.dynamics = EnvironmentDynamics(env)
        #: The Scene this system was built from (set by from_scene).
        self.scene = None

    @classmethod
    def from_scene(
        cls,
        scene,
        *,
        frequency_hz: float = 28e9,
        panel_size: int = 8,
        ap_antennas: int = 4,
        optimizer: Optional[Optimizer] = None,
        grid_spacing_m: float = 1.0,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        channel_workers: int = 0,
        solve_budget=None,
        device_prefix: str = "",
        boot: bool = True,
    ) -> "SurfOS":
        """Stand up a system on a registered scene (or a ``Scene``).

        The scene supplies the environment, AP mount, surface sites,
        and observation room; this builds the hardware on top of them.
        ``device_prefix`` prefixes every device id (fleet shards pass
        ``"{shard_id}-"``), and ``boot=False`` leaves the system
        un-booted for callers that register extra hardware first.
        """
        from ..geometry.scenes import Scene, build_scene
        from ..surfaces.catalog import GENERIC_PROGRAMMABLE_28

        if not isinstance(scene, Scene):
            scene = build_scene(scene)
        system = cls(
            scene.env,
            frequency_hz=frequency_hz,
            optimizer=optimizer,
            grid_spacing_m=grid_spacing_m,
            telemetry=telemetry,
            fault_injector=fault_injector,
            channel_workers=channel_workers,
            solve_budget=solve_budget,
        )
        system.scene = scene
        system.add_access_point(
            AccessPoint(
                f"{device_prefix}ap",
                np.asarray(scene.ap_position, dtype=float),
                ap_antennas,
                frequency_hz,
                boresight=scene.ap_boresight,
            )
        )
        for site in scene.panel_sites:
            system.add_surface(
                SurfacePanel(
                    f"{device_prefix}{site.panel_id}",
                    GENERIC_PROGRAMMABLE_28,
                    panel_size,
                    panel_size,
                    np.asarray(site.center, dtype=float),
                    np.asarray(site.normal, dtype=float),
                )
            )
        if boot:
            system.boot(observe_room=scene.observe_room)
        return system

    # ------------------------------------------------------------------
    # hardware registration (pre-boot or live)
    # ------------------------------------------------------------------

    def add_surface(self, panel: SurfacePanel):
        """Register a surface panel; returns its driver."""
        return self.hardware.register_surface(panel)

    def add_access_point(self, ap: AccessPoint) -> AccessPoint:
        """Register an access point."""
        return self.hardware.register_access_point(ap)

    def add_client(self, client: ClientDevice) -> ClientDevice:
        """Register a client device."""
        return self.hardware.register_client(client)

    def add_sensor(self, sensor: Sensor) -> Sensor:
        """Register an external sensor."""
        return self.hardware.register_sensor(sensor)

    # ------------------------------------------------------------------

    def boot(self, observe_room: Optional[str] = None) -> "SurfOS":
        """Instantiate the orchestrator, broker, translator, daemon."""
        if self.orchestrator is not None:
            raise SurfOSError("SurfOS already booted")
        self.orchestrator = SurfaceOrchestrator(
            self.env,
            self.hardware,
            self.frequency_hz,
            optimizer=self._optimizer,
            grid_spacing_m=self._grid_spacing,
            telemetry=self.telemetry,
            channel_workers=self.channel_workers,
            solve_budget=self.solve_budget,
        )
        self.broker = ServiceBroker(self.orchestrator)
        self.translator = IntentTranslator(self.llm)
        self.daemon = SurfOSDaemon(
            self.orchestrator,
            dynamics=self.dynamics,
            observe_room=observe_room,
        )
        return self

    def attach_pipeline(self, config=None, backend=None):
        """Build a request pipeline over the broker and daemon clock.

        Returns the :class:`~repro.pipeline.RequestPipeline`, shared
        with the daemon so environment triggers (motion, degradation)
        coalesce with admission triggers.  Pass a
        :class:`~repro.pipeline.PipelineConfig` to tune queue capacity,
        batch size, the coalescing window, and evaluation parallelism;
        ``backend`` ("thread" | "process") overrides the evaluation
        backend without spelling out a full config — either way results
        are bit-identical, only where the NumPy work runs changes.
        """
        self._require_boot()
        from ..pipeline import EvaluationConfig, PipelineConfig, RequestPipeline

        if backend is not None:
            from dataclasses import replace

            base = config or PipelineConfig()
            config = replace(
                base,
                evaluation=EvaluationConfig(
                    backend=backend,
                    parallelism=base.evaluation.parallelism,
                    chunk=base.evaluation.chunk,
                    start_method=base.evaluation.start_method,
                ),
            )
        self.pipeline = RequestPipeline(
            self.broker, clock=self.daemon.clock, config=config
        )
        self.daemon.pipeline = self.pipeline
        return self.pipeline

    def _require_boot(self) -> None:
        if self.orchestrator is None:
            raise SurfOSError("call boot() before using services")

    # ------------------------------------------------------------------
    # user space conveniences
    # ------------------------------------------------------------------

    def handle_user_demand(self, text: str) -> List[object]:
        """Natural language → service tasks (the Fig. 6 path)."""
        self._require_boot()
        calls = self.translator.translate(text)
        return dispatch_calls(calls, self.orchestrator)

    def translate_only(self, text: str) -> List[ServiceCall]:
        """Natural language → validated calls, without executing them."""
        self._require_boot()
        return self.translator.translate(text)

    def serve_application(self, app_name: str, client_id: str, room_id: str, **kw):
        """Register an application demand through the broker."""
        self._require_boot()
        return self.broker.register_profile(app_name, client_id, room_id, **kw)

    def reoptimize(self, **kwargs):
        """Re-run the joint optimization for every active task."""
        self._require_boot()
        return self.orchestrator.reoptimize(**kwargs)

    def summary(self) -> str:
        """One-line system state."""
        booted = "booted" if self.orchestrator is not None else "not booted"
        return f"SurfOS({self.env.name!r}, {booted}, {self.hardware.summary()})"
