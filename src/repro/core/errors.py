"""Exception hierarchy for SurfOS.

All SurfOS errors derive from :class:`SurfOSError` so that callers can
catch the whole family with one clause while still discriminating the
layer that raised: hardware, orchestration, service, broker, or LLM
automation.
"""

from __future__ import annotations


class SurfOSError(Exception):
    """Base class for every error raised by the SurfOS stack."""


class ConfigurationError(SurfOSError):
    """A surface configuration is malformed or incompatible.

    Raised when a configuration's shape, granularity, or value range
    does not match the surface it is being applied to.
    """


class HardwareError(SurfOSError):
    """Base class for hardware-manager and driver errors."""


class CapabilityError(HardwareError):
    """The hardware cannot perform the requested operation.

    Examples: shifting phases on an amplitude-only surface, or
    reconfiguring a passive (one-time programmable) surface after
    fabrication.
    """


class DriverError(HardwareError):
    """A driver failed to apply an operation to its surface."""


class TransientHardwareError(HardwareError):
    """A hardware operation failed in a retryable way.

    Raised when the control link to a surface drops a write or the
    surface NACKs transiently; the hardware manager retries these with
    exponential backoff before giving up.
    """


class HardwareTimeoutError(TransientHardwareError):
    """A hardware operation timed out waiting for the control link."""


class UnknownDeviceError(HardwareError):
    """A device id was not found in the hardware registry."""


class OrchestrationError(SurfOSError):
    """Base class for surface-orchestrator errors."""


class AdmissionError(OrchestrationError):
    """A task could not be admitted (no feasible resource slice)."""


class SchedulingError(OrchestrationError):
    """The scheduler reached an inconsistent state."""


class OptimizationError(OrchestrationError):
    """An optimizer failed to produce a configuration."""


class ServiceError(SurfOSError):
    """A service request was invalid or could not be fulfilled."""


class TranslationError(SurfOSError):
    """The broker or LLM layer could not translate a demand."""


class SimulationError(SurfOSError):
    """The channel simulator was asked for something unphysical."""
