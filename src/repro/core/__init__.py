"""Core types shared by every SurfOS layer."""

from .configuration import (
    Granularity,
    SurfaceConfiguration,
    quantize_phase,
    tie_to_granularity,
    wrap_phase,
)
from .errors import (
    AdmissionError,
    CapabilityError,
    ConfigurationError,
    DriverError,
    HardwareError,
    HardwareTimeoutError,
    OptimizationError,
    OrchestrationError,
    SchedulingError,
    ServiceError,
    SimulationError,
    SurfOSError,
    TransientHardwareError,
    TranslationError,
    UnknownDeviceError,
)
from .operations import OperationResult, OperationStatus
from . import units

__all__ = [
    "AdmissionError",
    "CapabilityError",
    "ConfigurationError",
    "DriverError",
    "Granularity",
    "HardwareError",
    "HardwareTimeoutError",
    "OperationResult",
    "OperationStatus",
    "OptimizationError",
    "OrchestrationError",
    "SchedulingError",
    "ServiceError",
    "SimulationError",
    "SurfOSError",
    "SurfaceConfiguration",
    "TransientHardwareError",
    "TranslationError",
    "UnknownDeviceError",
    "quantize_phase",
    "tie_to_granularity",
    "units",
    "wrap_phase",
]
