"""Core types shared by every SurfOS layer."""

from .configuration import (
    Granularity,
    SurfaceConfiguration,
    quantize_phase,
    tie_to_granularity,
    wrap_phase,
)
from .errors import (
    AdmissionError,
    CapabilityError,
    ConfigurationError,
    DriverError,
    HardwareError,
    OptimizationError,
    OrchestrationError,
    SchedulingError,
    ServiceError,
    SimulationError,
    SurfOSError,
    TranslationError,
    UnknownDeviceError,
)
from . import units

__all__ = [
    "AdmissionError",
    "CapabilityError",
    "ConfigurationError",
    "DriverError",
    "Granularity",
    "HardwareError",
    "OptimizationError",
    "OrchestrationError",
    "SchedulingError",
    "ServiceError",
    "SimulationError",
    "SurfOSError",
    "SurfaceConfiguration",
    "TranslationError",
    "UnknownDeviceError",
    "quantize_phase",
    "tie_to_granularity",
    "units",
    "wrap_phase",
]
