"""Per-surface health tracking and the manager's retry policy.

Cheap metasurface panels stick, drift, and drop their control links;
the hardware manager therefore treats every surface as a device that
*will* fail and tracks where each one sits on the
healthy → degraded → quarantined/dead ladder.  Quarantined surfaces
stop receiving control-plane writes and are masked out of the
orchestrator's optimization until reinstated; dead surfaces stay in the
channel model (they are still mounted) but scatter nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class HealthStatus(enum.Enum):
    """Where a surface sits on the degradation ladder."""

    HEALTHY = "healthy"          #: serving normally
    DEGRADED = "degraded"        #: impaired (failed elements, drift) but serving
    QUARANTINED = "quarantined"  #: repeated control failures; writes refused
    DEAD = "dead"                #: whole panel dark


@dataclass
class SurfaceHealth:
    """Mutable health record the manager keeps per surface.

    Attributes:
        surface_id: the tracked surface.
        status: current :class:`HealthStatus`.
        consecutive_failures: failed operations since the last success
            (quarantine trips on this).
        total_failures: failed operations over the surface's lifetime.
        retries: transient-failure retries spent on this surface.
        last_error: stringified most recent terminal error.
        quarantined_at: simulated time quarantine tripped, if ever.
    """

    surface_id: str
    status: HealthStatus = HealthStatus.HEALTHY
    consecutive_failures: int = 0
    total_failures: int = 0
    retries: int = 0
    last_error: Optional[str] = None
    quarantined_at: Optional[float] = None

    @property
    def operational(self) -> bool:
        """Whether the surface still takes control-plane writes."""
        return self.status in (HealthStatus.HEALTHY, HealthStatus.DEGRADED)

    def record_success(self) -> None:
        """A control operation landed; clear the failure streak."""
        self.consecutive_failures = 0

    def record_failure(
        self, error: str, now: float, quarantine_after: int
    ) -> bool:
        """A control operation exhausted its retries.

        Returns ``True`` when this failure trips quarantine.
        """
        self.consecutive_failures += 1
        self.total_failures += 1
        self.last_error = error
        if (
            self.operational
            and self.consecutive_failures >= quarantine_after
        ):
            self.status = HealthStatus.QUARANTINED
            self.quarantined_at = now
            return True
        return False

    def mark_degraded(self) -> None:
        """Element-level impairment: degraded, but still serving."""
        if self.status is HealthStatus.HEALTHY:
            self.status = HealthStatus.DEGRADED

    def mark_dead(self) -> None:
        """The whole panel died."""
        self.status = HealthStatus.DEAD

    def reinstate(self) -> None:
        """Operator override: put a quarantined surface back in service."""
        if self.status is HealthStatus.QUARANTINED:
            self.status = HealthStatus.HEALTHY
            self.consecutive_failures = 0
            self.quarantined_at = None


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter for transient errors.

    Attributes:
        max_attempts: total tries per operation (first attempt included).
        base_backoff_s: backoff before the first retry.
        backoff_factor: multiplier per further retry.
        jitter_fraction: uniform jitter added on top, as a fraction of
            the exponential backoff (decorrelates synchronized retries
            across panels; drawn from the manager's seeded stream so
            the schedule is reproducible).
        quarantine_after: consecutive failed *operations* (not attempts)
            before a surface is quarantined.
        seed: seed for the jitter stream.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.02
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.25
    quarantine_after: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0.0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.jitter_fraction < 0.0:
            raise ValueError("jitter_fraction must be non-negative")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")

    def make_rng(self) -> np.random.Generator:
        """The seeded jitter stream (one per manager)."""
        return np.random.default_rng(self.seed)

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        base = self.base_backoff_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter_fraction * float(rng.random()))
