"""The hardware manager layer: one registry, unified APIs (§3.1).

The manager owns every driver and non-surface device in the deployment
and is the *only* path upper layers use to touch hardware.  It exposes:

* registration/lookup for surfaces (via drivers), APs, clients, sensors
  — with symmetric ``register_*``/``unregister_*`` pairs;
* unified configuration writes that fan out through drivers, with the
  control delay accounted against a simulated clock; every write verb
  returns an :class:`~repro.core.operations.OperationResult`;
* health tracking per surface: transient push failures are retried
  with exponential backoff + deterministic jitter, repeat offenders are
  quarantined, and degradations are reported upward through
  :attr:`HardwareManager.on_degraded`;
* a specification table for the orchestrator's modeling;
* feedback routing from endpoints to the drivers' local selection.

Attach a :class:`~repro.faults.FaultInjector` to exercise the failure
paths; with none attached (the default) no fault code runs at all.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from ..core.configuration import SurfaceConfiguration
from ..core.errors import TransientHardwareError, UnknownDeviceError
from ..core.operations import OperationResult, OperationStatus
from ..drivers.base import FeedbackReport, PassiveDriver, SurfaceDriver
from ..drivers.amplitude import AmplitudeDriver
from ..drivers.frequency import FrequencySelectiveDriver
from ..drivers.phase import PassivePhaseDriver, ProgrammablePhaseDriver
from ..drivers.polarization import PolarizationDriver
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SignalProperty, SurfaceSpec
from ..telemetry import Telemetry
from .devices import AccessPoint, ClientDevice, Sensor
from .health import HealthStatus, RetryPolicy, SurfaceHealth


def driver_for_panel(panel: SurfacePanel) -> SurfaceDriver:
    """Instantiate the right driver class for a panel's capabilities.

    The dispatch order prefers phase control (the dominant modality in
    Table 1) and falls back through amplitude, polarization, frequency.
    """
    spec = panel.spec
    if spec.supports(SignalProperty.PHASE):
        if spec.is_passive:
            return PassivePhaseDriver(panel)
        return ProgrammablePhaseDriver(panel)
    if spec.supports(SignalProperty.AMPLITUDE):
        return AmplitudeDriver(panel)
    if spec.supports(SignalProperty.POLARIZATION):
        return PolarizationDriver(panel)
    if spec.supports(SignalProperty.FREQUENCY):
        return FrequencySelectiveDriver(panel, bands_hz=[spec.band_hz])
    raise UnknownDeviceError(
        f"no driver for {spec.design}: controls {sorted(p.value for p in spec.properties)}"
    )


class HardwareManager:
    """Registry + unified control for all hardware in one environment.

    Args:
        telemetry: where push/commit latency accounting goes; the
            kernel passes its shared instance so the whole stack
            reports into one place.
        fault_injector: optional :class:`~repro.faults.FaultInjector`
            exercising element/panel/link failures.
        retry_policy: backoff/quarantine tuning for transient push
            failures.
    """

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        fault_injector=None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.telemetry = telemetry or Telemetry()
        self._drivers: Dict[str, SurfaceDriver] = {}
        self._aps: Dict[str, AccessPoint] = {}
        self._clients: Dict[str, ClientDevice] = {}
        self._sensors: Dict[str, Sensor] = {}
        self._health: Dict[str, SurfaceHealth] = {}
        self.retry_policy = retry_policy or RetryPolicy()
        self._retry_rng = self.retry_policy.make_rng()
        #: Hook called as ``on_degraded(surface_id, reason)`` whenever a
        #: surface is quarantined, dies, or loses elements.  The runtime
        #: daemon wires this to a :class:`SurfaceDegraded` bus event.
        self.on_degraded: Optional[Callable[[str, str], None]] = None
        self.faults = None
        if fault_injector is not None:
            self.attach_faults(fault_injector)

    def attach_faults(self, injector) -> None:
        """Attach a fault injector; its accounting joins this telemetry."""
        injector.telemetry = self.telemetry
        self.faults = injector

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_surface(
        self,
        panel: SurfacePanel,
        driver: Optional[SurfaceDriver] = None,
    ) -> SurfaceDriver:
        """Register a panel, auto-selecting its driver unless given."""
        if panel.panel_id in self._drivers:
            raise UnknownDeviceError(
                f"surface {panel.panel_id!r} already registered"
            )
        driver = driver or driver_for_panel(panel)
        self._drivers[panel.panel_id] = driver
        self._health[panel.panel_id] = SurfaceHealth(panel.panel_id)
        return driver

    def unregister_surface(self, surface_id: str) -> None:
        """Remove a surface from management."""
        if surface_id not in self._drivers:
            raise UnknownDeviceError(f"unknown surface {surface_id!r}")
        del self._drivers[surface_id]
        self._health.pop(surface_id, None)

    def unregister_access_point(self, ap_id: str) -> None:
        """Remove an AP/base station from management."""
        if ap_id not in self._aps:
            raise UnknownDeviceError(f"unknown AP {ap_id!r}")
        del self._aps[ap_id]

    def unregister_client(self, client_id: str) -> None:
        """Remove an end-user device from management."""
        if client_id not in self._clients:
            raise UnknownDeviceError(f"unknown client {client_id!r}")
        del self._clients[client_id]

    def unregister_sensor(self, sensor_id: str) -> None:
        """Remove an external sensor from management."""
        if sensor_id not in self._sensors:
            raise UnknownDeviceError(f"unknown sensor {sensor_id!r}")
        del self._sensors[sensor_id]

    def register_access_point(self, ap: AccessPoint) -> AccessPoint:
        """Register an AP/base station."""
        if ap.ap_id in self._aps:
            raise UnknownDeviceError(f"AP {ap.ap_id!r} already registered")
        self._aps[ap.ap_id] = ap
        return ap

    def register_client(self, client: ClientDevice) -> ClientDevice:
        """Register an end-user device."""
        if client.client_id in self._clients:
            raise UnknownDeviceError(
                f"client {client.client_id!r} already registered"
            )
        self._clients[client.client_id] = client
        return client

    def register_sensor(self, sensor: Sensor) -> Sensor:
        """Register an external sensor."""
        if sensor.sensor_id in self._sensors:
            raise UnknownDeviceError(
                f"sensor {sensor.sensor_id!r} already registered"
            )
        self._sensors[sensor.sensor_id] = sensor
        return sensor

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def driver(self, surface_id: str) -> SurfaceDriver:
        """The driver managing a surface."""
        try:
            return self._drivers[surface_id]
        except KeyError:
            known = ", ".join(sorted(self._drivers)) or "(none)"
            raise UnknownDeviceError(
                f"unknown surface {surface_id!r}; known: {known}"
            ) from None

    def panel(self, surface_id: str) -> SurfacePanel:
        """The panel behind a surface id."""
        return self.driver(surface_id).panel

    def panels(self) -> List[SurfacePanel]:
        """All registered panels, sorted by id."""
        return [self._drivers[sid].panel for sid in sorted(self._drivers)]

    def surface_ids(self) -> List[str]:
        """All surface ids, sorted."""
        return sorted(self._drivers)

    def access_point(self, ap_id: str) -> AccessPoint:
        """Look up an AP."""
        try:
            return self._aps[ap_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown AP {ap_id!r}") from None

    def access_points(self) -> List[AccessPoint]:
        """All APs, sorted by id."""
        return [self._aps[k] for k in sorted(self._aps)]

    def client(self, client_id: str) -> ClientDevice:
        """Look up a client device."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown client {client_id!r}") from None

    def clients(self) -> List[ClientDevice]:
        """All clients, sorted by id."""
        return [self._clients[k] for k in sorted(self._clients)]

    def sensor(self, sensor_id: str) -> Sensor:
        """Look up a sensor."""
        try:
            return self._sensors[sensor_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown sensor {sensor_id!r}") from None

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def health(self, surface_id: str) -> SurfaceHealth:
        """One surface's health record."""
        self.driver(surface_id)  # raises UnknownDeviceError consistently
        return self._health[surface_id]

    def health_report(self) -> Dict[str, SurfaceHealth]:
        """Health records for every surface, keyed by id."""
        return {sid: self._health[sid] for sid in sorted(self._drivers)}

    def operational_panels(self) -> List[SurfacePanel]:
        """Panels still taking control-plane writes, sorted by id.

        Excludes quarantined and dead surfaces — the set the
        orchestrator may optimize and push to.  (Dead panels stay in
        :meth:`panels` because they remain physically mounted.)
        """
        return [
            self._drivers[sid].panel
            for sid in sorted(self._drivers)
            if self._health[sid].operational
        ]

    def quarantine(self, surface_id: str, reason: str = "operator") -> None:
        """Force a surface out of service."""
        health = self.health(surface_id)
        if health.status is not HealthStatus.QUARANTINED:
            health.status = HealthStatus.QUARANTINED
            self.telemetry.counter("hwmgr.quarantined")
            self._notify_degraded(surface_id, reason)

    def reinstate(self, surface_id: str) -> None:
        """Put a quarantined surface back in service."""
        self.health(surface_id).reinstate()

    def _notify_degraded(self, surface_id: str, reason: str) -> None:
        self.telemetry.event(
            "hwmgr.degraded", surface=surface_id, reason=reason
        )
        if self.on_degraded is not None:
            self.on_degraded(surface_id, reason)

    # ------------------------------------------------------------------
    # fault clock tick
    # ------------------------------------------------------------------

    def tick_faults(self, now: float) -> List[object]:
        """Advance the fault injector and apply data-plane corruption.

        Called from the runtime clock (the daemon's step).  Newly
        activated faults update health records and fire
        :attr:`on_degraded`; element-level impairments are re-applied
        to the afflicted panels' live configurations so the channel
        model sees the sick hardware.  No-op without an injector.
        """
        if self.faults is None:
            return []
        panels = {sid: d.panel for sid, d in self._drivers.items()}
        injected = self.faults.advance(now, panels)
        for fault in injected:
            health = self._health.get(fault.surface_id)
            if health is None:
                continue
            if fault.kind == "PanelDeath":
                health.mark_dead()
                self._notify_degraded(fault.surface_id, "panel-dead")
            elif fault.kind in ("ElementFailure", "PhaseDrift"):
                health.mark_degraded()
                self._notify_degraded(
                    fault.surface_id, fault.kind.lower()
                )
            # ControlLinkFault degrades nothing by itself; the retry
            # loop discovers it and quarantines repeat offenders.
        for sid in self.faults.impaired_surfaces():
            self._recorrupt(sid)
        return injected

    def _recorrupt(self, surface_id: str) -> None:
        """Re-apply element impairments on top of the intended config."""
        driver = self._drivers.get(surface_id)
        if driver is None:
            return
        intended = self._intended_configuration(driver)
        driver.panel.impair(
            self.faults.corrupt(surface_id, driver.panel.feasible(intended))
        )

    @staticmethod
    def _intended_configuration(driver: SurfaceDriver) -> SurfaceConfiguration:
        """The clean configuration the control plane believes is live."""
        name = driver.active_configuration_name
        if name is not None:
            return driver.get_configuration(name)
        return driver.panel.configuration

    # ------------------------------------------------------------------
    # unified operations
    # ------------------------------------------------------------------

    def specifications(self) -> Dict[str, SurfaceSpec]:
        """Spec table for all managed surfaces (orchestrator input)."""
        return {sid: d.spec for sid, d in self._drivers.items()}

    def push_configuration(
        self,
        surface_id: str,
        config: SurfaceConfiguration,
        now: float = 0.0,
        name: str = "live",
        activate: bool = True,
    ) -> OperationResult:
        """Queue a configuration write; returns an :class:`OperationResult`.

        Writes to quarantined/dead surfaces are refused (``REJECTED``).
        Transient control-link failures are retried up to
        ``retry_policy.max_attempts`` times with exponential backoff and
        deterministic jitter; exhausting the retries records a failure
        against the surface's health and may trip quarantine.
        """
        now = float(now)
        driver = self.driver(surface_id)
        health = self._health[surface_id]
        if not health.operational:
            return OperationResult(
                status=OperationStatus.REJECTED,
                operation="push",
                surface_id=surface_id,
                attempts=0,
                error=(
                    f"surface {surface_id!r} is {health.status.value}; "
                    "write refused"
                ),
            )
        attempt_at = now
        last_error: Optional[str] = None
        for attempt in range(1, self.retry_policy.max_attempts + 1):
            try:
                extra_delay_s = 0.0
                if self.faults is not None:
                    extra_delay_s = self.faults.link_attempt(
                        surface_id, attempt_at
                    )
                pushed = driver.push_configuration(
                    name,
                    config,
                    now=attempt_at + extra_delay_s,
                    activate=activate,
                )
            except TransientHardwareError as exc:
                last_error = str(exc)
                attempt_at += getattr(exc, "timeout_s", 0.0)
                if attempt < self.retry_policy.max_attempts:
                    health.retries += 1
                    self.telemetry.counter("hwmgr.retries")
                    backoff_s = self.retry_policy.backoff_s(
                        attempt, self._retry_rng
                    )
                    self.telemetry.event(
                        "hwmgr.retry",
                        surface=surface_id,
                        attempt=attempt,
                        backoff_s=backoff_s,
                        error=last_error,
                    )
                    attempt_at += backoff_s
                continue
            health.record_success()
            delay_s = pushed.ready_at - now
            self.telemetry.counter("hw.pushes")
            self.telemetry.counter("hw.push_delay_total_s", delay_s)
            self.telemetry.gauge("hw.last_push_delay_s", delay_s)
            return OperationResult(
                status=(
                    OperationStatus.OK
                    if attempt == 1
                    else OperationStatus.RETRIED
                ),
                operation="push",
                surface_id=surface_id,
                attempts=attempt,
                latency_s=delay_s,
                ready_at=pushed.ready_at,
            )
        tripped = health.record_failure(
            last_error or "push failed",
            attempt_at,
            self.retry_policy.quarantine_after,
        )
        self.telemetry.counter("hwmgr.push_failures")
        if tripped:
            self.telemetry.counter("hwmgr.quarantined")
            self._notify_degraded(surface_id, "quarantined")
        return OperationResult(
            status=OperationStatus.FAILED,
            operation="push",
            surface_id=surface_id,
            attempts=self.retry_policy.max_attempts,
            latency_s=attempt_at - now,
            error=last_error,
        )

    def fabricate(
        self, surface_id: str, config: SurfaceConfiguration
    ) -> OperationResult:
        """Permanently fix a passive surface's configuration.

        The unified path for one-time-programmable hardware; raises
        :class:`UnknownDeviceError` when the surface's driver is not
        passive.  The result's ``configuration`` holds the fabricated
        (feasibility-projected) state.
        """
        driver = self.driver(surface_id)
        if not isinstance(driver, PassiveDriver):
            raise UnknownDeviceError(
                f"surface {surface_id!r} is reconfigurable; "
                "use push_configuration() instead of fabricate()"
            )
        result = driver.fabricate(config)
        self.telemetry.counter("hw.fabrications")
        return result

    def commit_all(self, now: float) -> OperationResult:
        """Apply every in-flight write whose control delay elapsed.

        Returns an aggregate :class:`OperationResult` whose ``applied``
        counts activations across all drivers.
        """
        now = float(now)
        with self.telemetry.span("hw-commit") as span:
            applied = sum(
                int(d.commit(now).applied) for d in self._drivers.values()
            )
            span.set(applied=applied)
        if applied:
            self.telemetry.counter("hw.commits_applied", applied)
            if self.faults is not None:
                # A commit actuates the clean intent; sick hardware
                # immediately re-expresses its impairments.
                for sid in self.faults.impaired_surfaces():
                    self._recorrupt(sid)
        return OperationResult(
            status=OperationStatus.OK,
            operation="commit",
            surface_id="*",
            applied=applied,
        )

    def pending_total(self) -> int:
        """Writes still in flight across all drivers."""
        return sum(d.pending_count() for d in self._drivers.values())

    def snapshot(self) -> Dict[str, SurfaceConfiguration]:
        """Live configuration of every surface (data-plane state)."""
        return {
            sid: d.panel.configuration for sid, d in self._drivers.items()
        }

    def route_feedback(
        self, surface_id: str, report: FeedbackReport
    ) -> Optional[str]:
        """Deliver endpoint feedback to one surface's local selection."""
        return self.driver(surface_id).apply_feedback(report)

    def summary(self) -> str:
        """One-line deployment description."""
        return (
            f"HardwareManager({len(self._drivers)} surfaces, "
            f"{len(self._aps)} APs, {len(self._clients)} clients, "
            f"{len(self._sensors)} sensors)"
        )
