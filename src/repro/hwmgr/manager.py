"""The hardware manager layer: one registry, unified APIs (§3.1).

The manager owns every driver and non-surface device in the deployment
and is the *only* path upper layers use to touch hardware.  It exposes:

* registration/lookup for surfaces (via drivers), APs, clients, sensors;
* unified configuration writes that fan out through drivers, with the
  control delay accounted against a simulated clock;
* a specification table for the orchestrator's modeling;
* feedback routing from endpoints to the drivers' local selection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from ..core.configuration import SurfaceConfiguration
from ..core.errors import UnknownDeviceError
from ..drivers.base import FeedbackReport, PassiveDriver, SurfaceDriver
from ..drivers.amplitude import AmplitudeDriver
from ..drivers.frequency import FrequencySelectiveDriver
from ..drivers.phase import PassivePhaseDriver, ProgrammablePhaseDriver
from ..drivers.polarization import PolarizationDriver
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SignalProperty, SurfaceSpec
from ..telemetry import Telemetry
from .devices import AccessPoint, ClientDevice, Sensor


def driver_for_panel(panel: SurfacePanel) -> SurfaceDriver:
    """Instantiate the right driver class for a panel's capabilities.

    The dispatch order prefers phase control (the dominant modality in
    Table 1) and falls back through amplitude, polarization, frequency.
    """
    spec = panel.spec
    if spec.supports(SignalProperty.PHASE):
        if spec.is_passive:
            return PassivePhaseDriver(panel)
        return ProgrammablePhaseDriver(panel)
    if spec.supports(SignalProperty.AMPLITUDE):
        return AmplitudeDriver(panel)
    if spec.supports(SignalProperty.POLARIZATION):
        return PolarizationDriver(panel)
    if spec.supports(SignalProperty.FREQUENCY):
        return FrequencySelectiveDriver(panel, bands_hz=[spec.band_hz])
    raise UnknownDeviceError(
        f"no driver for {spec.design}: controls {sorted(p.value for p in spec.properties)}"
    )


class HardwareManager:
    """Registry + unified control for all hardware in one environment.

    Args:
        telemetry: where push/commit latency accounting goes; the
            kernel passes its shared instance so the whole stack
            reports into one place.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.telemetry = telemetry or Telemetry()
        self._drivers: Dict[str, SurfaceDriver] = {}
        self._aps: Dict[str, AccessPoint] = {}
        self._clients: Dict[str, ClientDevice] = {}
        self._sensors: Dict[str, Sensor] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_surface(
        self,
        panel: SurfacePanel,
        driver: Optional[SurfaceDriver] = None,
    ) -> SurfaceDriver:
        """Register a panel, auto-selecting its driver unless given."""
        if panel.panel_id in self._drivers:
            raise UnknownDeviceError(
                f"surface {panel.panel_id!r} already registered"
            )
        driver = driver or driver_for_panel(panel)
        self._drivers[panel.panel_id] = driver
        return driver

    def unregister_surface(self, surface_id: str) -> None:
        """Remove a surface from management."""
        if surface_id not in self._drivers:
            raise UnknownDeviceError(f"unknown surface {surface_id!r}")
        del self._drivers[surface_id]

    def register_access_point(self, ap: AccessPoint) -> AccessPoint:
        """Register an AP/base station."""
        if ap.ap_id in self._aps:
            raise UnknownDeviceError(f"AP {ap.ap_id!r} already registered")
        self._aps[ap.ap_id] = ap
        return ap

    def register_client(self, client: ClientDevice) -> ClientDevice:
        """Register an end-user device."""
        if client.client_id in self._clients:
            raise UnknownDeviceError(
                f"client {client.client_id!r} already registered"
            )
        self._clients[client.client_id] = client
        return client

    def register_sensor(self, sensor: Sensor) -> Sensor:
        """Register an external sensor."""
        if sensor.sensor_id in self._sensors:
            raise UnknownDeviceError(
                f"sensor {sensor.sensor_id!r} already registered"
            )
        self._sensors[sensor.sensor_id] = sensor
        return sensor

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def driver(self, surface_id: str) -> SurfaceDriver:
        """The driver managing a surface."""
        try:
            return self._drivers[surface_id]
        except KeyError:
            known = ", ".join(sorted(self._drivers)) or "(none)"
            raise UnknownDeviceError(
                f"unknown surface {surface_id!r}; known: {known}"
            ) from None

    def panel(self, surface_id: str) -> SurfacePanel:
        """The panel behind a surface id."""
        return self.driver(surface_id).panel

    def panels(self) -> List[SurfacePanel]:
        """All registered panels, sorted by id."""
        return [self._drivers[sid].panel for sid in sorted(self._drivers)]

    def surface_ids(self) -> List[str]:
        """All surface ids, sorted."""
        return sorted(self._drivers)

    def access_point(self, ap_id: str) -> AccessPoint:
        """Look up an AP."""
        try:
            return self._aps[ap_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown AP {ap_id!r}") from None

    def access_points(self) -> List[AccessPoint]:
        """All APs, sorted by id."""
        return [self._aps[k] for k in sorted(self._aps)]

    def client(self, client_id: str) -> ClientDevice:
        """Look up a client device."""
        try:
            return self._clients[client_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown client {client_id!r}") from None

    def clients(self) -> List[ClientDevice]:
        """All clients, sorted by id."""
        return [self._clients[k] for k in sorted(self._clients)]

    def sensor(self, sensor_id: str) -> Sensor:
        """Look up a sensor."""
        try:
            return self._sensors[sensor_id]
        except KeyError:
            raise UnknownDeviceError(f"unknown sensor {sensor_id!r}") from None

    # ------------------------------------------------------------------
    # unified operations
    # ------------------------------------------------------------------

    def specifications(self) -> Dict[str, SurfaceSpec]:
        """Spec table for all managed surfaces (orchestrator input)."""
        return {sid: d.spec for sid, d in self._drivers.items()}

    def push_configuration(
        self,
        surface_id: str,
        config: SurfaceConfiguration,
        now: float = 0.0,
        name: str = "live",
        activate: bool = True,
    ) -> float:
        """Queue a configuration write; returns the live time."""
        ready_at = self.driver(surface_id).push_configuration(
            name, config, now=now, activate=activate
        )
        self.telemetry.counter("hw.pushes")
        self.telemetry.counter("hw.push_delay_total_s", ready_at - now)
        self.telemetry.gauge("hw.last_push_delay_s", ready_at - now)
        return ready_at

    def fabricate(
        self, surface_id: str, config: SurfaceConfiguration
    ) -> SurfaceConfiguration:
        """Permanently fix a passive surface's configuration.

        The unified path for one-time-programmable hardware; raises
        :class:`UnknownDeviceError` when the surface's driver is not
        passive.
        """
        driver = self.driver(surface_id)
        if not isinstance(driver, PassiveDriver):
            raise UnknownDeviceError(
                f"surface {surface_id!r} is reconfigurable; "
                "use push_configuration() instead of fabricate()"
            )
        applied = driver.fabricate(config)
        self.telemetry.counter("hw.fabrications")
        return applied

    def commit_all(self, now: float) -> int:
        """Apply every in-flight write whose control delay elapsed."""
        with self.telemetry.span("hw-commit") as span:
            applied = sum(d.commit(now) for d in self._drivers.values())
            span.set(applied=applied)
        if applied:
            self.telemetry.counter("hw.commits_applied", applied)
        return applied

    def pending_total(self) -> int:
        """Writes still in flight across all drivers."""
        return sum(d.pending_count() for d in self._drivers.values())

    def snapshot(self) -> Dict[str, SurfaceConfiguration]:
        """Live configuration of every surface (data-plane state)."""
        return {
            sid: d.panel.configuration for sid, d in self._drivers.items()
        }

    def route_feedback(
        self, surface_id: str, report: FeedbackReport
    ) -> Optional[str]:
        """Deliver endpoint feedback to one surface's local selection."""
        return self.driver(surface_id).apply_feedback(report)

    def summary(self) -> str:
        """One-line deployment description."""
        return (
            f"HardwareManager({len(self._drivers)} surfaces, "
            f"{len(self._aps)} APs, {len(self._clients)} clients, "
            f"{len(self._sensors)} sensors)"
        )
