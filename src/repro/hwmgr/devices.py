"""Non-surface hardware SurfOS manages or interacts with (§3.1).

Access points and base stations provide channel feedback and carry the
link budget; client devices are the endpoints services target; sensors
report external measurements (power detectors, lidar, radar) that guide
reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..channel.nodes import RadioNode, single_antenna_node, ula_node
from ..em.antenna import ISOTROPIC, PATCH, AntennaPattern
from ..em.noise import LinkBudget
from ..geometry.vec import as_vec3


@dataclass
class AccessPoint:
    """An AP (or base station) with an antenna array and link budget.

    Attributes:
        ap_id: stable identifier.
        position: array center.
        num_antennas: ULA size.
        frequency_hz: carrier the AP serves.
        boresight: array facing direction.
        budget: transmit power / bandwidth / noise figure.
    """

    ap_id: str
    position: np.ndarray
    num_antennas: int
    frequency_hz: float
    boresight: Sequence[float] = (1.0, 0.0, 0.0)
    axis: Sequence[float] = (0.0, 0.0, 1.0)
    budget: LinkBudget = field(default_factory=LinkBudget)
    pattern: AntennaPattern = PATCH

    def __post_init__(self) -> None:
        self.position = as_vec3(self.position)
        if self.num_antennas < 1:
            raise ValueError("AP needs at least one antenna")
        if self.frequency_hz <= 0:
            raise ValueError("AP carrier must be positive")

    def node(self) -> RadioNode:
        """The channel simulator's view of this AP."""
        return ula_node(
            self.ap_id,
            self.position,
            self.num_antennas,
            self.frequency_hz,
            axis=self.axis,
            boresight=self.boresight,
            pattern=self.pattern,
        )


@dataclass
class ClientDevice:
    """A mobile endpoint (phone, headset, laptop, IoT node)."""

    client_id: str
    position: np.ndarray
    pattern: AntennaPattern = ISOTROPIC

    def __post_init__(self) -> None:
        self.position = as_vec3(self.position)

    def node(self) -> RadioNode:
        """The channel simulator's view of this client."""
        return single_antenna_node(self.client_id, self.position, self.pattern)

    def move_to(self, position: Sequence[float]) -> None:
        """Relocate the device (endpoint mobility)."""
        self.position = as_vec3(position)


@dataclass
class Sensor:
    """An external sensor reporting scalar measurements to SurfOS.

    ``read`` is injected so tests and experiments can model power
    detectors (LAVA), lidar occupancy (AutoMS), or radar-derived
    presence without new classes.
    """

    sensor_id: str
    position: np.ndarray
    kind: str
    read: Callable[[], float]

    def __post_init__(self) -> None:
        self.position = as_vec3(self.position)

    def measure(self) -> float:
        """Take one measurement."""
        return float(self.read())
