"""Hardware manager layer: drivers registry + non-surface devices."""

from .devices import AccessPoint, ClientDevice, Sensor
from .manager import HardwareManager, driver_for_panel

__all__ = [
    "AccessPoint",
    "ClientDevice",
    "HardwareManager",
    "Sensor",
    "driver_for_panel",
]
