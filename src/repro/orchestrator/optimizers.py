"""Configuration optimizers for the surface orchestrator (§3.2).

The paper's optimizer "uses gradient descent, while other algorithms can
be easily supported" — here are four interchangeable ones behind a
common interface: Adam and vanilla gradient descent (analytic
gradients), random search, and simulated annealing (value-only).

Hardware constraints (phase quantization, coarse granularity) are
expressed as an optional *projection* applied to the final answer and,
for projected-descent variants, at every step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.errors import OptimizationError
from .objectives import Objective

#: Maps a raw phase vector onto the hardware's feasible set.
Projection = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run.

    Attributes:
        phases: best feasible phase vector found.
        loss: objective value at ``phases`` (after projection).
        history: loss trajectory, one entry per iteration.
        iterations: iterations actually executed.
        converged: whether the tolerance stop fired before the budget.
    """

    phases: np.ndarray
    loss: float
    history: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False


class Optimizer:
    """Interface: minimize an objective from an initial phase vector."""

    def optimize(
        self,
        objective: Objective,
        initial_phases: np.ndarray,
        projection: Optional[Projection] = None,
    ) -> OptimizationResult:
        """Run the optimizer; always returns a projected, evaluated result."""
        raise NotImplementedError

    @staticmethod
    def _finalize(
        objective: Objective,
        phases: np.ndarray,
        history: List[float],
        iterations: int,
        converged: bool,
        projection: Optional[Projection],
    ) -> OptimizationResult:
        if projection is not None:
            phases = projection(phases)
        loss = objective.value(phases)
        return OptimizationResult(
            phases=phases,
            loss=loss,
            history=history,
            iterations=iterations,
            converged=converged,
        )


@dataclass
class GradientDescent(Optimizer):
    """Plain gradient descent with optional momentum.

    Attributes:
        learning_rate: step size on the phase vector.
        momentum: classical momentum coefficient (0 disables).
        max_iterations: iteration budget.
        tolerance: stop when the loss improves less than this.
        project_each_step: apply the projection inside the loop
            (projected gradient descent) instead of only at the end.
    """

    learning_rate: float = 0.3
    momentum: float = 0.0
    max_iterations: int = 150
    tolerance: float = 1e-7
    project_each_step: bool = False

    def optimize(self, objective, initial_phases, projection=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        velocity = np.zeros_like(phases)
        history: List[float] = []
        converged = False
        for iteration in range(self.max_iterations):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if len(history) > 1 and abs(history[-2] - loss) < self.tolerance:
                converged = True
                break
            velocity = self.momentum * velocity - self.learning_rate * grad
            phases = phases + velocity
            if self.project_each_step and projection is not None:
                phases = projection(phases)
        return self._finalize(
            objective, phases, history, len(history), converged, projection
        )


@dataclass
class Adam(Optimizer):
    """Adam: the default optimizer for every experiment in this repo."""

    learning_rate: float = 0.15
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    max_iterations: int = 200
    tolerance: float = 1e-7

    def optimize(self, objective, initial_phases, projection=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        m = np.zeros_like(phases)
        v = np.zeros_like(phases)
        history: List[float] = []
        best_phases, best_loss = phases.copy(), math.inf
        converged = False
        for iteration in range(1, self.max_iterations + 1):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if loss < best_loss:
                best_loss, best_phases = loss, phases.copy()
            if len(history) > 5 and abs(history[-5] - loss) < self.tolerance:
                converged = True
                break
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1 ** iteration)
            v_hat = v / (1.0 - self.beta2 ** iteration)
            phases = phases - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
        return self._finalize(
            objective, best_phases, history, len(history), converged, projection
        )


@dataclass
class RandomSearch(Optimizer):
    """Gaussian perturbation search (no gradients).

    Keeps the incumbent and samples ``population`` perturbations per
    iteration with a step scale that decays on failure to improve.
    """

    population: int = 16
    initial_scale: float = 1.0
    decay: float = 0.9
    max_iterations: int = 60
    seed: int = 0

    def optimize(self, objective, initial_phases, projection=None):
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        best_loss = objective.value(phases)
        history = [best_loss]
        scale = self.initial_scale
        for _ in range(self.max_iterations):
            improved = False
            for _ in range(self.population):
                candidate = phases + rng.normal(scale=scale, size=phases.shape)
                loss = objective.value(candidate)
                if loss < best_loss:
                    best_loss, phases = loss, candidate
                    improved = True
            history.append(best_loss)
            if not improved:
                scale *= self.decay
        return self._finalize(
            objective, phases, history, len(history), False, projection
        )


@dataclass
class SimulatedAnnealing(Optimizer):
    """Metropolis annealing over per-element phase flips.

    Proposals perturb a random subset of phases; acceptance follows the
    Metropolis rule under a geometric temperature schedule.  Useful for
    heavily quantized hardware where gradients are uninformative.
    """

    initial_temperature: float = 1.0
    cooling: float = 0.97
    steps: int = 600
    subset_fraction: float = 0.1
    proposal_scale: float = 1.5
    seed: int = 0

    def optimize(self, objective, initial_phases, projection=None):
        if not 0.0 < self.subset_fraction <= 1.0:
            raise OptimizationError("subset_fraction must lie in (0, 1]")
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        current = objective.value(phases)
        best_phases, best_loss = phases.copy(), current
        history = [current]
        temperature = self.initial_temperature
        subset = max(1, int(round(self.subset_fraction * phases.size)))
        for _ in range(self.steps):
            candidate = phases.copy()
            idx = rng.choice(phases.size, size=subset, replace=False)
            candidate[idx] += rng.normal(scale=self.proposal_scale, size=subset)
            loss = objective.value(candidate)
            accept = loss < current or rng.random() < math.exp(
                -(loss - current) / max(temperature, 1e-12)
            )
            if accept:
                phases, current = candidate, loss
                if loss < best_loss:
                    best_phases, best_loss = candidate.copy(), loss
            history.append(current)
            temperature *= self.cooling
        return self._finalize(
            objective, best_phases, history, len(history), False, projection
        )


def panel_projection(panel) -> Projection:
    """The projection implied by a panel's spec (granularity + bits).

    Returns a callable mapping raw flat phases onto what the hardware
    will actually actuate, via :meth:`SurfacePanel.feasible`.
    """
    from ..core.configuration import SurfaceConfiguration

    def project(phases: np.ndarray) -> np.ndarray:
        config = SurfaceConfiguration(
            phases=np.asarray(phases, dtype=float).reshape(panel.shape)
        )
        return panel.feasible(config).flat_phases()

    return project
