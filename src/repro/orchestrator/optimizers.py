"""Configuration optimizers for the surface orchestrator (§3.2).

The paper's optimizer "uses gradient descent, while other algorithms can
be easily supported" — here are four interchangeable ones behind a
common interface: Adam and vanilla gradient descent (analytic
gradients), random search, and simulated annealing (value-only).

Hardware constraints (phase quantization, coarse granularity) are
expressed as an optional *projection* applied to the final answer and,
for projected-descent variants, at every step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.errors import OptimizationError
from .objectives import Objective

#: Maps a raw phase vector onto the hardware's feasible set.
Projection = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run.

    Attributes:
        phases: best feasible phase vector found.
        loss: objective value at ``phases`` (after projection).
        history: loss trajectory; ``history[0]`` is the initial
            incumbent, one entry per iteration/step after that.
        iterations: iterations actually executed (the initial incumbent
            evaluation is *not* an iteration).
        converged: whether the tolerance stop fired before the budget.
        evaluations: total objective evaluations spent, including the
            initial incumbent and the final projected evaluation.
        budget: the iteration/step limit this run was allowed (the
            optimizer's own full budget unless the caller passed a
            smaller adaptive one; 0 for optimizers with no such limit).
        early_stopped: whether the relative-improvement early stop
            fired before the budget ran out.
    """

    phases: np.ndarray
    loss: float
    history: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    evaluations: int = 0
    budget: int = 0
    early_stopped: bool = False


class _EarlyStop:
    """Relative-improvement convergence tracker for value-only search.

    Stops once the best loss improves by less than
    ``eps * max(|previous best|, tiny)`` for ``patience`` consecutive
    checks.  ``eps=None`` disables tracking entirely (never stops).
    The decision depends only on the loss stream, never on wall clock,
    so it is deterministic across repeats, workers, and eval backends.
    """

    __slots__ = ("eps", "patience", "stall", "stopped")

    #: Floor on the relative-improvement denominator near zero loss.
    SCALE_FLOOR = 1e-12

    def __init__(self, eps: Optional[float], patience: int):
        self.eps = eps
        self.patience = max(1, int(patience))
        self.stall = 0
        self.stopped = False

    def update(self, previous_best: float, best: float) -> bool:
        """Record one check; returns True once stopped."""
        if self.eps is None or self.stopped:
            return self.stopped
        scale = max(abs(previous_best), self.SCALE_FLOOR)
        if (previous_best - best) >= self.eps * scale:
            self.stall = 0
        else:
            self.stall += 1
            if self.stall >= self.patience:
                self.stopped = True
        return self.stopped


class Optimizer:
    """Interface: minimize an objective from an initial phase vector."""

    #: Optional telemetry sink; set via :meth:`bind_telemetry`.
    telemetry = None
    #: Optional batch evaluator; set via :meth:`bind_evaluator`.
    evaluator = None

    def optimize(
        self,
        objective: Objective,
        initial_phases: np.ndarray,
        projection: Optional[Projection] = None,
        budget: Optional[int] = None,
    ) -> OptimizationResult:
        """Run the optimizer; always returns a projected, evaluated result.

        ``budget`` caps the iteration/step count below the optimizer's
        own limit (``None`` = full budget).  Budgets never raise the
        limit, only lower it.
        """
        raise NotImplementedError

    @property
    def full_budget(self) -> Optional[int]:
        """The optimizer's own iteration/step limit (None = unbounded)."""
        for attr in ("max_iterations", "steps"):
            value = getattr(self, attr, None)
            if value is not None:
                return int(value)
        return None

    def _limit(self, budget: Optional[int]) -> Optional[int]:
        """The effective iteration limit for one run under ``budget``."""
        full = self.full_budget
        if budget is None:
            return full
        if full is None:
            return max(0, int(budget))
        return max(0, min(int(budget), full))

    @staticmethod
    def _check_budgets(
        budgets: Optional[List[Optional[int]]], count: int
    ) -> List[Optional[int]]:
        if budgets is None:
            return [None] * count
        if len(budgets) != count:
            raise OptimizationError(
                f"{count} objectives but {len(budgets)} budgets"
            )
        return list(budgets)

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry instance for objective-evaluation counters."""
        self.telemetry = telemetry

    def bind_evaluator(self, evaluator) -> None:
        """Attach a batch evaluator (e.g. the pipeline's worker pool).

        When bound, value-only optimizers route their candidate batches
        through ``evaluator.value_many(objective, batch)`` instead of
        calling :meth:`Objective.value_many` directly.  The evaluator
        must be bit-identical to the direct call (see
        :class:`repro.pipeline.workers.BatchEvaluator`), so binding one
        never changes results — only where the NumPy work runs.
        """
        self.evaluator = evaluator

    def unbind_evaluator(self) -> None:
        """Detach the bound evaluator (candidate batches go direct again).

        Owners of an evaluator's lifecycle (the request pipeline) call
        this *before* closing it, so the optimizer never holds a closed
        — or worse, silently resurrectable — worker pool.
        """
        self.evaluator = None

    def optimize_many(
        self,
        objectives: List[Objective],
        initial_phases: List[np.ndarray],
        projection: Optional[Projection] = None,
        budgets: Optional[List[Optional[int]]] = None,
    ) -> List[OptimizationResult]:
        """Optimize several independent tasks over one phase space.

        Each (objective, initial) pair is an independent solve; results
        come back in input order and every trajectory is bit-identical
        to calling :meth:`optimize` per pair.  ``budgets`` optionally
        caps each task's iterations (one entry per task, ``None`` =
        full budget).  The base implementation *is* that serial loop;
        value-only optimizers override it with a lockstep driver that
        stacks the per-task candidate batches into one cross-task
        evaluation per iteration
        (:class:`~repro.orchestrator.objectives.StackedObjective`).
        """
        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        budgets = self._check_budgets(budgets, len(objectives))
        return [
            self.optimize(objective, initial, projection, budget=budget)
            for objective, initial, budget in zip(
                objectives, initial_phases, budgets
            )
        ]

    def _value_many(self, objective: Objective, batch: np.ndarray) -> np.ndarray:
        """Evaluate a candidate batch, via the bound evaluator if any."""
        if self.evaluator is not None:
            return np.asarray(self.evaluator.value_many(objective, batch))
        return np.asarray(objective.value_many(batch))

    def _value_many_segments(self, stacked, batches):
        """Evaluate per-task candidate batches, stacking across tasks.

        ``stacked`` is a :class:`StackedObjective`; ``batches`` holds
        one ``(P_t, E)`` batch per part (``None`` skips a task).  Routes
        through the bound evaluator's ``value_many_segments`` when it
        has one (same chunk grid per task as ``value_many``, so results
        match the serial per-task loop bit for bit); degrades to
        per-task evaluation against evaluators that predate the hook.
        """
        if self.evaluator is not None:
            segments = getattr(self.evaluator, "value_many_segments", None)
            if segments is not None:
                return segments(stacked, batches)
            return [
                None
                if batch is None
                else np.asarray(self.evaluator.value_many(part, batch))
                for part, batch in zip(stacked.parts, batches)
            ]
        return stacked.value_many_segments(batches)

    def _count_evals(self, count: int) -> None:
        if self.telemetry is not None and count:
            self.telemetry.counter("optimizer.objective_evaluations", count)

    def _finalize(
        self,
        objective: Objective,
        phases: np.ndarray,
        history: List[float],
        iterations: int,
        converged: bool,
        projection: Optional[Projection],
        evaluations: int = 0,
        budget: int = 0,
        early_stopped: bool = False,
    ) -> OptimizationResult:
        if projection is not None:
            phases = projection(phases)
        loss = objective.value(phases)
        self._count_evals(1)
        return OptimizationResult(
            phases=phases,
            loss=loss,
            history=history,
            iterations=iterations,
            converged=converged,
            evaluations=evaluations + 1,
            budget=budget,
            early_stopped=early_stopped,
        )


@dataclass
class GradientDescent(Optimizer):
    """Plain gradient descent with optional momentum.

    Attributes:
        learning_rate: step size on the phase vector.
        momentum: classical momentum coefficient (0 disables).
        max_iterations: iteration budget.
        tolerance: stop when the loss improves less than this.
        project_each_step: apply the projection inside the loop
            (projected gradient descent) instead of only at the end.
    """

    learning_rate: float = 0.3
    momentum: float = 0.0
    max_iterations: int = 150
    tolerance: float = 1e-7
    project_each_step: bool = False

    def optimize(self, objective, initial_phases, projection=None, budget=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        velocity = np.zeros_like(phases)
        history: List[float] = []
        converged = False
        limit = self._limit(budget)
        for iteration in range(limit):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if len(history) > 1 and abs(history[-2] - loss) < self.tolerance:
                converged = True
                break
            velocity = self.momentum * velocity - self.learning_rate * grad
            phases = phases + velocity
            if self.project_each_step and projection is not None:
                phases = projection(phases)
        self._count_evals(len(history))
        return self._finalize(
            objective, phases, history, len(history), converged, projection,
            evaluations=len(history), budget=limit,
        )


@dataclass
class Adam(Optimizer):
    """Adam: the default optimizer for every experiment in this repo."""

    learning_rate: float = 0.15
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    max_iterations: int = 200
    tolerance: float = 1e-7

    def optimize(self, objective, initial_phases, projection=None, budget=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        m = np.zeros_like(phases)
        v = np.zeros_like(phases)
        history: List[float] = []
        best_phases, best_loss = phases.copy(), math.inf
        converged = False
        limit = self._limit(budget)
        for iteration in range(1, limit + 1):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if loss < best_loss:
                best_loss, best_phases = loss, phases.copy()
            if len(history) > 5 and abs(history[-5] - loss) < self.tolerance:
                converged = True
                break
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1 ** iteration)
            v_hat = v / (1.0 - self.beta2 ** iteration)
            phases = phases - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
        self._count_evals(len(history))
        return self._finalize(
            objective, best_phases, history, len(history), converged, projection,
            evaluations=len(history), budget=limit,
        )


@dataclass
class RandomSearch(Optimizer):
    """Gaussian perturbation search (no gradients).

    Keeps the incumbent and samples ``population`` perturbations per
    iteration — evaluated as one batch through
    :meth:`Objective.value_many` — with a step scale that decays on
    failure to improve.
    """

    population: int = 16
    initial_scale: float = 1.0
    decay: float = 0.9
    max_iterations: int = 60
    seed: int = 0
    #: Solve multiple tasks in lockstep, stacking each iteration's
    #: candidate batches into one cross-task evaluation.  Bit-identical
    #: to the serial per-task loop (independent RNG streams, same
    #: per-task chunk grids); disable to force the serial loop.
    lockstep: bool = True
    #: Relative-improvement early stop: quit once the best loss improves
    #: by less than ``early_stop_eps * |best|`` for
    #: ``early_stop_patience`` consecutive iterations.  ``None``
    #: disables the stop — bit-identical to the fixed-budget loop.
    early_stop_eps: Optional[float] = None
    early_stop_patience: int = 3

    def optimize_many(self, objectives, initial_phases, projection=None,
                      budgets=None):
        from .objectives import StackedObjective

        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        budgets = self._check_budgets(budgets, len(objectives))
        if not self.lockstep or len(objectives) < 2:
            return super().optimize_many(
                objectives, initial_phases, projection, budgets
            )
        stacked = StackedObjective(objectives)
        tasks = len(objectives)
        # One RNG per task, all seeded exactly as the serial loop seeds
        # its fresh per-call generator — each task replays the serial
        # draw sequence because no other task touches its stream.
        rngs = [np.random.default_rng(self.seed) for _ in range(tasks)]
        phases = [
            np.asarray(p, dtype=float).reshape(-1).copy()
            for p in initial_phases
        ]
        best_losses = [
            float(objective.value(p))
            for objective, p in zip(objectives, phases)
        ]
        self._count_evals(tasks)
        evaluations = [1] * tasks
        histories = [[loss] for loss in best_losses]
        scales = [self.initial_scale] * tasks
        limits = [self._limit(b) for b in budgets]
        stops = [
            _EarlyStop(self.early_stop_eps, self.early_stop_patience)
            for _ in range(tasks)
        ]
        done = [0] * tasks
        # Budgets and early stops retire tasks at different iterations;
        # finished tasks drop out of the stacked batch (a None segment)
        # while live tasks keep replaying their serial RNG streams —
        # a stopped task simply never draws again, so the survivors'
        # trajectories stay bit-identical to the serial per-task loop.
        while True:
            active = [
                t for t in range(tasks)
                if done[t] < limits[t] and not stops[t].stopped
            ]
            if not active:
                break
            candidates: List[Optional[np.ndarray]] = [None] * tasks
            for t in active:
                offsets = rngs[t].normal(
                    scale=scales[t], size=(self.population, phases[t].size)
                )
                candidates[t] = phases[t][None, :] + offsets
            losses_per_task = self._value_many_segments(stacked, candidates)
            self._count_evals(self.population * len(active))
            for t in active:
                losses = np.asarray(losses_per_task[t])
                evaluations[t] += self.population
                previous = best_losses[t]
                j = int(np.argmin(losses))
                if losses[j] < best_losses[t]:
                    best_losses[t] = float(losses[j])
                    phases[t] = candidates[t][j].copy()
                else:
                    scales[t] *= self.decay
                histories[t].append(best_losses[t])
                done[t] += 1
                stops[t].update(previous, best_losses[t])
        return [
            self._finalize(
                objectives[t], phases[t], histories[t],
                len(histories[t]) - 1, False, projection,
                evaluations=evaluations[t], budget=limits[t],
                early_stopped=stops[t].stopped,
            )
            for t in range(tasks)
        ]

    def optimize(self, objective, initial_phases, projection=None, budget=None):
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        best_loss = float(objective.value(phases))
        self._count_evals(1)
        evaluations = 1
        history = [best_loss]
        scale = self.initial_scale
        limit = self._limit(budget)
        stop = _EarlyStop(self.early_stop_eps, self.early_stop_patience)
        for _ in range(limit):
            offsets = rng.normal(scale=scale, size=(self.population, phases.size))
            candidates = phases[None, :] + offsets
            losses = self._value_many(objective, candidates)
            self._count_evals(self.population)
            evaluations += self.population
            previous = best_loss
            j = int(np.argmin(losses))
            if losses[j] < best_loss:
                best_loss, phases = float(losses[j]), candidates[j].copy()
            else:
                scale *= self.decay
            history.append(best_loss)
            if stop.update(previous, best_loss):
                break
        return self._finalize(
            objective, phases, history, len(history) - 1, False, projection,
            evaluations=evaluations, budget=limit,
            early_stopped=stop.stopped,
        )


@dataclass
class SimulatedAnnealing(Optimizer):
    """Metropolis annealing over per-element phase flips.

    Proposals perturb a random subset of phases; acceptance follows the
    Metropolis rule under a geometric temperature schedule.  Useful for
    heavily quantized hardware where gradients are uninformative.

    Proposals are evaluated speculatively in blocks of ``speculation``
    through :meth:`Objective.value_many`: all candidates in a block are
    drawn from the current state, scanned in order, and the tail of the
    block is discarded as stale once a proposal is accepted.  The
    Metropolis acceptance law is unchanged; only the RNG trajectory
    differs from a strictly sequential scan.
    """

    initial_temperature: float = 1.0
    cooling: float = 0.97
    steps: int = 600
    subset_fraction: float = 0.1
    proposal_scale: float = 1.5
    speculation: int = 8
    seed: int = 0
    #: Solve multiple tasks in lockstep (see :class:`RandomSearch`).
    #: Tasks accept/anneal at different rates, so later rounds evaluate
    #: only the still-active subset; trajectories stay bit-identical to
    #: the serial per-task loop.
    lockstep: bool = True
    #: Relative-improvement early stop, checked once per speculative
    #: *block* (patience counts blocks, not steps): a whole block —
    #: proposals, normals, and acceptance uniforms — is drawn before
    #: evaluation, so stopping at block granularity keeps the RNG
    #: trajectory bit-identical between the serial and lockstep
    #: drivers.  ``None`` disables.
    early_stop_eps: Optional[float] = None
    early_stop_patience: int = 3

    def optimize_many(self, objectives, initial_phases, projection=None,
                      budgets=None):
        from .objectives import StackedObjective

        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        budgets = self._check_budgets(budgets, len(objectives))
        if not self.lockstep or len(objectives) < 2:
            return super().optimize_many(
                objectives, initial_phases, projection, budgets
            )
        if not 0.0 < self.subset_fraction <= 1.0:
            raise OptimizationError("subset_fraction must lie in (0, 1]")
        if self.speculation < 1:
            raise OptimizationError("speculation must be at least 1")
        stacked = StackedObjective(objectives)
        tasks = len(objectives)
        rngs = [np.random.default_rng(self.seed) for _ in range(tasks)]
        phases = [
            np.asarray(p, dtype=float).reshape(-1).copy()
            for p in initial_phases
        ]
        current = [
            float(objective.value(p))
            for objective, p in zip(objectives, phases)
        ]
        self._count_evals(tasks)
        evaluations = [1] * tasks
        best_phases = [p.copy() for p in phases]
        best_losses = list(current)
        histories = [[loss] for loss in current]
        temperatures = [self.initial_temperature] * tasks
        subsets = [
            max(1, int(round(self.subset_fraction * p.size))) for p in phases
        ]
        steps_done = [0] * tasks
        limits = [self._limit(b) for b in budgets]
        stops = [
            _EarlyStop(self.early_stop_eps, self.early_stop_patience)
            for _ in range(tasks)
        ]
        # Accepted proposals cut a speculative block short, so tasks
        # drift apart in step count; each round stacks the blocks of
        # whichever tasks still have budget and haven't early-stopped.
        while True:
            active = [
                t for t in range(tasks)
                if steps_done[t] < limits[t] and not stops[t].stopped
            ]
            if not active:
                break
            candidates: List[Optional[np.ndarray]] = [None] * tasks
            uniforms = [None] * tasks
            for t in active:
                block = min(self.speculation, limits[t] - steps_done[t])
                rows = np.tile(phases[t], (block, 1))
                for j in range(block):
                    idx = rngs[t].choice(
                        phases[t].size, size=subsets[t], replace=False
                    )
                    rows[j, idx] += rngs[t].normal(
                        scale=self.proposal_scale, size=subsets[t]
                    )
                candidates[t] = rows
                uniforms[t] = rngs[t].random(block)
            losses_per_task = self._value_many_segments(stacked, candidates)
            self._count_evals(sum(len(candidates[t]) for t in active))
            for t in active:
                block = len(candidates[t])
                evaluations[t] += block
                losses = np.asarray(losses_per_task[t])
                previous = best_losses[t]
                for j in range(block):
                    loss = float(losses[j])
                    accept = loss < current[t] or uniforms[t][j] < math.exp(
                        -(loss - current[t]) / max(temperatures[t], 1e-12)
                    )
                    if accept:
                        phases[t] = candidates[t][j].copy()
                        current[t] = loss
                        if loss < best_losses[t]:
                            best_phases[t] = phases[t].copy()
                            best_losses[t] = loss
                    histories[t].append(current[t])
                    steps_done[t] += 1
                    temperatures[t] *= self.cooling
                    if accept:
                        break
                stops[t].update(previous, best_losses[t])
        return [
            self._finalize(
                objectives[t], best_phases[t], histories[t],
                steps_done[t], False, projection,
                evaluations=evaluations[t], budget=limits[t],
                early_stopped=stops[t].stopped,
            )
            for t in range(tasks)
        ]

    def optimize(self, objective, initial_phases, projection=None, budget=None):
        if not 0.0 < self.subset_fraction <= 1.0:
            raise OptimizationError("subset_fraction must lie in (0, 1]")
        if self.speculation < 1:
            raise OptimizationError("speculation must be at least 1")
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        current = float(objective.value(phases))
        self._count_evals(1)
        evaluations = 1
        best_phases, best_loss = phases.copy(), current
        history = [current]
        temperature = self.initial_temperature
        subset = max(1, int(round(self.subset_fraction * phases.size)))
        steps_done = 0
        limit = self._limit(budget)
        stop = _EarlyStop(self.early_stop_eps, self.early_stop_patience)
        while steps_done < limit and not stop.stopped:
            block = min(self.speculation, limit - steps_done)
            candidates = np.tile(phases, (block, 1))
            for j in range(block):
                idx = rng.choice(phases.size, size=subset, replace=False)
                candidates[j, idx] += rng.normal(
                    scale=self.proposal_scale, size=subset
                )
            uniforms = rng.random(block)
            losses = self._value_many(objective, candidates)
            self._count_evals(block)
            evaluations += block
            previous = best_loss
            for j in range(block):
                loss = float(losses[j])
                accept = loss < current or uniforms[j] < math.exp(
                    -(loss - current) / max(temperature, 1e-12)
                )
                if accept:
                    phases, current = candidates[j].copy(), loss
                    if loss < best_loss:
                        best_phases, best_loss = phases.copy(), loss
                history.append(current)
                steps_done += 1
                temperature *= self.cooling
                if accept:
                    break
            stop.update(previous, best_loss)
        return self._finalize(
            objective, best_phases, history, steps_done, False, projection,
            evaluations=evaluations, budget=limit,
            early_stopped=stop.stopped,
        )


def panel_projection(panel) -> Projection:
    """The projection implied by a panel's spec (granularity + bits).

    Returns a callable mapping raw flat phases onto what the hardware
    will actually actuate, via :meth:`SurfacePanel.feasible`.
    """
    from ..core.configuration import SurfaceConfiguration

    def project(phases: np.ndarray) -> np.ndarray:
        config = SurfaceConfiguration(
            phases=np.asarray(phases, dtype=float).reshape(panel.shape)
        )
        return panel.feasible(config).flat_phases()

    return project
