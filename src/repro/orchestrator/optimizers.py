"""Configuration optimizers for the surface orchestrator (§3.2).

The paper's optimizer "uses gradient descent, while other algorithms can
be easily supported" — here are four interchangeable ones behind a
common interface: Adam and vanilla gradient descent (analytic
gradients), random search, and simulated annealing (value-only).

Hardware constraints (phase quantization, coarse granularity) are
expressed as an optional *projection* applied to the final answer and,
for projected-descent variants, at every step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.errors import OptimizationError
from .objectives import Objective

#: Maps a raw phase vector onto the hardware's feasible set.
Projection = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run.

    Attributes:
        phases: best feasible phase vector found.
        loss: objective value at ``phases`` (after projection).
        history: loss trajectory; ``history[0]`` is the initial
            incumbent, one entry per iteration/step after that.
        iterations: iterations actually executed (the initial incumbent
            evaluation is *not* an iteration).
        converged: whether the tolerance stop fired before the budget.
        evaluations: total objective evaluations spent, including the
            initial incumbent and the final projected evaluation.
    """

    phases: np.ndarray
    loss: float
    history: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    evaluations: int = 0


class Optimizer:
    """Interface: minimize an objective from an initial phase vector."""

    #: Optional telemetry sink; set via :meth:`bind_telemetry`.
    telemetry = None
    #: Optional batch evaluator; set via :meth:`bind_evaluator`.
    evaluator = None

    def optimize(
        self,
        objective: Objective,
        initial_phases: np.ndarray,
        projection: Optional[Projection] = None,
    ) -> OptimizationResult:
        """Run the optimizer; always returns a projected, evaluated result."""
        raise NotImplementedError

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry instance for objective-evaluation counters."""
        self.telemetry = telemetry

    def bind_evaluator(self, evaluator) -> None:
        """Attach a batch evaluator (e.g. the pipeline's worker pool).

        When bound, value-only optimizers route their candidate batches
        through ``evaluator.value_many(objective, batch)`` instead of
        calling :meth:`Objective.value_many` directly.  The evaluator
        must be bit-identical to the direct call (see
        :class:`repro.pipeline.workers.BatchEvaluator`), so binding one
        never changes results — only where the NumPy work runs.
        """
        self.evaluator = evaluator

    def unbind_evaluator(self) -> None:
        """Detach the bound evaluator (candidate batches go direct again).

        Owners of an evaluator's lifecycle (the request pipeline) call
        this *before* closing it, so the optimizer never holds a closed
        — or worse, silently resurrectable — worker pool.
        """
        self.evaluator = None

    def optimize_many(
        self,
        objectives: List[Objective],
        initial_phases: List[np.ndarray],
        projection: Optional[Projection] = None,
    ) -> List[OptimizationResult]:
        """Optimize several independent tasks over one phase space.

        Each (objective, initial) pair is an independent solve; results
        come back in input order and every trajectory is bit-identical
        to calling :meth:`optimize` per pair.  The base implementation
        *is* that serial loop; value-only optimizers override it with a
        lockstep driver that stacks the per-task candidate batches into
        one cross-task evaluation per iteration
        (:class:`~repro.orchestrator.objectives.StackedObjective`).
        """
        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        return [
            self.optimize(objective, initial, projection)
            for objective, initial in zip(objectives, initial_phases)
        ]

    def _value_many(self, objective: Objective, batch: np.ndarray) -> np.ndarray:
        """Evaluate a candidate batch, via the bound evaluator if any."""
        if self.evaluator is not None:
            return np.asarray(self.evaluator.value_many(objective, batch))
        return np.asarray(objective.value_many(batch))

    def _value_many_segments(self, stacked, batches):
        """Evaluate per-task candidate batches, stacking across tasks.

        ``stacked`` is a :class:`StackedObjective`; ``batches`` holds
        one ``(P_t, E)`` batch per part (``None`` skips a task).  Routes
        through the bound evaluator's ``value_many_segments`` when it
        has one (same chunk grid per task as ``value_many``, so results
        match the serial per-task loop bit for bit); degrades to
        per-task evaluation against evaluators that predate the hook.
        """
        if self.evaluator is not None:
            segments = getattr(self.evaluator, "value_many_segments", None)
            if segments is not None:
                return segments(stacked, batches)
            return [
                None
                if batch is None
                else np.asarray(self.evaluator.value_many(part, batch))
                for part, batch in zip(stacked.parts, batches)
            ]
        return stacked.value_many_segments(batches)

    def _count_evals(self, count: int) -> None:
        if self.telemetry is not None and count:
            self.telemetry.counter("optimizer.objective_evaluations", count)

    def _finalize(
        self,
        objective: Objective,
        phases: np.ndarray,
        history: List[float],
        iterations: int,
        converged: bool,
        projection: Optional[Projection],
        evaluations: int = 0,
    ) -> OptimizationResult:
        if projection is not None:
            phases = projection(phases)
        loss = objective.value(phases)
        self._count_evals(1)
        return OptimizationResult(
            phases=phases,
            loss=loss,
            history=history,
            iterations=iterations,
            converged=converged,
            evaluations=evaluations + 1,
        )


@dataclass
class GradientDescent(Optimizer):
    """Plain gradient descent with optional momentum.

    Attributes:
        learning_rate: step size on the phase vector.
        momentum: classical momentum coefficient (0 disables).
        max_iterations: iteration budget.
        tolerance: stop when the loss improves less than this.
        project_each_step: apply the projection inside the loop
            (projected gradient descent) instead of only at the end.
    """

    learning_rate: float = 0.3
    momentum: float = 0.0
    max_iterations: int = 150
    tolerance: float = 1e-7
    project_each_step: bool = False

    def optimize(self, objective, initial_phases, projection=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        velocity = np.zeros_like(phases)
        history: List[float] = []
        converged = False
        for iteration in range(self.max_iterations):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if len(history) > 1 and abs(history[-2] - loss) < self.tolerance:
                converged = True
                break
            velocity = self.momentum * velocity - self.learning_rate * grad
            phases = phases + velocity
            if self.project_each_step and projection is not None:
                phases = projection(phases)
        self._count_evals(len(history))
        return self._finalize(
            objective, phases, history, len(history), converged, projection,
            evaluations=len(history),
        )


@dataclass
class Adam(Optimizer):
    """Adam: the default optimizer for every experiment in this repo."""

    learning_rate: float = 0.15
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    max_iterations: int = 200
    tolerance: float = 1e-7

    def optimize(self, objective, initial_phases, projection=None):
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        m = np.zeros_like(phases)
        v = np.zeros_like(phases)
        history: List[float] = []
        best_phases, best_loss = phases.copy(), math.inf
        converged = False
        for iteration in range(1, self.max_iterations + 1):
            loss, grad = objective.value_and_gradient(phases)
            history.append(loss)
            if loss < best_loss:
                best_loss, best_phases = loss, phases.copy()
            if len(history) > 5 and abs(history[-5] - loss) < self.tolerance:
                converged = True
                break
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1 ** iteration)
            v_hat = v / (1.0 - self.beta2 ** iteration)
            phases = phases - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
        self._count_evals(len(history))
        return self._finalize(
            objective, best_phases, history, len(history), converged, projection,
            evaluations=len(history),
        )


@dataclass
class RandomSearch(Optimizer):
    """Gaussian perturbation search (no gradients).

    Keeps the incumbent and samples ``population`` perturbations per
    iteration — evaluated as one batch through
    :meth:`Objective.value_many` — with a step scale that decays on
    failure to improve.
    """

    population: int = 16
    initial_scale: float = 1.0
    decay: float = 0.9
    max_iterations: int = 60
    seed: int = 0
    #: Solve multiple tasks in lockstep, stacking each iteration's
    #: candidate batches into one cross-task evaluation.  Bit-identical
    #: to the serial per-task loop (independent RNG streams, same
    #: per-task chunk grids); disable to force the serial loop.
    lockstep: bool = True

    def optimize_many(self, objectives, initial_phases, projection=None):
        from .objectives import StackedObjective

        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        if not self.lockstep or len(objectives) < 2:
            return super().optimize_many(objectives, initial_phases, projection)
        stacked = StackedObjective(objectives)
        tasks = len(objectives)
        # One RNG per task, all seeded exactly as the serial loop seeds
        # its fresh per-call generator — each task replays the serial
        # draw sequence because no other task touches its stream.
        rngs = [np.random.default_rng(self.seed) for _ in range(tasks)]
        phases = [
            np.asarray(p, dtype=float).reshape(-1).copy()
            for p in initial_phases
        ]
        best_losses = [
            float(objective.value(p))
            for objective, p in zip(objectives, phases)
        ]
        self._count_evals(tasks)
        evaluations = [1] * tasks
        histories = [[loss] for loss in best_losses]
        scales = [self.initial_scale] * tasks
        for _ in range(self.max_iterations):
            candidates = []
            for t in range(tasks):
                offsets = rngs[t].normal(
                    scale=scales[t], size=(self.population, phases[t].size)
                )
                candidates.append(phases[t][None, :] + offsets)
            losses_per_task = self._value_many_segments(stacked, candidates)
            self._count_evals(self.population * tasks)
            for t in range(tasks):
                losses = np.asarray(losses_per_task[t])
                evaluations[t] += self.population
                j = int(np.argmin(losses))
                if losses[j] < best_losses[t]:
                    best_losses[t] = float(losses[j])
                    phases[t] = candidates[t][j].copy()
                else:
                    scales[t] *= self.decay
                histories[t].append(best_losses[t])
        return [
            self._finalize(
                objectives[t], phases[t], histories[t],
                len(histories[t]) - 1, False, projection,
                evaluations=evaluations[t],
            )
            for t in range(tasks)
        ]

    def optimize(self, objective, initial_phases, projection=None):
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        best_loss = float(objective.value(phases))
        self._count_evals(1)
        evaluations = 1
        history = [best_loss]
        scale = self.initial_scale
        for _ in range(self.max_iterations):
            offsets = rng.normal(scale=scale, size=(self.population, phases.size))
            candidates = phases[None, :] + offsets
            losses = self._value_many(objective, candidates)
            self._count_evals(self.population)
            evaluations += self.population
            j = int(np.argmin(losses))
            if losses[j] < best_loss:
                best_loss, phases = float(losses[j]), candidates[j].copy()
            else:
                scale *= self.decay
            history.append(best_loss)
        return self._finalize(
            objective, phases, history, len(history) - 1, False, projection,
            evaluations=evaluations,
        )


@dataclass
class SimulatedAnnealing(Optimizer):
    """Metropolis annealing over per-element phase flips.

    Proposals perturb a random subset of phases; acceptance follows the
    Metropolis rule under a geometric temperature schedule.  Useful for
    heavily quantized hardware where gradients are uninformative.

    Proposals are evaluated speculatively in blocks of ``speculation``
    through :meth:`Objective.value_many`: all candidates in a block are
    drawn from the current state, scanned in order, and the tail of the
    block is discarded as stale once a proposal is accepted.  The
    Metropolis acceptance law is unchanged; only the RNG trajectory
    differs from a strictly sequential scan.
    """

    initial_temperature: float = 1.0
    cooling: float = 0.97
    steps: int = 600
    subset_fraction: float = 0.1
    proposal_scale: float = 1.5
    speculation: int = 8
    seed: int = 0
    #: Solve multiple tasks in lockstep (see :class:`RandomSearch`).
    #: Tasks accept/anneal at different rates, so later rounds evaluate
    #: only the still-active subset; trajectories stay bit-identical to
    #: the serial per-task loop.
    lockstep: bool = True

    def optimize_many(self, objectives, initial_phases, projection=None):
        from .objectives import StackedObjective

        if len(objectives) != len(initial_phases):
            raise OptimizationError(
                f"{len(objectives)} objectives but "
                f"{len(initial_phases)} initial phase vectors"
            )
        if not self.lockstep or len(objectives) < 2:
            return super().optimize_many(objectives, initial_phases, projection)
        if not 0.0 < self.subset_fraction <= 1.0:
            raise OptimizationError("subset_fraction must lie in (0, 1]")
        if self.speculation < 1:
            raise OptimizationError("speculation must be at least 1")
        stacked = StackedObjective(objectives)
        tasks = len(objectives)
        rngs = [np.random.default_rng(self.seed) for _ in range(tasks)]
        phases = [
            np.asarray(p, dtype=float).reshape(-1).copy()
            for p in initial_phases
        ]
        current = [
            float(objective.value(p))
            for objective, p in zip(objectives, phases)
        ]
        self._count_evals(tasks)
        evaluations = [1] * tasks
        best_phases = [p.copy() for p in phases]
        best_losses = list(current)
        histories = [[loss] for loss in current]
        temperatures = [self.initial_temperature] * tasks
        subsets = [
            max(1, int(round(self.subset_fraction * p.size))) for p in phases
        ]
        steps_done = [0] * tasks
        # Accepted proposals cut a speculative block short, so tasks
        # drift apart in step count; each round stacks the blocks of
        # whichever tasks still have budget.
        while True:
            active = [t for t in range(tasks) if steps_done[t] < self.steps]
            if not active:
                break
            candidates: List[Optional[np.ndarray]] = [None] * tasks
            uniforms = [None] * tasks
            for t in active:
                block = min(self.speculation, self.steps - steps_done[t])
                rows = np.tile(phases[t], (block, 1))
                for j in range(block):
                    idx = rngs[t].choice(
                        phases[t].size, size=subsets[t], replace=False
                    )
                    rows[j, idx] += rngs[t].normal(
                        scale=self.proposal_scale, size=subsets[t]
                    )
                candidates[t] = rows
                uniforms[t] = rngs[t].random(block)
            losses_per_task = self._value_many_segments(stacked, candidates)
            self._count_evals(sum(len(candidates[t]) for t in active))
            for t in active:
                block = len(candidates[t])
                evaluations[t] += block
                losses = np.asarray(losses_per_task[t])
                for j in range(block):
                    loss = float(losses[j])
                    accept = loss < current[t] or uniforms[t][j] < math.exp(
                        -(loss - current[t]) / max(temperatures[t], 1e-12)
                    )
                    if accept:
                        phases[t] = candidates[t][j].copy()
                        current[t] = loss
                        if loss < best_losses[t]:
                            best_phases[t] = phases[t].copy()
                            best_losses[t] = loss
                    histories[t].append(current[t])
                    steps_done[t] += 1
                    temperatures[t] *= self.cooling
                    if accept:
                        break
        return [
            self._finalize(
                objectives[t], best_phases[t], histories[t],
                steps_done[t], False, projection,
                evaluations=evaluations[t],
            )
            for t in range(tasks)
        ]

    def optimize(self, objective, initial_phases, projection=None):
        if not 0.0 < self.subset_fraction <= 1.0:
            raise OptimizationError("subset_fraction must lie in (0, 1]")
        if self.speculation < 1:
            raise OptimizationError("speculation must be at least 1")
        rng = np.random.default_rng(self.seed)
        phases = np.asarray(initial_phases, dtype=float).reshape(-1).copy()
        current = float(objective.value(phases))
        self._count_evals(1)
        evaluations = 1
        best_phases, best_loss = phases.copy(), current
        history = [current]
        temperature = self.initial_temperature
        subset = max(1, int(round(self.subset_fraction * phases.size)))
        steps_done = 0
        while steps_done < self.steps:
            block = min(self.speculation, self.steps - steps_done)
            candidates = np.tile(phases, (block, 1))
            for j in range(block):
                idx = rng.choice(phases.size, size=subset, replace=False)
                candidates[j, idx] += rng.normal(
                    scale=self.proposal_scale, size=subset
                )
            uniforms = rng.random(block)
            losses = self._value_many(objective, candidates)
            self._count_evals(block)
            evaluations += block
            for j in range(block):
                loss = float(losses[j])
                accept = loss < current or uniforms[j] < math.exp(
                    -(loss - current) / max(temperature, 1e-12)
                )
                if accept:
                    phases, current = candidates[j].copy(), loss
                    if loss < best_loss:
                        best_phases, best_loss = phases.copy(), loss
                history.append(current)
                steps_done += 1
                temperature *= self.cooling
                if accept:
                    break
        return self._finalize(
            objective, best_phases, history, steps_done, False, projection,
            evaluations=evaluations,
        )


def panel_projection(panel) -> Projection:
    """The projection implied by a panel's spec (granularity + bits).

    Returns a callable mapping raw flat phases onto what the hardware
    will actually actuate, via :meth:`SurfacePanel.feasible`.
    """
    from ..core.configuration import SurfaceConfiguration

    def project(phases: np.ndarray) -> np.ndarray:
        config = SurfaceConfiguration(
            phases=np.asarray(phases, dtype=float).reshape(panel.shape)
        )
        return panel.feasible(config).flat_phases()

    return project
