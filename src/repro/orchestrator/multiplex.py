"""Multiplexing strategies: how tasks share surfaces (§3.2).

Four dimensions, straight from the paper:

* **Time division** — surfaces switch between per-task configurations;
  each task gets a fraction of time on the full surface.
* **Frequency division** — tasks operate on distinct bands
  simultaneously (surfaces are frequency-selective).
* **Space division** — a large surface is spatially partitioned;
  element groups are assigned by proximity/channel strength.
* **Configuration multiplexing (joint)** — the new dimension the paper
  highlights: multiple tasks share the *same* full-surface slice, and a
  single jointly-optimized configuration serves all of them.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import SchedulingError
from ..surfaces.panel import SurfacePanel
from .slices import ResourceSlice
from .tasks import ServiceTask


class MultiplexStrategy(enum.Enum):
    """How a task's slices are carved out of the surfaces."""

    TIME = "time"
    FREQUENCY = "frequency"
    SPACE = "space"
    JOINT = "joint"


def _full_mask(panel: SurfacePanel) -> np.ndarray:
    return np.ones(panel.num_elements, dtype=bool)


def time_division_slices(
    task: ServiceTask,
    panels: Sequence[SurfacePanel],
    time_fraction: float,
) -> List[ResourceSlice]:
    """Full surface and band, a fraction of time."""
    if not panels:
        raise SchedulingError("no panels to slice")
    return [
        ResourceSlice(
            surface_id=p.panel_id,
            element_mask=_full_mask(p),
            band_hz=p.spec.band_hz,
            time_fraction=time_fraction,
        )
        for p in panels
    ]


def frequency_division_slices(
    task: ServiceTask,
    panels: Sequence[SurfacePanel],
    band_hz: Tuple[float, float],
) -> List[ResourceSlice]:
    """Full surface and time, a sub-band of the hardware's band."""
    out = []
    for p in panels:
        lo, hi = band_hz
        hw_lo, hw_hi = p.spec.band_hz
        if lo < hw_lo or hi > hw_hi:
            raise SchedulingError(
                f"band {band_hz} exceeds {p.panel_id}'s hardware band "
                f"{p.spec.band_hz}"
            )
        out.append(
            ResourceSlice(
                surface_id=p.panel_id,
                element_mask=_full_mask(p),
                band_hz=band_hz,
                time_fraction=1.0,
            )
        )
    return out


def space_division_slices(
    task: ServiceTask,
    panels: Sequence[SurfacePanel],
    target_points: np.ndarray,
    fraction: float = 0.5,
) -> List[ResourceSlice]:
    """A spatially contiguous element group per surface.

    Elements are ranked by proximity to the task's target points (the
    paper: "spatially grouped by tasks, according to proximity to ...
    targeted devices") and the nearest ``fraction`` are taken.
    """
    if not (0.0 < fraction <= 1.0):
        raise SchedulingError("fraction must lie in (0, 1]")
    targets = np.atleast_2d(np.asarray(target_points, dtype=float))
    out = []
    for p in panels:
        elems = p.element_positions()
        dists = np.min(
            np.linalg.norm(elems[:, None, :] - targets[None, :, :], axis=2),
            axis=1,
        )
        keep = max(1, int(round(fraction * elems.shape[0])))
        threshold = np.partition(dists, keep - 1)[keep - 1]
        mask = dists <= threshold
        out.append(
            ResourceSlice(
                surface_id=p.panel_id,
                element_mask=mask,
                band_hz=p.spec.band_hz,
                time_fraction=1.0,
            )
        )
    return out


def joint_slices(
    task: ServiceTask,
    panels: Sequence[SurfacePanel],
    group: str,
    time_fraction: float = 1.0,
) -> List[ResourceSlice]:
    """Full-surface shared slices for configuration multiplexing.

    Every task in ``group`` holds an identical overlapping slice; the
    orchestrator optimizes one configuration for their joint objective.
    ``time_fraction < 1`` leaves time-axis headroom so the joint group
    can coexist with time-division tasks.
    """
    if not group:
        raise SchedulingError("joint multiplexing needs a group name")
    return [
        ResourceSlice(
            surface_id=p.panel_id,
            element_mask=_full_mask(p),
            band_hz=p.spec.band_hz,
            time_fraction=time_fraction,
            shared_group=group,
        )
        for p in panels
    ]


def propose_slices(
    task: ServiceTask,
    panels: Sequence[SurfacePanel],
    strategy: MultiplexStrategy,
    *,
    time_fraction: Optional[float] = None,
    band_hz: Optional[Tuple[float, float]] = None,
    target_points: Optional[np.ndarray] = None,
    space_fraction: float = 0.5,
    shared_group: str = "",
) -> List[ResourceSlice]:
    """Dispatch to the right strategy with validated arguments.

    ``time_fraction`` defaults per strategy: 0.5 for time division
    (two-way sharing), 1.0 for the other strategies.
    """
    if strategy is MultiplexStrategy.TIME:
        return time_division_slices(
            task, panels, time_fraction if time_fraction is not None else 0.5
        )
    if strategy is MultiplexStrategy.FREQUENCY:
        if band_hz is None:
            raise SchedulingError("frequency multiplexing needs band_hz")
        return frequency_division_slices(task, panels, band_hz)
    if strategy is MultiplexStrategy.SPACE:
        if target_points is None:
            raise SchedulingError("space multiplexing needs target_points")
        return space_division_slices(
            task, panels, target_points, fraction=space_fraction
        )
    if strategy is MultiplexStrategy.JOINT:
        return joint_slices(
            task,
            panels,
            shared_group or task.service.value,
            time_fraction=time_fraction if time_fraction is not None else 1.0,
        )
    raise SchedulingError(f"unknown strategy {strategy}")
