"""Resource slices: the minimal scheduling unit (§3.2).

"The minimal resource scheduling unit assigned to a task would be a
slice of time, frequency, and space."  A :class:`ResourceSlice` is
exactly that triple on one surface: an element mask (space), a band
(frequency), and a time fraction (time).  Slices marked with a
``shared_group`` overlap deliberately — that is the paper's
configuration multiplexing, where one jointly-optimized configuration
serves several tasks at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import AdmissionError, SchedulingError


@dataclass(frozen=True)
class ResourceSlice:
    """A (space, frequency, time) slice of one surface.

    Attributes:
        surface_id: which surface.
        element_mask: boolean mask over flat element indices (space).
        band_hz: ``(low, high)`` frequency interval.
        time_fraction: share of time the slice occupies, in (0, 1].
        shared_group: non-empty for configuration-multiplexed slices;
            slices in the same group may overlap freely because one
            joint configuration serves them all.
    """

    surface_id: str
    element_mask: np.ndarray
    band_hz: Tuple[float, float]
    time_fraction: float = 1.0
    shared_group: str = ""

    def __post_init__(self) -> None:
        mask = np.asarray(self.element_mask, dtype=bool).reshape(-1)
        object.__setattr__(self, "element_mask", mask)
        if not mask.any():
            raise SchedulingError("slice must cover at least one element")
        lo, hi = self.band_hz
        if not (0 < lo <= hi):
            raise SchedulingError(f"invalid band {self.band_hz}")
        if not (0.0 < self.time_fraction <= 1.0):
            raise SchedulingError("time_fraction must lie in (0, 1]")

    @property
    def num_elements(self) -> int:
        """Elements covered by this slice."""
        return int(self.element_mask.sum())

    def bands_overlap(self, other: "ResourceSlice") -> bool:
        """Whether the frequency intervals intersect."""
        lo1, hi1 = self.band_hz
        lo2, hi2 = other.band_hz
        return lo1 < hi2 and lo2 < hi1

    def space_overlaps(self, other: "ResourceSlice") -> bool:
        """Whether the element masks intersect."""
        if self.element_mask.size != other.element_mask.size:
            return False
        return bool(np.any(self.element_mask & other.element_mask))

    def conflicts_with(self, other: "ResourceSlice") -> bool:
        """Hard conflict test between two slices on the same surface.

        Slices conflict when they collide on all three axes — same
        surface, overlapping band, overlapping elements, and combined
        time shares exceeding unity — unless they belong to the same
        shared (configuration-multiplexed) group.
        """
        if self.surface_id != other.surface_id:
            return False
        if self.shared_group and self.shared_group == other.shared_group:
            return False
        if not self.bands_overlap(other):
            return False
        if not self.space_overlaps(other):
            return False
        return self.time_fraction + other.time_fraction > 1.0 + 1e-9


class SliceAllocator:
    """Tracks slice allocations per surface and admits/releases them."""

    def __init__(self) -> None:
        self._held: Dict[str, List[Tuple[str, ResourceSlice]]] = {}

    def held_slices(self, surface_id: str) -> List[ResourceSlice]:
        """Slices currently held on a surface."""
        return [s for _, s in self._held.get(surface_id, [])]

    def holders(self, surface_id: str) -> List[str]:
        """Task ids holding slices on a surface."""
        return sorted({t for t, _ in self._held.get(surface_id, [])})

    def tasks_with_allocations(self) -> List[str]:
        """All task ids holding any slice."""
        out = set()
        for entries in self._held.values():
            out.update(t for t, _ in entries)
        return sorted(out)

    def _overcommitted(
        self, requested: ResourceSlice
    ) -> List[Tuple[str, ResourceSlice]]:
        """Held slices that, together with the request, overcommit time.

        The time axis is a shared budget, not a pairwise property:
        three 0.5-time slices on the same elements/band overcommit even
        though each pair fits.  Accumulate the time fractions of every
        held slice colliding with the request in band and space (shared
        configuration-multiplexing groups are exempt); if the total
        with the request exceeds unity, all contributors block it.
        """
        contributors = []
        total = requested.time_fraction
        for task_id, held in self._held.get(requested.surface_id, []):
            if (
                requested.shared_group
                and requested.shared_group == held.shared_group
            ):
                continue
            if requested.bands_overlap(held) and requested.space_overlaps(
                held
            ):
                total += held.time_fraction
                contributors.append((task_id, held))
        if total > 1.0 + 1e-9:
            return contributors
        return []

    def can_allocate(self, requested: ResourceSlice) -> bool:
        """Whether a slice fits within the remaining capacity."""
        return not self._overcommitted(requested)

    def conflicting_tasks(self, requested: ResourceSlice) -> List[str]:
        """Task ids whose slices block a request (for preemption)."""
        return sorted({t for t, _ in self._overcommitted(requested)})

    def allocate(self, task_id: str, slices: List[ResourceSlice]) -> None:
        """Atomically allocate a slice set or raise :class:`AdmissionError`."""
        for requested in slices:
            if not self.can_allocate(requested):
                blockers = ", ".join(self.conflicting_tasks(requested))
                raise AdmissionError(
                    f"slice on {requested.surface_id} conflicts with "
                    f"tasks: {blockers}"
                )
        # Also check the requested slices against each other.
        for i, a in enumerate(slices):
            for b in slices[i + 1 :]:
                if a.conflicts_with(b):
                    raise AdmissionError(
                        "requested slices conflict with each other"
                    )
        for s in slices:
            self._held.setdefault(s.surface_id, []).append((task_id, s))

    def release(self, task_id: str) -> int:
        """Free every slice a task holds; returns the count."""
        released = 0
        for surface_id in list(self._held):
            before = len(self._held[surface_id])
            self._held[surface_id] = [
                (t, s) for t, s in self._held[surface_id] if t != task_id
            ]
            released += before - len(self._held[surface_id])
            if not self._held[surface_id]:
                del self._held[surface_id]
        return released

    def utilization(self, surface_id: str, num_elements: int) -> float:
        """Fraction of (element × time) capacity in use on a surface."""
        if num_elements <= 0:
            raise SchedulingError("num_elements must be positive")
        used = 0.0
        for s in self.held_slices(surface_id):
            used += s.num_elements * s.time_fraction
        return min(1.0, used / num_elements)
