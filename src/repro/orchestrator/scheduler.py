"""The task scheduler: admission, priority preemption, idle reclaim.

"The scheduler should exploit task dynamics to optimize hardware
utilization, i.e., setting a task idle when not used and releasing
resources" — with "modern OS features, such as priority support ... and
task isolation" (§3.2).  Isolation here means slice-level conflict
freedom: two tasks never hold conflicting slices unless they opted into
a shared configuration-multiplexing group.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import AdmissionError, SchedulingError
from .slices import ResourceSlice, SliceAllocator
from .tasks import ServiceTask, TaskState


class Scheduler:
    """Admits tasks into slices, preempting lower priorities if needed.

    Pass a :class:`~repro.telemetry.Telemetry` instance to surface
    scheduler counters (``scheduler.reaped``, batch-admission sizes);
    without one the scheduler records nothing.
    """

    def __init__(self, telemetry=None) -> None:
        self.allocator = SliceAllocator()
        self.telemetry = telemetry
        self._tasks: Dict[str, ServiceTask] = {}
        self._slices: Dict[str, List[ResourceSlice]] = {}
        self.preemption_count = 0

    # ------------------------------------------------------------------

    def task(self, task_id: str) -> ServiceTask:
        """Look up a known task."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise SchedulingError(f"unknown task {task_id!r}") from None

    def tasks(self, *states: TaskState) -> List[ServiceTask]:
        """All tasks, optionally filtered by state, by descending priority."""
        out = [
            t
            for t in self._tasks.values()
            if not states or t.state in states
        ]
        return sorted(out, key=lambda t: (-t.priority, t.created_at, t.task_id))

    def slices_of(self, task_id: str) -> List[ResourceSlice]:
        """Slices a task currently holds."""
        return list(self._slices.get(task_id, []))

    # ------------------------------------------------------------------

    def admit(
        self,
        task: ServiceTask,
        slices: Sequence[ResourceSlice],
        allow_preemption: bool = True,
    ) -> ServiceTask:
        """Admit a task into a slice set; preempt lower priorities if needed.

        On success the task is READY and holds its slices.  On failure
        the task is FAILED and :class:`AdmissionError` is raised.
        """
        if task.task_id in self._tasks and self._tasks[task.task_id] is not task:
            raise SchedulingError(f"task id {task.task_id!r} already in use")
        self._tasks[task.task_id] = task
        slices = list(slices)
        try:
            self.allocator.allocate(task.task_id, slices)
        except AdmissionError:
            if not allow_preemption or not self._try_preempt(task, slices):
                task.transition(TaskState.FAILED, reason="no feasible slice")
                raise
            self.allocator.allocate(task.task_id, slices)
        self._slices[task.task_id] = slices
        task.transition(TaskState.READY)
        return task

    def admit_batch(
        self,
        entries: Sequence[Tuple[ServiceTask, Sequence[ResourceSlice]]],
        allow_preemption: bool = True,
    ) -> Dict[str, Optional[str]]:
        """One admission pass over several ``(task, slices)`` pairs.

        The request pipeline's batcher drains its queue and admits a
        whole tick's worth of compatible requests here instead of
        calling :meth:`admit` once per arrival.  Entries are admitted
        in descending priority order (FIFO within a priority by
        creation time), so a batch behaves exactly like the same
        requests arriving one at a time in priority order — a
        lower-priority entry can lose its slices to a higher-priority
        one in the same batch, never the other way around.

        Returns ``task_id → failure reason`` with ``None`` marking a
        successful admission; a failed entry leaves its task FAILED
        (as :meth:`admit` does) but never aborts the rest of the pass.
        """
        ordered = sorted(
            entries,
            key=lambda e: (-e[0].priority, e[0].created_at, e[0].task_id),
        )
        outcomes: Dict[str, Optional[str]] = {}
        for task, slices in ordered:
            try:
                self.admit(task, slices, allow_preemption=allow_preemption)
                outcomes[task.task_id] = None
            except AdmissionError as exc:
                outcomes[task.task_id] = str(exc)
        if self.telemetry is not None and entries:
            self.telemetry.counter("scheduler.batch_admissions")
            self.telemetry.counter("scheduler.batch_admitted_tasks", len(entries))
            failed = sum(1 for r in outcomes.values() if r is not None)
            if failed:
                self.telemetry.counter("scheduler.batch_failures", failed)
        return outcomes

    def _try_preempt(
        self, task: ServiceTask, slices: Sequence[ResourceSlice]
    ) -> bool:
        """Evict strictly-lower-priority blockers if that frees the way."""
        blockers = set()
        for requested in slices:
            blockers.update(self.allocator.conflicting_tasks(requested))
        blocker_tasks = [self._tasks[b] for b in blockers if b in self._tasks]
        if any(b.priority >= task.priority for b in blocker_tasks):
            return False
        for blocker in blocker_tasks:
            self.preempt(blocker.task_id)
        return True

    def preempt(self, task_id: str) -> None:
        """Evict a task: free its slices, mark it PREEMPTED."""
        task = self.task(task_id)
        self.allocator.release(task_id)
        self._slices.pop(task_id, None)
        task.transition(TaskState.PREEMPTED)
        self.preemption_count += 1

    def start(self, task_id: str) -> None:
        """READY → RUNNING."""
        self.task(task_id).transition(TaskState.RUNNING)

    def set_idle(self, task_id: str) -> None:
        """RUNNING → IDLE, releasing the task's slices for others."""
        task = self.task(task_id)
        task.transition(TaskState.IDLE)
        self.allocator.release(task_id)
        self._slices.pop(task_id, None)

    def resume(
        self, task_id: str, slices: Sequence[ResourceSlice]
    ) -> ServiceTask:
        """IDLE → READY with a fresh slice set."""
        task = self.task(task_id)
        if task.state is not TaskState.IDLE:
            raise SchedulingError(
                f"{task_id}: resume from {task.state.value}, expected idle"
            )
        slices = list(slices)
        self.allocator.allocate(task_id, slices)
        self._slices[task_id] = slices
        task.transition(TaskState.READY)
        return task

    def complete(self, task_id: str) -> None:
        """Finish a task and free everything it holds."""
        task = self.task(task_id)
        self.allocator.release(task_id)
        self._slices.pop(task_id, None)
        task.transition(TaskState.COMPLETED)

    def fail(self, task_id: str, reason: str) -> None:
        """Fail a task and free everything it holds."""
        task = self.task(task_id)
        self.allocator.release(task_id)
        self._slices.pop(task_id, None)
        task.transition(TaskState.FAILED, reason=reason)

    def reap_expired(self, now: float) -> List[str]:
        """Complete every admitted task whose duration elapsed.

        READY tasks are reaped too: a task that was admitted but never
        started (e.g. parked behind a coalesced reoptimization window)
        would otherwise expire with its resource slices still
        registered in the allocator, leaking capacity forever.
        Completion frees every slice the task holds.
        """
        finished = []
        for task in self.tasks(
            TaskState.READY, TaskState.RUNNING, TaskState.IDLE
        ):
            if task.expired(now):
                self.complete(task.task_id)
                finished.append(task.task_id)
        if finished and self.telemetry is not None:
            self.telemetry.counter("scheduler.reaped", len(finished))
        return finished

    def shared_groups(self) -> Dict[str, List[str]]:
        """Configuration-multiplexing groups → member task ids."""
        groups: Dict[str, List[str]] = {}
        for task_id, slices in self._slices.items():
            for s in slices:
                if s.shared_group:
                    groups.setdefault(s.shared_group, [])
                    if task_id not in groups[s.shared_group]:
                        groups[s.shared_group].append(task_id)
        return {g: sorted(ids) for g, ids in groups.items()}
