"""Block-coordinate optimization across multiple surfaces.

The cascade channel is linear in each surface's coefficients with the
others fixed, so multi-surface configuration search alternates: for
each surface, extract the :class:`LinearChannelForm` given the current
state of the rest, minimize the objective over that surface's phases,
project onto its hardware's feasible set, and move on.  A couple of
rounds suffice in practice — the cascade term is much smaller than the
single-bounce terms, so the coupling is weak.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from ..channel.model import ChannelModel, LinearChannelForm, LinearFormCache
from ..core.errors import OptimizationError
from ..surfaces.panel import SurfacePanel
from .objectives import Objective
from .optimizers import Adam, OptimizationResult, Optimizer, panel_projection

#: Builds the loss for one surface given its linear form and fixed
#: per-element amplitudes.
ObjectiveBuilder = Callable[[LinearChannelForm, np.ndarray], Objective]


def coefficients_from_phases(
    panel: SurfacePanel, phases: np.ndarray
) -> np.ndarray:
    """Complex coefficient vector for a panel at given flat phases."""
    amplitudes = panel.configuration.amplitudes.reshape(-1)
    return amplitudes * np.exp(1j * np.asarray(phases, dtype=float).reshape(-1))


def optimize_surfaces(
    model: ChannelModel,
    panels: Sequence[SurfacePanel],
    objective_builder: ObjectiveBuilder,
    optimizer: Optional[Optimizer] = None,
    initial_phases: Optional[Mapping[str, np.ndarray]] = None,
    rounds: int = 2,
    project: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, OptimizationResult]:
    """Jointly configure several surfaces for one objective.

    Args:
        model: the cascade channel model covering all panels.
        panels: the surfaces to optimize (all must be in the model).
        objective_builder: loss factory per surface linearization.
        optimizer: defaults to :class:`Adam`.
        initial_phases: warm starts per surface id (random otherwise).
        rounds: block-coordinate sweeps.
        project: apply each panel's hardware projection to its result.

    Returns:
        Per-surface :class:`OptimizationResult` from the final sweep.
    """
    if rounds < 1:
        raise OptimizationError("need at least one round")
    by_id = {p.panel_id: p for p in panels}
    missing = set(by_id) - set(model.surface_ids)
    if missing:
        raise OptimizationError(f"panels not in model: {sorted(missing)}")
    optimizer = optimizer or Adam()
    rng = rng or np.random.default_rng(0)

    phases: Dict[str, np.ndarray] = {}
    for sid, panel in by_id.items():
        if initial_phases is not None and sid in initial_phases:
            phases[sid] = (
                np.asarray(initial_phases[sid], dtype=float).reshape(-1).copy()
            )
        else:
            phases[sid] = rng.uniform(0, 2 * np.pi, panel.num_elements)

    def current_coefficients() -> Dict[str, np.ndarray]:
        coeffs: Dict[str, np.ndarray] = {}
        for sid in model.surface_ids:
            if sid in by_id:
                coeffs[sid] = coefficients_from_phases(by_id[sid], phases[sid])
            else:
                raise OptimizationError(
                    f"model contains unmanaged surface {sid!r}; pass every "
                    "surface either as a panel or keep it out of the model"
                )
        return coeffs

    # Memoize linear-form extraction: when the fixed surfaces' phases
    # stop changing between rounds (or there is a single surface), the
    # extraction for identical inputs is served from cache.
    forms = LinearFormCache(model)
    results: Dict[str, OptimizationResult] = {}
    order = sorted(by_id)
    for _ in range(rounds):
        for sid in order:
            panel = by_id[sid]
            form = forms.linear_form(sid, current_coefficients())
            amplitudes = panel.configuration.amplitudes.reshape(-1)
            objective = objective_builder(form, amplitudes)
            projection = panel_projection(panel) if project else None
            result = optimizer.optimize(
                objective, phases[sid], projection=projection
            )
            phases[sid] = result.phases
            results[sid] = result
    return results
