"""Propagation-environment virtualization (§5).

"The centralized control plane of SurfOS can enable new features, such
as network monitoring, diagnosis, and wireless propagation environment
virtualization."  A hypervisor partitions one physical radio
environment among *tenants* — e.g. a building operator leasing surface
capacity to several network providers — with per-tenant policy:

* **scope**: which rooms a tenant may request services for;
* **priority ceiling**: tenants cannot out-prioritize each other at will;
* **time budget**: the share of the surfaces' time axis a tenant may
  hold across all of its tasks;
* **isolation**: a tenant can only observe and cancel its own tasks.

A :class:`TenantOrchestrator` quacks enough like the physical
:class:`~repro.orchestrator.orchestrator.SurfaceOrchestrator` (service
verbs plus the ``budget``/``clock_now``/``hardware``/``telemetry``
read surface) that a :class:`~repro.broker.broker.ServiceBroker` can
run on top of it unchanged — :meth:`Hypervisor.create_frontend`
provisions exactly that, giving each tenant a policy-enforced
:class:`~repro.broker.frontend.ServiceFrontend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ServiceError
from .orchestrator import SurfaceOrchestrator
from .tasks import ServiceTask


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is allowed to do.

    Attributes:
        name: tenant identifier.
        allowed_rooms: rooms the tenant may target (empty = all).
        max_priority: ceiling applied to every request.
        time_budget: total time fraction the tenant may hold, summed
            over its active tasks (1.0 = the whole time axis).
    """

    name: str
    allowed_rooms: Tuple[str, ...] = ()
    max_priority: int = 5
    time_budget: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant needs a name")
        if self.max_priority < 0:
            raise ServiceError("priority ceiling must be non-negative")
        if not 0.0 < self.time_budget <= 1.0:
            raise ServiceError("time budget must lie in (0, 1]")


class TenantOrchestrator:
    """A tenant's restricted view of the shared orchestrator.

    Exposes the same service API names as
    :class:`SurfaceOrchestrator`, with the tenant's policy enforced
    before delegation and ownership recorded for isolation.
    (Formerly named ``VirtualOrchestrator``; that name remains as an
    alias.)
    """

    def __init__(
        self,
        orchestrator: SurfaceOrchestrator,
        policy: TenantPolicy,
        hypervisor: "Hypervisor",
    ):
        self._orchestrator = orchestrator
        self.policy = policy
        self._hypervisor = hypervisor
        self._task_ids: List[str] = []

    # ------------------------------------------------------------------
    # policy checks
    # ------------------------------------------------------------------

    def _check_room(self, room_id: str) -> None:
        allowed = self.policy.allowed_rooms
        if allowed and room_id not in allowed:
            raise ServiceError(
                f"tenant {self.policy.name!r} may not target room "
                f"{room_id!r} (allowed: {', '.join(allowed)})"
            )

    def _clamp_priority(self, priority: int) -> int:
        return min(priority, self.policy.max_priority)

    def _effective_fraction(self, time_fraction: Optional[float]) -> float:
        # Tasks default to configuration multiplexing over the tenant's
        # whole budget; explicit fractions must fit inside it.
        fraction = (
            self.policy.time_budget if time_fraction is None else time_fraction
        )
        remaining = self.remaining_time_budget()
        if fraction > remaining + 1e-9:
            raise ServiceError(
                f"tenant {self.policy.name!r} time budget exhausted: "
                f"requested {fraction:.2f}, remaining {remaining:.2f}"
            )
        return fraction

    def _register(self, task: ServiceTask) -> ServiceTask:
        self._task_ids.append(task.task_id)
        self._hypervisor._owners[task.task_id] = self.policy.name
        return task

    # ------------------------------------------------------------------
    # read-only delegation (what a ServiceBroker needs to run on top)
    # ------------------------------------------------------------------

    @property
    def budget(self):
        """The physical link budget (read-only delegation)."""
        return self._orchestrator.budget

    @property
    def clock_now(self) -> float:
        """The shared simulated clock (read-only delegation)."""
        return self._orchestrator.clock_now

    @property
    def hardware(self):
        """The physical hardware manager (read-only delegation)."""
        return self._orchestrator.hardware

    @property
    def telemetry(self):
        """The shared telemetry stream (read-only delegation)."""
        return self._orchestrator.telemetry

    @property
    def scheduler(self):
        """The physical scheduler (read-only delegation)."""
        return self._orchestrator.scheduler

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def tasks(self) -> List[ServiceTask]:
        """The tenant's own tasks (isolation: nobody else's)."""
        out = []
        for task_id in self._task_ids:
            try:
                out.append(self._orchestrator.scheduler.task(task_id))
            except Exception:
                continue
        return out

    def held_time_fraction(self) -> float:
        """Time fraction the tenant's active tasks currently hold."""
        total = 0.0
        for task in self.tasks():
            if task.is_terminal:
                continue
            slices = self._orchestrator.scheduler.slices_of(task.task_id)
            if slices:
                total += min(s.time_fraction for s in slices)
        return total

    def remaining_time_budget(self) -> float:
        """Unused share of the tenant's time budget."""
        return max(0.0, self.policy.time_budget - self.held_time_fraction())

    # ------------------------------------------------------------------
    # service APIs (same names as the physical orchestrator)
    # ------------------------------------------------------------------

    def enhance_link(self, client_id: str, **kwargs) -> ServiceTask:
        """Tenant-scoped ``enhance_link``."""
        kwargs["priority"] = self._clamp_priority(kwargs.get("priority", 6))
        kwargs["time_fraction"] = self._effective_fraction(
            kwargs.get("time_fraction")
        )
        return self._register(
            self._orchestrator.enhance_link(client_id, **kwargs)
        )

    def optimize_coverage(self, room_id: str, **kwargs) -> ServiceTask:
        """Tenant-scoped ``optimize_coverage``."""
        self._check_room(room_id)
        kwargs["priority"] = self._clamp_priority(kwargs.get("priority", 4))
        kwargs["time_fraction"] = self._effective_fraction(
            kwargs.get("time_fraction")
        )
        return self._register(
            self._orchestrator.optimize_coverage(room_id, **kwargs)
        )

    def enable_sensing(self, room_id: str, **kwargs) -> ServiceTask:
        """Tenant-scoped ``enable_sensing``."""
        self._check_room(room_id)
        kwargs["priority"] = self._clamp_priority(kwargs.get("priority", 5))
        kwargs["time_fraction"] = self._effective_fraction(
            kwargs.get("time_fraction")
        )
        return self._register(
            self._orchestrator.enable_sensing(room_id, **kwargs)
        )

    def init_powering(self, client_id: str, **kwargs) -> ServiceTask:
        """Tenant-scoped ``init_powering``."""
        kwargs["priority"] = self._clamp_priority(kwargs.get("priority", 3))
        kwargs["time_fraction"] = self._effective_fraction(
            kwargs.get("time_fraction")
        )
        return self._register(
            self._orchestrator.init_powering(client_id, **kwargs)
        )

    def protect_link(self, client_id: str, **kwargs) -> ServiceTask:
        """Tenant-scoped ``protect_link``."""
        kwargs["priority"] = self._clamp_priority(kwargs.get("priority", 7))
        kwargs["time_fraction"] = self._effective_fraction(
            kwargs.get("time_fraction")
        )
        return self._register(
            self._orchestrator.protect_link(client_id, **kwargs)
        )

    def complete_task(self, task_id: str) -> None:
        """Finish one of the tenant's own tasks (isolation enforced)."""
        owner = self._hypervisor._owners.get(task_id)
        if owner != self.policy.name:
            raise ServiceError(
                f"tenant {self.policy.name!r} does not own task {task_id!r}"
            )
        self._orchestrator.complete_task(task_id)


class Hypervisor:
    """Partitions one orchestrator among tenants."""

    def __init__(self, orchestrator: SurfaceOrchestrator):
        self.orchestrator = orchestrator
        self._tenants: Dict[str, TenantOrchestrator] = {}
        self._owners: Dict[str, str] = {}

    def create_tenant(self, policy: TenantPolicy) -> TenantOrchestrator:
        """Provision a tenant view; names are unique."""
        if policy.name in self._tenants:
            raise ServiceError(f"tenant {policy.name!r} already exists")
        total = sum(
            t.policy.time_budget for t in self._tenants.values()
        ) + policy.time_budget
        if total > 1.0 + 1e-9:
            raise ServiceError(
                f"time budgets would exceed the physical axis "
                f"({total:.2f} > 1.0)"
            )
        tenant = TenantOrchestrator(self.orchestrator, policy, self)
        self._tenants[policy.name] = tenant
        return tenant

    def create_frontend(self, policy: TenantPolicy):
        """Provision a tenant and wrap it in a policy-enforcing broker.

        The returned :class:`~repro.broker.broker.ServiceBroker` runs
        unchanged over the :class:`TenantOrchestrator`, so it conforms
        to :class:`~repro.broker.frontend.ServiceFrontend` while every
        demand passes the tenant's room/priority/time-budget policy.
        """
        from ..broker.broker import ServiceBroker

        return ServiceBroker(self.create_tenant(policy))

    def tenant(self, name: str) -> TenantOrchestrator:
        """Look up a tenant view."""
        try:
            return self._tenants[name]
        except KeyError:
            raise ServiceError(f"unknown tenant {name!r}") from None

    def owner_of(self, task_id: str) -> Optional[str]:
        """Which tenant owns a task (None for host-created tasks)."""
        return self._owners.get(task_id)

    def usage_report(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant utilization summary."""
        return {
            name: {
                "time_budget": tenant.policy.time_budget,
                "time_held": round(tenant.held_time_fraction(), 4),
                "active_tasks": float(
                    sum(1 for t in tenant.tasks() if not t.is_terminal)
                ),
            }
            for name, tenant in self._tenants.items()
        }


#: Backwards-compatible alias for the pre-fleet class name.
VirtualOrchestrator = TenantOrchestrator
