"""Drift-aware adaptive solve budgets with cross-reaction solution memory.

Under the mobility loop consecutive :meth:`reoptimize` calls solve
near-identical problems: the environment drifts a little, the objective
moves a little, and yet every reaction pays the optimizer's full fixed
iteration budget.  The leg cache made *channel builds* incremental
(PR 5); this module makes the *solve* incremental:

* :class:`SolutionStore` remembers, per ``(task key, panel)``, the last
  converged phase vector and its score together with a structural
  :func:`objective_digest` of the objective it solved.
* At the top of a reaction the orchestrator re-scores the cached phases
  under the *new* objective (one deterministic evaluation) and compares
  against the cached score — the relative **drift**.
* :class:`BudgetController` maps drift to an iteration budget: tiny
  drift earns the floor budget (the cached solution is nearly optimal,
  a short polish suffices), large drift earns the full budget, and the
  band in between interpolates linearly.  The map is a pure function of
  sim-visible state — no wall clock, no host load — so same-seed runs
  stay byte-identical at any worker count or evaluation backend.

The warm-started phases double as the solve's initial incumbent, which
is what makes the floor budget safe: the search starts at last
reaction's optimum instead of the live hardware configuration.

Everything here is inert unless :attr:`SolveBudgetConfig.enabled` is
set; the disabled path is byte-identical to an orchestrator that never
imported this module.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from ..core.errors import ServiceError

__all__ = [
    "BudgetController",
    "SolutionEntry",
    "SolutionStore",
    "SolveBudgetConfig",
    "group_key",
    "objective_digest",
]

#: Floor on the denominator of the relative-drift ratio, so a cached
#: score of exactly zero cannot blow the drift up to infinity.
_DRIFT_SCALE_FLOOR = 1e-9

#: Prefix marking a joint-group solution key (one shared phase vector
#: serving several configuration-multiplexed tasks).
_GROUP_PREFIX = "joint:"


@dataclass(frozen=True)
class SolveBudgetConfig:
    """Tuning for drift-aware adaptive solve budgets.

    Attributes:
        enabled: master switch.  Off (the default) keeps the
            orchestrator byte-identical to the fixed-budget control
            plane: no store, no probes, no ``solver.*`` telemetry.
        floor: smallest iteration budget a warm, low-drift solve may
            receive (also the budget floor after ceiling clamping).
        ceiling: largest adaptive budget; ``None`` uses the optimizer's
            own full budget (``max_iterations`` / ``steps``).
        drift_low: relative drift at or below which the floor budget
            applies (the cached solution still scores essentially the
            same under the new objective).
        drift_high: relative drift at or above which the full budget
            applies (the problem changed too much to trust the cache).
        store_size: LRU bound on remembered ``(task, panel)`` solutions.
    """

    enabled: bool = False
    floor: int = 4
    ceiling: Optional[int] = None
    drift_low: float = 0.02
    drift_high: float = 0.5
    store_size: int = 512

    def __post_init__(self) -> None:
        if self.floor < 1:
            raise ServiceError("floor must be at least 1")
        if self.ceiling is not None and self.ceiling < self.floor:
            raise ServiceError("ceiling must be >= floor")
        if not 0.0 <= self.drift_low < self.drift_high:
            raise ServiceError(
                "need 0 <= drift_low < drift_high, got "
                f"[{self.drift_low}, {self.drift_high}]"
            )
        if self.store_size < 1:
            raise ServiceError("store_size must be at least 1")


@dataclass
class SolutionEntry:
    """One remembered converged solve."""

    digest: Tuple
    phases: np.ndarray
    loss: float


def group_key(task_ids: Iterable[str]) -> str:
    """The solution-store key for one joint (shared-config) group.

    Joint groups solve a single phase vector for every member task, so
    the cached solution is only commensurable when the *same* set of
    tasks is being co-served; the key is the sorted member list.
    """
    return _GROUP_PREFIX + "+".join(sorted(task_ids))


def _key_task_ids(task_key: str) -> Tuple[str, ...]:
    """The task ids a store key involves (one, or a joint group's set)."""
    if task_key.startswith(_GROUP_PREFIX):
        return tuple(task_key[len(_GROUP_PREFIX):].split("+"))
    return (task_key,)


def objective_digest(objective) -> Tuple:
    """A structural fingerprint of an objective.

    Cached phases are only comparable to a *new* objective when both
    describe the same problem shape: same objective type, same phase
    dimension, same evaluation-point count, and (for joint objectives)
    the same weighted part structure.  The digest deliberately ignores
    the channel coefficients themselves — those drifting is exactly
    what the drift probe measures.
    """
    parts = getattr(objective, "parts", None)
    if parts is not None:
        sub = []
        for part in parts:
            if isinstance(part, tuple):
                inner, weight = part
                sub.append((objective_digest(inner), float(weight)))
            else:
                sub.append(objective_digest(part))
        return (
            type(objective).__name__,
            int(getattr(objective, "dim", -1)),
            tuple(sub),
        )
    form = getattr(objective, "form", None)
    shape = None
    if form is not None:
        shape = (int(form.num_points), int(form.num_elements))
    return (type(objective).__name__, int(getattr(objective, "dim", -1)), shape)


class SolutionStore:
    """LRU of last-converged phases per ``(task key, panel)``.

    Entries carry the objective digest they were solved under; a lookup
    with a different digest is a miss (the problem changed shape, the
    cached phases are not commensurable).
    """

    def __init__(self, size: int = 512):
        if size < 1:
            raise ServiceError("solution store size must be at least 1")
        self.size = size
        self._entries: "OrderedDict[Tuple[str, str], SolutionEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, task_key: str, panel_id: str, digest: Tuple
    ) -> Optional[SolutionEntry]:
        """The remembered solution, or None on a miss/shape change."""
        key = (task_key, panel_id)
        entry = self._entries.get(key)
        if entry is None or entry.digest != digest:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def store(
        self,
        task_key: str,
        panel_id: str,
        digest: Tuple,
        phases: np.ndarray,
        loss: float,
    ) -> None:
        """Remember a converged solve (most-recently-used position)."""
        key = (task_key, panel_id)
        self._entries[key] = SolutionEntry(
            digest=digest,
            phases=np.asarray(phases, dtype=float).reshape(-1).copy(),
            loss=float(loss),
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.size:
            self._entries.popitem(last=False)

    def forget_task(self, task_id: str) -> int:
        """Drop every entry involving a task (it completed or expired).

        Joint-group entries mentioning the task go too: the group's
        membership changed, so its cached solution is stale by key
        anyway — this just reclaims the slots.  Returns entries dropped.
        """
        doomed = [
            key
            for key in self._entries
            if task_id in _key_task_ids(key[0])
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)


class BudgetController:
    """Deterministic drift → iteration-budget map.

    A pure function of ``(drift, full budget, config)``: no clocks, no
    randomness, no host state — the determinism contract depends on it.
    """

    def __init__(self, config: SolveBudgetConfig):
        self.config = config

    def budget(self, drift: Optional[float], full: int) -> int:
        """The iteration budget for one solve.

        ``drift`` is the relative drift measured against the cached
        solution (``None`` = cold start, no cache to trust → full
        budget).  ``full`` is the optimizer's own fixed budget.
        """
        cfg = self.config
        ceiling = full if cfg.ceiling is None else min(cfg.ceiling, full)
        ceiling = max(ceiling, cfg.floor)
        if drift is None:
            return ceiling
        if drift <= cfg.drift_low:
            return cfg.floor
        if drift >= cfg.drift_high:
            return ceiling
        fraction = (drift - cfg.drift_low) / (cfg.drift_high - cfg.drift_low)
        return int(round(cfg.floor + fraction * (ceiling - cfg.floor)))


def relative_drift(new_score: float, cached_score: float) -> float:
    """Relative drift of a cached solution under a new objective."""
    scale = max(abs(cached_score), _DRIFT_SCALE_FLOOR)
    return abs(new_score - cached_score) / scale
