"""The surface orchestrator: service APIs + global surface scheduling.

This is SurfOS's central control plane (§3.2).  The service request
APIs — ``enhance_link()``, ``optimize_coverage()``, ``enable_sensing()``,
``init_powering()``, ``protect_link()`` — are environment-wide
abstractions: callers say *what* they need, never *which* surface
provides it.  Each call creates a :class:`ServiceTask`; the
orchestrator admits it into resource slices, and
:meth:`SurfaceOrchestrator.reoptimize` jointly searches all surfaces'
configurations for every active task (the paper's "multitasking with
joint optimization"), pushing results through the hardware manager.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..channel.model import ChannelModel, LinearChannelForm, LinearFormCache
from ..channel.simulator import ChannelSimulator
from ..core.configuration import SurfaceConfiguration
from ..core.errors import ServiceError
from ..drivers.base import PassiveDriver
from ..em.noise import LinkBudget
from ..geometry.environment import Environment
from ..geometry.vec import as_vec3
from ..hwmgr.manager import HardwareManager
from ..services import connectivity, powering, security, sensing
from ..surfaces.panel import SurfacePanel
from ..telemetry import Telemetry
from .blockcoord import coefficients_from_phases, optimize_surfaces
from .multiplex import MultiplexStrategy, propose_slices
from .objectives import JointObjective, Objective
from .optimizers import Adam, Optimizer
from .scheduler import Scheduler
from .solvebudget import (
    BudgetController,
    SolutionStore,
    SolveBudgetConfig,
    group_key,
    objective_digest,
    relative_drift,
)
from .tasks import ServiceTask, ServiceType, TaskState


@dataclass
class _TaskContext:
    """Orchestrator-private bookkeeping for one admitted task."""

    task: ServiceTask
    points: np.ndarray                      # evaluation points (K_t, 3)
    weight: float = 1.0                     # contribution to the joint loss
    legit_local: Optional[np.ndarray] = None     # security: local indices
    eve_local: Optional[np.ndarray] = None
    point_offset: int = 0                   # filled per reoptimize pass


@dataclass
class _AdmissionBatch:
    """Deferred ``(task, slices)`` pairs collected for one batch pass."""

    entries: List[Tuple[ServiceTask, list]] = field(default_factory=list)
    #: ``task_id → failure reason`` (None = admitted), filled on exit.
    outcomes: Dict[str, Optional[str]] = field(default_factory=dict)


class ReoptimizationResult(Mapping):
    """Typed outcome of one :meth:`SurfaceOrchestrator.reoptimize` call.

    A :class:`Mapping` over the *live* configurations per surface (the
    joint group's when one exists, otherwise the first time-division
    slot's) for drop-in compatibility with the old dict return — plus
    the full picture as attributes:

    Attributes:
        joint: joint-group configurations per surface id (may be empty).
        slots: per-task slot configurations, ``task_id → surface_id →
            configuration`` (time-division tasks).
        timing: wall-clock seconds per reoptimization phase, read from
            the telemetry spans (``channel_build_s``, ``optimize_s``,
            ``push_s``, ``metrics_s``, ``total_s``); empty when
            telemetry is disabled.
        objective_evaluations: per-task count of objective evaluations
            spent on it across all panels and rounds.
        pushed: whether configurations were queued to hardware.
        settle_s: control-delay settle time paid by the push (0 when
            nothing was pushed).
        solver: adaptive solve-budget accounting for this pass —
            ``budgeted_iterations``, ``used_iterations``, ``warm_hits``,
            ``cold_starts``, ``early_stops``, ``drift_probes`` — empty
            when adaptive budgets are disabled.
    """

    def __init__(
        self,
        joint: Dict[str, SurfaceConfiguration],
        slots: Dict[str, Dict[str, SurfaceConfiguration]],
        timing: Optional[Dict[str, float]] = None,
        objective_evaluations: Optional[Dict[str, int]] = None,
        pushed: bool = False,
        settle_s: float = 0.0,
        solver: Optional[Dict[str, int]] = None,
    ):
        self.joint = dict(joint)
        self.slots = {t: dict(entry) for t, entry in slots.items()}
        self.timing = dict(timing or {})
        self.objective_evaluations = dict(objective_evaluations or {})
        self.pushed = pushed
        self.settle_s = settle_s
        self.solver = dict(solver or {})

    @property
    def live(self) -> Dict[str, SurfaceConfiguration]:
        """The configurations actually serving after this pass."""
        if self.joint:
            return self.joint
        if self.slots:
            return next(iter(self.slots.values()))
        return {}

    # Mapping duck-compat with the old ``Dict[str, SurfaceConfiguration]``
    # return value: iteration, lookup, and membership hit ``live``.

    def __getitem__(self, surface_id: str) -> SurfaceConfiguration:
        return self.live[surface_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self.live)

    def __len__(self) -> int:
        return len(self.live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReoptimizationResult(joint={sorted(self.joint)}, "
            f"slots={sorted(self.slots)}, pushed={self.pushed}, "
            f"settle_s={self.settle_s:g})"
        )


class SurfaceOrchestrator:
    """Central control plane over one radio environment."""

    def __init__(
        self,
        env: Environment,
        hardware: HardwareManager,
        frequency_hz: float,
        ap_id: Optional[str] = None,
        optimizer: Optional[Optimizer] = None,
        grid_spacing_m: float = 0.7,
        sensing_angles: int = 61,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
        channel_workers: int = 0,
        channel_leg_cache: int = 512,
        solve_budget: Optional[SolveBudgetConfig] = None,
    ):
        self.env = env
        self.hardware = hardware
        self.frequency_hz = frequency_hz
        self.clock_now = 0.0
        self.telemetry = (
            telemetry
            or getattr(hardware, "telemetry", None)
            or Telemetry()
        )
        self.telemetry.bind_sim_clock(lambda: self.clock_now)
        self.simulator = ChannelSimulator(
            env,
            frequency_hz,
            leg_cache_size=channel_leg_cache,
            parallel_workers=channel_workers,
            telemetry=self.telemetry,
        )
        self.scheduler = Scheduler(telemetry=self.telemetry)
        self.optimizer = optimizer or Adam(max_iterations=120)
        self.optimizer.bind_telemetry(self.telemetry)
        self.grid_spacing_m = grid_spacing_m
        self.sensing_angles = sensing_angles
        self.rng = rng or np.random.default_rng(0)
        self._contexts: Dict[str, _TaskContext] = {}
        self._dirty_tasks: set = set()
        self._admission_batch: Optional[_AdmissionBatch] = None
        self.solve_budget = solve_budget or SolveBudgetConfig()
        self._solutions = SolutionStore(self.solve_budget.store_size)
        self._budget_controller = BudgetController(self.solve_budget)
        aps = hardware.access_points()
        if ap_id is None and len(aps) != 1:
            raise ServiceError(
                f"need exactly one AP or an explicit ap_id; have {len(aps)}"
            )
        self.ap = hardware.access_point(ap_id) if ap_id else aps[0]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def budget(self) -> LinkBudget:
        """The AP's link budget."""
        return self.ap.budget

    def _room_points(self, room_id: str, z: float = 1.0) -> np.ndarray:
        return self.env.room(room_id).grid(self.grid_spacing_m, z=z)

    def _client_point(self, client_id: str) -> np.ndarray:
        return self.hardware.client(client_id).position[None, :].copy()

    def _admit(
        self,
        task: ServiceTask,
        points: np.ndarray,
        strategy: MultiplexStrategy,
        weight: float,
        **slice_kwargs,
    ) -> ServiceTask:
        # Slices are proposed over *operational* surfaces only:
        # quarantined and dead panels cannot serve new work.
        panels = self.hardware.operational_panels()
        if not panels:
            task.transition(TaskState.FAILED, reason="no operational surfaces")
            raise ServiceError(
                "no operational surfaces registered with the hardware manager"
            )
        slices = propose_slices(
            task, panels, strategy, target_points=points, **slice_kwargs
        )
        if self._admission_batch is not None:
            # Deferred mode: park the pair for one admit_batch() pass at
            # the end of the batch_admission() block.  The task stays
            # PENDING until then; its context is stored so a successful
            # batch admission needs no second bookkeeping pass.
            self._admission_batch.entries.append((task, slices))
        else:
            self.scheduler.admit(task, slices)
        self._contexts[task.task_id] = _TaskContext(
            task=task, points=np.atleast_2d(points), weight=weight
        )
        self._dirty_tasks.add(task.task_id)
        return task

    @contextmanager
    def batch_admission(self) -> Iterator[_AdmissionBatch]:
        """Defer scheduler admission for every service call in the block.

        The request pipeline's admission batcher wraps one tick's worth
        of service-API calls (``enhance_link`` etc.) in this context;
        instead of one :meth:`Scheduler.admit` per call, the collected
        ``(task, slices)`` pairs go through one
        :meth:`Scheduler.admit_batch` pass in priority order on exit.
        Tasks a batch pass rejects are cleaned out of the
        orchestrator's books; their ids map to a failure reason in the
        yielded batch's ``outcomes``.
        """
        if self._admission_batch is not None:
            raise ServiceError("batch_admission() blocks cannot nest")
        batch = _AdmissionBatch()
        self._admission_batch = batch
        try:
            yield batch
        finally:
            self._admission_batch = None
            if batch.entries:
                batch.outcomes = self.scheduler.admit_batch(batch.entries)
                for task_id, reason in batch.outcomes.items():
                    if reason is not None:
                        self._contexts.pop(task_id, None)
                        self._dirty_tasks.discard(task_id)

    # ------------------------------------------------------------------
    # dirty-set tracking (reoptimization coalescing)
    # ------------------------------------------------------------------

    def mark_dirty(self, *task_ids: str) -> None:
        """Flag tasks whose serving configuration is stale.

        With no arguments every active task is flagged (an environment-
        wide trigger: surface degradation, channel drift).  The request
        pipeline coalesces triggers and runs one :meth:`reoptimize`
        covering the whole dirty set.
        """
        if task_ids:
            self._dirty_tasks.update(task_ids)
        else:
            self._dirty_tasks.update(
                t.task_id
                for t in self.scheduler.tasks(
                    TaskState.READY, TaskState.RUNNING
                )
            )

    @property
    def dirty_task_ids(self) -> List[str]:
        """Tasks awaiting reoptimization, in sorted order."""
        return sorted(self._dirty_tasks)

    # ------------------------------------------------------------------
    # service request APIs (the paper's Fig. 6 call surface)
    # ------------------------------------------------------------------

    def enhance_link(
        self,
        client_id: str,
        snr: Optional[float] = None,
        latency: Optional[float] = None,
        priority: int = 6,
        strategy: MultiplexStrategy = MultiplexStrategy.JOINT,
        time_fraction: Optional[float] = None,
    ) -> ServiceTask:
        """Boost one endpoint's link to a target SNR (dB)."""
        task = ServiceTask(
            service=ServiceType.LINK,
            goal={"client": client_id, "snr_db": snr, "latency_ms": latency},
            priority=priority,
            created_at=self.clock_now,
        )
        return self._admit(
            task,
            self._client_point(client_id),
            strategy,
            weight=float(priority),
            shared_group="joint",
            time_fraction=time_fraction,
        )

    def optimize_coverage(
        self,
        room_id: str,
        median_snr: Optional[float] = None,
        priority: int = 4,
        strategy: MultiplexStrategy = MultiplexStrategy.JOINT,
        time_fraction: Optional[float] = None,
    ) -> ServiceTask:
        """Raise a room's median SNR (dB) across an evaluation grid."""
        task = ServiceTask(
            service=ServiceType.COVERAGE,
            goal={"room": room_id, "median_snr_db": median_snr},
            priority=priority,
            created_at=self.clock_now,
        )
        return self._admit(
            task,
            self._room_points(room_id),
            strategy,
            weight=float(priority),
            shared_group="joint",
            time_fraction=time_fraction,
        )

    def enable_sensing(
        self,
        room_id: str,
        mode: Optional[str] = None,
        duration: Optional[float] = 3600.0,
        priority: int = 5,
        strategy: MultiplexStrategy = MultiplexStrategy.JOINT,
        time_fraction: Optional[float] = None,
    ) -> ServiceTask:
        """Enable AoA-based localization/tracking in a room.

        ``mode`` selects the sensing flavour (``"tracking"`` by
        default).  The former ``type=`` spelling, which shadowed the
        builtin, has been removed.
        """
        if mode is None:
            mode = "tracking"
        task = ServiceTask(
            service=ServiceType.SENSING,
            goal={"room": room_id, "mode": mode},
            priority=priority,
            duration_s=duration,
            created_at=self.clock_now,
        )
        return self._admit(
            task,
            self._room_points(room_id),
            strategy,
            weight=float(priority),
            shared_group="joint",
            time_fraction=time_fraction,
        )

    def init_powering(
        self,
        client_id: str,
        duration: Optional[float] = 3600.0,
        priority: int = 3,
        strategy: MultiplexStrategy = MultiplexStrategy.JOINT,
        time_fraction: Optional[float] = None,
    ) -> ServiceTask:
        """Wirelessly charge one device."""
        task = ServiceTask(
            service=ServiceType.POWERING,
            goal={"client": client_id},
            priority=priority,
            duration_s=duration,
            created_at=self.clock_now,
        )
        return self._admit(
            task,
            self._client_point(client_id),
            strategy,
            weight=float(priority),
            shared_group="joint",
            time_fraction=time_fraction,
        )

    def protect_link(
        self,
        client_id: str,
        eavesdropper_position: Sequence[float],
        priority: int = 7,
        nulling_weight: float = 1.0,
        strategy: MultiplexStrategy = MultiplexStrategy.JOINT,
        time_fraction: Optional[float] = None,
    ) -> ServiceTask:
        """Maximize a client's link while nulling an eavesdropper spot."""
        legit = self._client_point(client_id)
        eve = as_vec3(eavesdropper_position)[None, :]
        points = np.concatenate([legit, eve], axis=0)
        task = ServiceTask(
            service=ServiceType.SECURITY,
            goal={
                "client": client_id,
                "eavesdropper": list(map(float, eve[0])),
                "nulling_weight": nulling_weight,
            },
            priority=priority,
            created_at=self.clock_now,
        )
        admitted = self._admit(
            task,
            points,
            strategy,
            weight=float(priority),
            shared_group="joint",
            time_fraction=time_fraction,
        )
        ctx = self._contexts[task.task_id]
        ctx.legit_local = np.array([0])
        ctx.eve_local = np.array([1])
        return admitted

    # ------------------------------------------------------------------
    # joint optimization over all active tasks
    # ------------------------------------------------------------------

    def active_contexts(self) -> List[_TaskContext]:
        """Contexts of READY/RUNNING tasks, highest priority first."""
        active = self.scheduler.tasks(TaskState.READY, TaskState.RUNNING)
        return [self._contexts[t.task_id] for t in active]

    def _sensing_estimator(
        self, model: ChannelModel, surface_id: str
    ) -> sensing.AoAEstimator:
        panel = self.hardware.panel(surface_id)
        grid = sensing.AngleGrid.uniform(count=self.sensing_angles)
        return sensing.AoAEstimator(
            panel,
            sensing.surface_illumination(model, surface_id),
            grid,
            self.frequency_hz,
        )

    def _task_objective(
        self,
        ctx: _TaskContext,
        form: LinearChannelForm,
        amplitudes: np.ndarray,
        surface_id: str,
        model: ChannelModel,
    ) -> Objective:
        k = ctx.points.shape[0]
        local = form.restricted(
            range(ctx.point_offset, ctx.point_offset + k)
        )
        service = ctx.task.service
        if service in (ServiceType.LINK, ServiceType.COVERAGE):
            return connectivity.coverage_objective(
                local, amplitudes=amplitudes, budget=self.budget
            )
        if service is ServiceType.POWERING:
            return powering.powering_objective(
                local, amplitudes=amplitudes, budget=self.budget
            )
        if service is ServiceType.SENSING:
            estimator = self._sensing_estimator(model, surface_id)
            return sensing.localization_objective(
                model,
                surface_id,
                estimator,
                point_indices=range(ctx.point_offset, ctx.point_offset + k),
                amplitudes=amplitudes,
                budget=self.budget,
            )
        if service is ServiceType.SECURITY:
            return security.security_objective(
                local,
                legit_indices=ctx.legit_local,
                eavesdropper_indices=ctx.eve_local,
                amplitudes=amplitudes,
                budget=self.budget,
                nulling_weight=ctx.task.goal.get("nulling_weight", 1.0),
            )
        raise ServiceError(f"no objective for service {service}")

    def _is_joint(self, ctx: _TaskContext) -> bool:
        """Whether a task holds configuration-multiplexed slices."""
        return any(
            s.shared_group for s in self.scheduler.slices_of(ctx.task.task_id)
        )

    def _optimizable_panels(self) -> List[SurfacePanel]:
        operational = {
            p.panel_id for p in self.hardware.operational_panels()
        }
        panels = []
        for panel in self.hardware.panels():
            if panel.panel_id not in operational:
                continue  # quarantined or dead: masked out of optimization
            driver = self.hardware.driver(panel.panel_id)
            if isinstance(driver, PassiveDriver) and driver.fabricated:
                continue  # fixed forever
            panels.append(panel)
        return panels

    def _warm_start(
        self,
        task_key: str,
        sid: str,
        objective: Objective,
        fallback: np.ndarray,
        solver_stats: Dict[str, int],
    ) -> Tuple[np.ndarray, Optional[int]]:
        """Adaptive-budget lookup for one (task, panel) solve.

        Re-scores the cached phases under the new objective, measures
        drift against the cached score, and returns warm initial phases
        plus the drift-scaled iteration budget.  A miss (no entry,
        shape change, or an optimizer with no iteration limit) returns
        the fallback phases and a full budget (``None``).
        """
        digest = objective_digest(objective)
        entry = self._solutions.lookup(task_key, sid, digest)
        full = self.optimizer.full_budget
        if entry is None or full is None:
            self.telemetry.counter("solver.cold_starts")
            solver_stats["cold_starts"] = solver_stats.get("cold_starts", 0) + 1
            return fallback, None
        # One deterministic probe evaluation: the cached phases under
        # the *new* objective.  Its distance from the cached score is
        # the drift the budget scales with.
        drift = relative_drift(float(objective.value(entry.phases)), entry.loss)
        budget = self._budget_controller.budget(drift, full)
        self.telemetry.counter("solver.drift_probes")
        self.telemetry.counter("solver.warm_hits")
        self.telemetry.gauge("solver.drift", round(drift, 9))
        solver_stats["drift_probes"] = solver_stats.get("drift_probes", 0) + 1
        solver_stats["warm_hits"] = solver_stats.get("warm_hits", 0) + 1
        return entry.phases.copy(), budget

    def _account_solver(
        self, result, solver_stats: Dict[str, int]
    ) -> None:
        """Fold one adaptive solve's budget accounting into telemetry."""
        self.telemetry.counter("solver.budget_iterations", result.budget)
        self.telemetry.counter("solver.used_iterations", result.iterations)
        solver_stats["budgeted_iterations"] = (
            solver_stats.get("budgeted_iterations", 0) + result.budget
        )
        solver_stats["used_iterations"] = (
            solver_stats.get("used_iterations", 0) + result.iterations
        )
        if result.early_stopped:
            self.telemetry.counter("solver.early_stops")
            solver_stats["early_stops"] = (
                solver_stats.get("early_stops", 0) + 1
            )

    def _optimize_group(
        self,
        model: ChannelModel,
        contexts: Sequence[_TaskContext],
        optimizable: Sequence[SurfacePanel],
        rounds: int,
        eval_counts: Optional[Dict[str, int]] = None,
        solver_stats: Optional[Dict[str, int]] = None,
    ) -> Dict[str, np.ndarray]:
        """Block-coordinate search for one group of co-served tasks.

        Returns the optimized flat phase vector per optimizable surface.
        Each surface gets its own objective builder because sensing
        predictions are per-surface.  ``eval_counts`` accumulates
        objective evaluations per task id for the telemetry summary.
        """
        total_weight = sum(c.weight for c in contexts) or 1.0
        by_id = {p.panel_id: p for p in self.hardware.panels()}
        phases = {
            p.panel_id: p.configuration.flat_phases() for p in optimizable
        }

        def coeffs() -> Dict[str, np.ndarray]:
            out = {}
            for sid, panel in by_id.items():
                if sid in phases:
                    out[sid] = coefficients_from_phases(panel, phases[sid])
                else:
                    out[sid] = panel.configuration.coefficients().reshape(-1)
            return out

        from .optimizers import panel_projection

        adaptive = self.solve_budget.enabled
        solver_stats = {} if solver_stats is None else solver_stats
        key = group_key(c.task.task_id for c in contexts)
        budgets: Dict[str, Optional[int]] = {}
        forms = LinearFormCache(model, telemetry=self.telemetry)
        for round_index in range(rounds):
            for panel in optimizable:
                sid = panel.panel_id
                with self.telemetry.span(
                    "optimize-panel",
                    panel=sid,
                    round=round_index,
                    tasks=len(contexts),
                ) as span:
                    form = forms.linear_form(sid, coeffs())
                    amplitudes = panel.configuration.amplitudes.reshape(-1)
                    parts: List[Tuple[Objective, float]] = []
                    for ctx in contexts:
                        objective = self._task_objective(
                            ctx, form, amplitudes, sid, model
                        )
                        parts.append((objective, ctx.weight / total_weight))
                    joint = (
                        parts[0][0] if len(parts) == 1 else JointObjective(parts)
                    )
                    budget = None
                    if adaptive:
                        if round_index == 0:
                            phases[sid], budget = self._warm_start(
                                key, sid, joint, phases[sid], solver_stats
                            )
                            budgets[sid] = budget
                        else:
                            # Later block-coordinate rounds continue the
                            # round-0 solve under the same drift budget.
                            budget = budgets.get(sid)
                    result = self.optimizer.optimize(
                        joint,
                        phases[sid],
                        projection=panel_projection(panel),
                        budget=budget,
                    )
                    phases[sid] = result.phases
                    span.set(iterations=result.iterations, loss=result.loss)
                    self.telemetry.counter(
                        "orchestrator.objective_evaluations",
                        result.evaluations * len(contexts),
                    )
                    if eval_counts is not None:
                        for ctx in contexts:
                            task_id = ctx.task.task_id
                            eval_counts[task_id] = (
                                eval_counts.get(task_id, 0) + result.evaluations
                            )
                    if adaptive:
                        self._account_solver(result, solver_stats)
                        if round_index == rounds - 1:
                            self._solutions.store(
                                key, sid, objective_digest(joint),
                                result.phases, result.loss,
                            )
        return phases

    def _optimize_slotted(
        self,
        model: ChannelModel,
        contexts: Sequence[_TaskContext],
        optimizable: Sequence[SurfacePanel],
        rounds: int,
        eval_counts: Optional[Dict[str, int]] = None,
        solver_stats: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Block-coordinate search for the time-division tasks, in lockstep.

        Each slotted task is an *independent* solve (its own codebook
        entry, its own phase state), so instead of running
        :meth:`_optimize_group` once per task the tasks advance together
        through :meth:`Optimizer.optimize_many`: every optimizer
        iteration evaluates all tasks' candidate batches as one stacked
        cross-task call.  Per-task trajectories are bit-identical to the
        serial per-task loop — independent RNG streams, per-task linear
        forms, per-task chunk grids — only the wall-clock changes.

        Returns the optimized flat phases per task id per surface.
        """
        from .optimizers import panel_projection

        states: Dict[str, Dict[str, np.ndarray]] = {
            ctx.task.task_id: {
                p.panel_id: p.configuration.flat_phases() for p in optimizable
            }
            for ctx in contexts
        }
        by_id = {p.panel_id: p for p in self.hardware.panels()}

        def coeffs(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
            out = {}
            for sid, panel in by_id.items():
                if sid in state:
                    out[sid] = coefficients_from_phases(panel, state[sid])
                else:
                    out[sid] = panel.configuration.coefficients().reshape(-1)
            return out

        adaptive = self.solve_budget.enabled
        solver_stats = {} if solver_stats is None else solver_stats
        task_budgets: Dict[Tuple[str, str], Optional[int]] = {}
        forms = LinearFormCache(model, telemetry=self.telemetry)
        for round_index in range(rounds):
            for panel in optimizable:
                sid = panel.panel_id
                with self.telemetry.span(
                    "optimize-panel",
                    panel=sid,
                    round=round_index,
                    tasks=len(contexts),
                ) as span:
                    amplitudes = panel.configuration.amplitudes.reshape(-1)
                    objectives: List[Objective] = []
                    initials: List[np.ndarray] = []
                    budgets: List[Optional[int]] = []
                    for ctx in contexts:
                        task_id = ctx.task.task_id
                        state = states[task_id]
                        form = forms.linear_form(sid, coeffs(state))
                        objective = self._task_objective(
                            ctx, form, amplitudes, sid, model
                        )
                        initial = state[sid]
                        budget = None
                        if adaptive:
                            if round_index == 0:
                                initial, budget = self._warm_start(
                                    task_id, sid, objective, initial,
                                    solver_stats,
                                )
                                task_budgets[(task_id, sid)] = budget
                            else:
                                budget = task_budgets.get((task_id, sid))
                        objectives.append(objective)
                        initials.append(initial)
                        budgets.append(budget)
                    results = self.optimizer.optimize_many(
                        objectives,
                        initials,
                        projection=panel_projection(panel),
                        budgets=budgets if adaptive else None,
                    )
                    for ctx, result in zip(contexts, results):
                        states[ctx.task.task_id][sid] = result.phases
                    span.set(
                        iterations=sum(r.iterations for r in results),
                        loss=sum(r.loss for r in results),
                    )
                    self.telemetry.counter(
                        "orchestrator.objective_evaluations",
                        sum(r.evaluations for r in results),
                    )
                    if eval_counts is not None:
                        for ctx, result in zip(contexts, results):
                            task_id = ctx.task.task_id
                            eval_counts[task_id] = (
                                eval_counts.get(task_id, 0) + result.evaluations
                            )
                    if adaptive:
                        for ctx, objective, result in zip(
                            contexts, objectives, results
                        ):
                            self._account_solver(result, solver_stats)
                            if round_index == rounds - 1:
                                self._solutions.store(
                                    ctx.task.task_id, sid,
                                    objective_digest(objective),
                                    result.phases, result.loss,
                                )
        return states

    def _phases_to_config(
        self, panel: SurfacePanel, phases: np.ndarray, name: str
    ) -> SurfaceConfiguration:
        return SurfaceConfiguration(
            phases=np.asarray(phases).reshape(panel.shape),
            amplitudes=panel.configuration.amplitudes.copy(),
            name=name,
            frequency_hz=self.frequency_hz,
        )

    def reoptimize(
        self,
        now: Optional[float] = None,
        rounds: int = 2,
        push: bool = True,
    ) -> ReoptimizationResult:
        """Optimize all surfaces for every active task.

        Tasks holding configuration-multiplexed (shared-group) slices
        are served by one *joint* configuration; tasks holding
        time-division slices each get their own configuration, stored
        as a codebook entry named ``task-<id>`` and cycled at data-plane
        speed by :meth:`activate_task_slot` — the §3.2 time-division
        multiplexing.

        Returns a :class:`ReoptimizationResult`: a mapping over the
        live configurations per surface (joint ones when a joint group
        exists, else the first slot's) carrying the full joint/slot
        breakdown, a per-phase timing summary from the telemetry spans,
        and per-task objective-evaluation counts.

        With ``push`` the configurations are queued through the hardware
        manager; passive surfaces are fabricated on first optimization
        and skipped afterwards (they cannot take part in TDM).
        """
        if now is not None:
            self.clock_now = now
        contexts = self.active_contexts()
        if not contexts:
            raise ServiceError("no active tasks to optimize for")
        timing: Dict[str, float] = {}
        eval_counts: Dict[str, int] = {}
        solver_stats: Dict[str, int] = {}
        settle = 0.0
        with self.telemetry.span("reoptimize", tasks=len(contexts)) as root:
            panels = self.hardware.panels()
            offset = 0
            point_blocks = []
            for ctx in contexts:
                ctx.point_offset = offset
                offset += ctx.points.shape[0]
                point_blocks.append(ctx.points)
            all_points = np.concatenate(point_blocks, axis=0)
            with self.telemetry.span(
                "channel-build", points=int(all_points.shape[0])
            ) as span:
                model = self.simulator.build(self.ap.node(), all_points, panels)
            timing["channel_build_s"] = span.wall_duration_s

            optimizable = self._optimizable_panels()
            if not optimizable:
                raise ServiceError(
                    "no optimizable surfaces: every panel is either "
                    "passive-and-fabricated, quarantined, or dead"
                )

            joint_contexts = [c for c in contexts if self._is_joint(c)]
            slotted_contexts = [c for c in contexts if not self._is_joint(c)]

            new_configs: Dict[str, SurfaceConfiguration] = {}
            slot_configs: Dict[str, Dict[str, SurfaceConfiguration]] = {}

            with self.telemetry.span(
                "optimize",
                joint_tasks=len(joint_contexts),
                slot_tasks=len(slotted_contexts),
            ) as span:
                if joint_contexts:
                    phases = self._optimize_group(
                        model, joint_contexts, optimizable, rounds,
                        eval_counts, solver_stats,
                    )
                    for panel in optimizable:
                        new_configs[panel.panel_id] = self._phases_to_config(
                            panel,
                            phases[panel.panel_id],
                            f"orchestrated@{self.clock_now:.3f}",
                        )

                if slotted_contexts:
                    slot_phases = self._optimize_slotted(
                        model, slotted_contexts, optimizable, rounds,
                        eval_counts, solver_stats,
                    )
                    for ctx in slotted_contexts:
                        phases = slot_phases[ctx.task.task_id]
                        entry = {}
                        for panel in optimizable:
                            entry[panel.panel_id] = self._phases_to_config(
                                panel,
                                phases[panel.panel_id],
                                f"task-{ctx.task.task_id}",
                            )
                        slot_configs[ctx.task.task_id] = entry
            timing["optimize_s"] = span.wall_duration_s

            if push:
                with self.telemetry.span("push") as span:
                    settle = self._push_configurations(
                        optimizable,
                        new_configs,
                        slot_configs,
                        bool(joint_contexts),
                    )
                timing["push_s"] = span.wall_duration_s

            for ctx in contexts:
                if ctx.task.state is TaskState.READY:
                    self.scheduler.start(ctx.task.task_id)
            with self.telemetry.span("metrics") as span:
                self._record_metrics(model, contexts, slot_configs)
            timing["metrics_s"] = span.wall_duration_s
        timing["total_s"] = root.wall_duration_s
        if not self.telemetry.enabled:
            timing = {}
        self.telemetry.counter("orchestrator.reoptimizations")
        # Every active task was just (re)optimized: the dirty set is
        # clean until the next admission/motion/degradation trigger.
        self._dirty_tasks.clear()
        return ReoptimizationResult(
            joint=new_configs,
            slots=slot_configs,
            timing=timing,
            objective_evaluations=eval_counts,
            pushed=push,
            settle_s=settle,
            solver=solver_stats,
        )

    def _push_configurations(
        self,
        optimizable: Sequence[SurfacePanel],
        joint_configs: Dict[str, SurfaceConfiguration],
        slot_configs: Dict[str, Dict[str, SurfaceConfiguration]],
        have_joint: bool,
    ) -> float:
        """Queue all configurations through the hardware manager.

        Push failures (link faults that exhaust retries, quarantine
        rejections) degrade service on that surface but never abort the
        whole reoptimization — the other surfaces still get their
        updates.  Returns the control-delay settle time paid before
        commit.
        """
        failed = 0
        for panel in optimizable:
            sid = panel.panel_id
            driver = self.hardware.driver(sid)
            if isinstance(driver, PassiveDriver):
                # Passive hardware gets exactly one configuration: the
                # joint one if any, else the first slot's.
                config = joint_configs.get(sid)
                if config is None and slot_configs:
                    config = next(iter(slot_configs.values()))[sid]
                if config is not None:
                    self.hardware.fabricate(sid, config)
                continue
            if sid in joint_configs:
                result = self.hardware.push_configuration(
                    sid,
                    joint_configs[sid],
                    now=self.clock_now,
                    name="orchestrated",
                )
                if not result.ok:
                    failed += 1
            for slot_index, (task_id, entry) in enumerate(
                slot_configs.items()
            ):
                result = self.hardware.push_configuration(
                    sid,
                    entry[sid],
                    now=self.clock_now,
                    name=f"task-{task_id}",
                    # Without a joint config the first slot goes live.
                    activate=(not have_joint and slot_index == 0),
                )
                if not result.ok:
                    failed += 1
        if failed:
            self.telemetry.counter("orchestrator.push_failures", failed)
        delays = [
            p.spec.control_delay_s
            for p in optimizable
            if math.isfinite(p.spec.control_delay_s)
        ]
        settle = max(delays) if delays else 0.0
        self.clock_now += settle
        self.telemetry.gauge("hw.settle_s", settle)
        self.hardware.commit_all(self.clock_now)
        return settle

    # ------------------------------------------------------------------
    # time-division multiplexing (data plane)
    # ------------------------------------------------------------------

    def tdm_schedule(self) -> List[Tuple[str, float]]:
        """Active time-division slots as ``(task_id, time_fraction)``.

        Fractions come from the tasks' admitted slices; the runtime
        cycles slots proportionally via :meth:`activate_task_slot`.
        """
        schedule = []
        for ctx in self.active_contexts():
            if self._is_joint(ctx):
                continue
            slices = self.scheduler.slices_of(ctx.task.task_id)
            if not slices:
                continue
            fraction = min(s.time_fraction for s in slices)
            schedule.append((ctx.task.task_id, fraction))
        return schedule

    def activate_task_slot(self, task_id: str) -> List[str]:
        """Switch every programmable surface to a task's stored slot.

        A data-plane action: local codebook selection, no control-delay
        cost (the paper's stored-configuration switching).  Returns the
        surfaces switched.
        """
        switched = []
        name = f"task-{task_id}"
        for panel in self._optimizable_panels():
            driver = self.hardware.driver(panel.panel_id)
            if isinstance(driver, PassiveDriver):
                continue
            if name in driver.stored_configurations():
                driver.select_configuration(name)
                switched.append(panel.panel_id)
        if not switched:
            raise ServiceError(
                f"no stored slot configurations for task {task_id!r}; "
                "run reoptimize() first"
            )
        return switched

    # ------------------------------------------------------------------

    def _live_coefficients(self) -> Dict[str, np.ndarray]:
        return {
            p.panel_id: p.configuration.coefficients().reshape(-1)
            for p in self.hardware.panels()
        }

    def _record_metrics(
        self,
        model: ChannelModel,
        contexts: Sequence[_TaskContext],
        slot_configs: Optional[
            Dict[str, Dict[str, SurfaceConfiguration]]
        ] = None,
    ) -> None:
        live = self._live_coefficients()
        live_snrs = connectivity.snr_map_db(model, live, self.budget)
        for ctx in contexts:
            k = ctx.points.shape[0]
            sl = slice(ctx.point_offset, ctx.point_offset + k)
            # Time-division tasks are measured under *their* slot
            # configuration, not whatever happens to be live now.
            entry = (slot_configs or {}).get(ctx.task.task_id)
            if entry is not None:
                configs = dict(live)
                for sid, config in entry.items():
                    panel = self.hardware.panel(sid)
                    configs[sid] = (
                        panel.feasible(config).coefficients().reshape(-1)
                    )
                snrs = connectivity.snr_map_db(model, configs, self.budget)
            else:
                snrs = live_snrs
            task_snrs = snrs[sl]
            ctx.task.record_metrics(
                median_snr_db=float(np.median(task_snrs)),
                min_snr_db=float(np.min(task_snrs)),
            )
            if ctx.task.service is ServiceType.SECURITY:
                ctx.task.record_metrics(
                    secrecy_margin_db=float(
                        task_snrs[ctx.legit_local].mean()
                        - task_snrs[ctx.eve_local].mean()
                    )
                )

    def evaluate_task(self, task_id: str) -> Dict[str, float]:
        """Fresh achieved-metric evaluation for one task."""
        ctx = self._contexts.get(task_id)
        if ctx is None:
            raise ServiceError(f"unknown task {task_id!r}")
        model = self.simulator.build(
            self.ap.node(), ctx.points, self.hardware.panels()
        )
        configs = self._live_coefficients()
        snrs = connectivity.snr_map_db(model, configs, self.budget)
        return {
            "median_snr_db": float(np.median(snrs)),
            "min_snr_db": float(np.min(snrs)),
            "max_snr_db": float(np.max(snrs)),
        }

    def refresh_client_tasks(self, client_id: str) -> List[str]:
        """Re-point tasks at a client's current position (mobility).

        Called when an endpoint moves: every active task targeting the
        client gets its evaluation point updated so the next
        re-optimization serves the new location.  Returns the affected
        task ids.
        """
        position = self._client_point(client_id)
        affected = []
        for ctx in self._contexts.values():
            if ctx.task.is_terminal:
                continue
            if ctx.task.goal.get("client") != client_id:
                continue
            if ctx.task.service is ServiceType.SECURITY:
                # Keep the eavesdropper point, move the legitimate one.
                ctx.points = np.concatenate(
                    [position, ctx.points[1:]], axis=0
                )
            else:
                ctx.points = position.copy()
            affected.append(ctx.task.task_id)
        if affected:
            self.mark_dirty(*affected)
        return affected

    def complete_task(self, task_id: str) -> None:
        """Finish a task and release its resources."""
        self.scheduler.complete(task_id)
        self._contexts.pop(task_id, None)
        self._dirty_tasks.discard(task_id)
        self._solutions.forget_task(task_id)

    def tick(self, now: float) -> List[str]:
        """Advance time: commit in-flight writes, reap expired tasks."""
        self.clock_now = now
        self.hardware.commit_all(now)
        finished = self.scheduler.reap_expired(now)
        for task_id in finished:
            self._contexts.pop(task_id, None)
            self._dirty_tasks.discard(task_id)
            self._solutions.forget_task(task_id)
        return finished
