"""Surface orchestrator: tasks, scheduling, multiplexing, optimization."""

from .blockcoord import coefficients_from_phases, optimize_surfaces
from .multiplex import MultiplexStrategy, propose_slices
from .objectives import (
    CoverageGoal,
    CoverageObjective,
    FiniteDifferenceObjective,
    JointObjective,
    LocalizationObjective,
    Objective,
    PoweringObjective,
)
from .optimizers import (
    Adam,
    GradientDescent,
    OptimizationResult,
    Optimizer,
    RandomSearch,
    SimulatedAnnealing,
    panel_projection,
)
from .orchestrator import ReoptimizationResult, SurfaceOrchestrator
from .scheduler import Scheduler
from .solvebudget import (
    BudgetController,
    SolutionStore,
    SolveBudgetConfig,
    objective_digest,
)
from .virtualization import (
    Hypervisor,
    TenantOrchestrator,
    TenantPolicy,
    VirtualOrchestrator,
)
from .slices import ResourceSlice, SliceAllocator
from .tasks import ServiceTask, ServiceType, TaskState

__all__ = [
    "Adam",
    "BudgetController",
    "CoverageGoal",
    "CoverageObjective",
    "FiniteDifferenceObjective",
    "GradientDescent",
    "Hypervisor",
    "JointObjective",
    "LocalizationObjective",
    "MultiplexStrategy",
    "Objective",
    "OptimizationResult",
    "Optimizer",
    "PoweringObjective",
    "RandomSearch",
    "ReoptimizationResult",
    "ResourceSlice",
    "Scheduler",
    "ServiceTask",
    "ServiceType",
    "SimulatedAnnealing",
    "SliceAllocator",
    "SolutionStore",
    "SolveBudgetConfig",
    "SurfaceOrchestrator",
    "TenantOrchestrator",
    "TenantPolicy",
    "TaskState",
    "VirtualOrchestrator",
    "coefficients_from_phases",
    "objective_digest",
    "optimize_surfaces",
    "panel_projection",
    "propose_slices",
]
