"""Service tasks — the orchestrator's process abstraction (§3.2).

"Each function call specifies the service goals as input and creates a
task (akin to OS processes)."  Tasks carry a priority, a lifecycle
state machine, the resource slices they hold, and the achieved metrics
once the optimizer has run.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.errors import SchedulingError


class ServiceType(enum.Enum):
    """The services SurfOS multiplexes over surfaces."""

    LINK = "link"                # enhance_link()
    COVERAGE = "coverage"        # optimize_coverage()
    SENSING = "sensing"          # enable_sensing()
    POWERING = "powering"        # init_powering()
    SECURITY = "security"        # protect_link()
    MONITORING = "monitoring"    # monitor_environment()


class TaskState(enum.Enum):
    """Task lifecycle, modeled on OS process states."""

    PENDING = "pending"        # created, not yet admitted
    READY = "ready"            # admitted, resources held, not optimized yet
    RUNNING = "running"        # actively served by live configurations
    IDLE = "idle"              # admitted but dormant; resources released
    COMPLETED = "completed"    # finished (duration elapsed or goal met)
    FAILED = "failed"          # admission or optimization failed
    PREEMPTED = "preempted"    # evicted by a higher-priority task


_VALID_TRANSITIONS = {
    TaskState.PENDING: {TaskState.READY, TaskState.FAILED},
    TaskState.READY: {
        TaskState.RUNNING,
        TaskState.COMPLETED,
        TaskState.FAILED,
        TaskState.PREEMPTED,
    },
    TaskState.RUNNING: {
        TaskState.IDLE,
        TaskState.COMPLETED,
        TaskState.FAILED,
        TaskState.PREEMPTED,
        TaskState.RUNNING,
    },
    TaskState.IDLE: {TaskState.READY, TaskState.COMPLETED, TaskState.PREEMPTED},
    TaskState.PREEMPTED: {TaskState.READY, TaskState.COMPLETED, TaskState.FAILED},
    TaskState.COMPLETED: set(),
    TaskState.FAILED: set(),
}

_task_counter = itertools.count(1)


def reset_task_counter() -> None:
    """Restart task-id numbering (determinism tests/benchmarks only)."""
    global _task_counter
    _task_counter = itertools.count(1)


@dataclass
class ServiceTask:
    """One admitted service request.

    Attributes:
        service: which service the task requests.
        goal: service-specific goal parameters (target SNR, room, …).
        priority: higher wins admission conflicts; preemption is
            strictly by priority.
        duration_s: requested lifetime; ``None`` = until cancelled.
        created_at: simulated creation time.
        task_id: unique id, auto-assigned.
    """

    service: ServiceType
    goal: Dict[str, Any]
    priority: int = 5
    duration_s: Optional[float] = None
    created_at: float = 0.0
    task_id: str = field(default="")
    state: TaskState = field(default=TaskState.PENDING)
    metrics: Dict[str, float] = field(default_factory=dict)
    failure_reason: str = ""

    def __post_init__(self) -> None:
        if not self.task_id:
            self.task_id = f"task-{next(_task_counter)}"
        if self.priority < 0:
            raise SchedulingError("priority must be non-negative")
        if self.duration_s is not None and self.duration_s <= 0:
            raise SchedulingError("duration must be positive when given")

    # ------------------------------------------------------------------

    def transition(self, new_state: TaskState, reason: str = "") -> None:
        """Move the task through its lifecycle, validating the edge."""
        if new_state not in _VALID_TRANSITIONS[self.state]:
            raise SchedulingError(
                f"{self.task_id}: illegal transition "
                f"{self.state.value} → {new_state.value}"
            )
        self.state = new_state
        if new_state is TaskState.FAILED:
            self.failure_reason = reason

    @property
    def is_active(self) -> bool:
        """Whether the task currently holds (or will hold) resources."""
        return self.state in (TaskState.READY, TaskState.RUNNING)

    @property
    def is_terminal(self) -> bool:
        """Whether the task is finished for good."""
        return self.state in (TaskState.COMPLETED, TaskState.FAILED)

    def expired(self, now: float) -> bool:
        """Whether the requested duration has elapsed."""
        if self.duration_s is None:
            return False
        return now >= self.created_at + self.duration_s

    def record_metrics(self, **metrics: float) -> None:
        """Attach achieved-performance metrics."""
        self.metrics.update(metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceTask({self.task_id}, {self.service.value}, "
            f"prio={self.priority}, {self.state.value})"
        )
