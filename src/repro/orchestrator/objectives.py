"""Differentiable service objectives over surface phase configurations.

Every objective is a real-valued loss of the phase vector ``φ`` of one
surface, evaluated through a :class:`LinearChannelForm`
(``h = C·x + d`` with ``x = a·e^{jφ}``).  Gradients are *analytic*
(Wirtinger calculus), so optimizing a 4096-element surface costs one
matrix pass per step instead of 4096 finite differences.

Conventions: for a real loss ``L`` of complex tensors, ``∂L/∂z`` is the
Wirtinger partial treating ``z̄`` as independent; the chain to phases is
``∂L/∂φ_e = 2·Re(j·x_e·Σ ∂L/∂h · ∂h/∂x_e) = −2·Im(x_e·Σ ∂L/∂h·C_e)``.

The localization loss is the paper's §4 formulation: "the cross-entropy
between the estimated and true AoA" with the AoA spectrum computed by
matched-filter correlation of the AP-observed channel against per-angle
predictions (md-Track style).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..channel.model import LinearChannelForm
from ..core.errors import OptimizationError
from ..em.noise import LinkBudget

_LN2 = math.log(2.0)


class Objective:
    """A differentiable loss over one surface's phase vector."""

    #: Number of phase variables.
    dim: int

    def value(self, phases: np.ndarray) -> float:
        """Loss at a phase vector."""
        return self.value_and_gradient(phases)[0]

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        """Losses for a batch of phase vectors, shape ``(P,)``.

        The population-evaluation hook the value-only optimizers route
        through.  The base implementation loops :meth:`value`; the
        ``LinearChannelForm``-backed objectives override it with one
        vectorized pass over the whole batch.
        """
        batch = self._check_batch(phases_batch)
        return np.array([self.value(row) for row in batch])

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        """Loss and its analytic gradient."""
        raise NotImplementedError

    def _check(self, phases: np.ndarray) -> np.ndarray:
        phases = np.asarray(phases, dtype=float).reshape(-1)
        if phases.shape != (self.dim,):
            raise OptimizationError(
                f"phase vector has shape {phases.shape}, expected ({self.dim},)"
            )
        return phases

    def _check_batch(self, phases_batch: np.ndarray) -> np.ndarray:
        batch = np.atleast_2d(np.asarray(phases_batch, dtype=float))
        if batch.ndim != 2 or batch.shape[1] != self.dim:
            raise OptimizationError(
                f"phase batch has shape {batch.shape}, expected (P, {self.dim})"
            )
        return batch


def _phase_gradient(x: np.ndarray, accumulated: np.ndarray) -> np.ndarray:
    """``∂L/∂φ`` from the Wirtinger cogradient accumulated against x."""
    return -2.0 * np.imag(x * accumulated)


@dataclass(frozen=True)
class CoverageGoal:
    """Parameters of a coverage/link objective.

    Attributes:
        budget: link budget (tx power, bandwidth, noise).
        weights: optional per-point weights (defaults to uniform).
    """

    budget: LinkBudget
    weights: Optional[np.ndarray] = None


class CoverageObjective(Objective):
    """Negative mean Shannon capacity across evaluation points.

    The paper's coverage-task loss: "the negative sum of link capacity
    across different locations".  Capacity uses transmit MRT across the
    AP array: ``SNR_k = P_tx ‖h_k‖² / σ²``.
    """

    def __init__(
        self,
        form: LinearChannelForm,
        amplitudes: Optional[np.ndarray] = None,
        goal: Optional[CoverageGoal] = None,
    ):
        self.form = form
        self.dim = form.num_elements
        self.amplitudes = (
            np.ones(self.dim)
            if amplitudes is None
            else np.asarray(amplitudes, dtype=float).reshape(-1)
        )
        if self.amplitudes.shape != (self.dim,):
            raise OptimizationError("amplitudes shape mismatch")
        self.goal = goal or CoverageGoal(budget=LinkBudget())
        k = form.num_points
        if self.goal.weights is None:
            self._weights = np.full(k, 1.0 / k)
        else:
            w = np.asarray(self.goal.weights, dtype=float).reshape(-1)
            if w.shape != (k,) or np.any(w < 0):
                raise OptimizationError("weights must be non-negative, one per point")
            total = w.sum()
            if total <= 0:
                raise OptimizationError("weights must not all be zero")
            self._weights = w / total

    def snr_db(self, phases: np.ndarray) -> np.ndarray:
        """Per-point SNR (dB) at a phase vector — evaluation helper."""
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        h = self.form.evaluate(x)
        gains = np.sum(np.abs(h) ** 2, axis=1)
        return np.array([self.goal.budget.snr_db(g) for g in gains])

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        batch = self._check_batch(phases_batch)
        budget = self.goal.budget
        x = self.amplitudes[None, :] * np.exp(1j * batch)  # (P, E)
        h = self.form.evaluate_many(x)  # (P, K, M)
        power = np.sum(np.abs(h) ** 2, axis=2)  # (P, K)
        snr = budget.tx_power_watts * power / budget.noise_watts
        return -np.sum(self._weights[None, :] * np.log2(1.0 + snr), axis=1)

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        phases = self._check(phases)
        budget = self.goal.budget
        x = self.amplitudes * np.exp(1j * phases)
        h = self.form.evaluate(x)  # (K, M)
        power = np.sum(np.abs(h) ** 2, axis=1)  # ‖h_k‖²
        snr = budget.tx_power_watts * power / budget.noise_watts
        loss = -float(np.sum(self._weights * np.log2(1.0 + snr)))
        # ∂loss/∂P_k, then ∂P_k/∂φ via the linear form.
        dloss_dpower = -(
            self._weights
            * (budget.tx_power_watts / budget.noise_watts)
            / ((1.0 + snr) * _LN2)
        )
        # ∂P_k/∂h_km (Wirtinger) = conj(h_km); accumulate through C.
        w_h = dloss_dpower[:, None] * np.conj(h)  # (K, M)
        acc = np.einsum("km,kme->e", w_h, self.form.coeffs)
        return loss, _phase_gradient(x, acc)


class PoweringObjective(Objective):
    """Negative mean harvested power (dB-scaled) at charging points.

    Wireless powering cares about raw incident power, not capacity;
    the dB scaling keeps gradients well-conditioned across the huge
    dynamic range of RF energy harvesting.
    """

    def __init__(
        self,
        form: LinearChannelForm,
        amplitudes: Optional[np.ndarray] = None,
        budget: Optional[LinkBudget] = None,
    ):
        self.form = form
        self.dim = form.num_elements
        self.amplitudes = (
            np.ones(self.dim)
            if amplitudes is None
            else np.asarray(amplitudes, dtype=float).reshape(-1)
        )
        self.budget = budget or LinkBudget()

    def harvested_dbm(self, phases: np.ndarray) -> np.ndarray:
        """Per-point harvested power (dBm) — evaluation helper."""
        from ..core.units import watts_to_dbm

        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        h = self.form.evaluate(x)
        gains = np.sum(np.abs(h) ** 2, axis=1)
        return np.array(
            [watts_to_dbm(self.budget.tx_power_watts * g) for g in gains]
        )

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        batch = self._check_batch(phases_batch)
        x = self.amplitudes[None, :] * np.exp(1j * batch)
        h = self.form.evaluate_many(x)  # (P, K, M)
        power = np.sum(np.abs(h) ** 2, axis=2)  # (P, K)
        mean_power = np.mean(power, axis=1) + 1e-30
        return -10.0 * np.log10(mean_power)

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        h = self.form.evaluate(x)
        power = np.sum(np.abs(h) ** 2, axis=1)
        mean_power = float(np.mean(power)) + 1e-30
        loss = -10.0 * math.log10(mean_power)
        # d(-10·log10(mean P))/dP_k = -10 / (ln10 · mean P · K)
        k = self.form.num_points
        coef = -10.0 / (math.log(10.0) * mean_power * k)
        w_h = coef * np.conj(h)
        acc = np.einsum("km,kme->e", w_h, self.form.coeffs)
        return loss, _phase_gradient(x, acc)


class LocalizationObjective(Objective):
    """Softmax cross-entropy between the estimated and true AoA.

    For each client location ``k`` the AP observes ``h_k = C_k·x + d_k``.
    The estimator correlates ``h_k`` against per-angle predictions
    ``ĥ_i = P_i·x`` (matched filter over a candidate-angle grid) and
    normalizes into a spectrum ``S_ki ∈ [0,1]``; the loss is the mean
    cross-entropy of ``softmax(β·S_k)`` against the true angle index.
    """

    def __init__(
        self,
        form: LinearChannelForm,
        predictions: np.ndarray,
        true_angle_indices: Sequence[int],
        amplitudes: Optional[np.ndarray] = None,
        beta: float = 20.0,
        epsilon: float = 1e-18,
    ):
        self.form = form
        self.dim = form.num_elements
        self.predictions = np.asarray(predictions)  # (I, M, E)
        if (
            self.predictions.ndim != 3
            or self.predictions.shape[1] != form.num_antennas
            or self.predictions.shape[2] != form.num_elements
        ):
            raise OptimizationError(
                f"predictions shape {self.predictions.shape} incompatible "
                f"with form (·, {form.num_antennas}, {form.num_elements})"
            )
        self.true_idx = np.asarray(true_angle_indices, dtype=int)
        if self.true_idx.shape != (form.num_points,):
            raise OptimizationError("need one true angle index per point")
        num_angles = self.predictions.shape[0]
        if np.any(self.true_idx < 0) or np.any(self.true_idx >= num_angles):
            raise OptimizationError("true angle index out of range")
        self.amplitudes = (
            np.ones(self.dim)
            if amplitudes is None
            else np.asarray(amplitudes, dtype=float).reshape(-1)
        )
        if beta <= 0:
            raise OptimizationError("softmax temperature beta must be positive")
        self.beta = beta
        self.epsilon = epsilon

    # ------------------------------------------------------------------

    def _forward(self, x: np.ndarray):
        h = self.form.evaluate(x)  # (K, M)
        h_hat = self.predictions @ x  # (I, M)
        n_h = np.sum(np.abs(h) ** 2, axis=1)  # (K,)
        n_i = np.sum(np.abs(h_hat) ** 2, axis=1)  # (I,)
        r = np.conj(h) @ h_hat.T  # (K, I)
        denom = n_h[:, None] * n_i[None, :] + self.epsilon
        spectrum = np.abs(r) ** 2 / denom  # (K, I), in [0, 1]
        z = self.beta * spectrum
        z -= z.max(axis=1, keepdims=True)
        expz = np.exp(z)
        p = expz / expz.sum(axis=1, keepdims=True)
        return h, h_hat, n_h, n_i, r, denom, spectrum, p

    def spectrum(self, phases: np.ndarray) -> np.ndarray:
        """The (K, I) normalized AoA spectrum — the estimator's view."""
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        return self._forward(x)[6]

    def estimated_angle_indices(self, phases: np.ndarray) -> np.ndarray:
        """Argmax AoA estimate per point."""
        return np.argmax(self.spectrum(phases), axis=1)

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        batch = self._check_batch(phases_batch)
        x = self.amplitudes[None, :] * np.exp(1j * batch)  # (P, E)
        h = self.form.evaluate_many(x)  # (P, K, M)
        h_hat = np.tensordot(x, self.predictions, axes=([1], [2]))  # (P, I, M)
        n_h = np.sum(np.abs(h) ** 2, axis=2)  # (P, K)
        n_i = np.sum(np.abs(h_hat) ** 2, axis=2)  # (P, I)
        r = np.einsum("pkm,pim->pki", np.conj(h), h_hat)  # (P, K, I)
        denom = n_h[:, :, None] * n_i[:, None, :] + self.epsilon
        spectrum = np.abs(r) ** 2 / denom
        z = self.beta * spectrum
        z -= z.max(axis=2, keepdims=True)
        expz = np.exp(z)
        p = expz / expz.sum(axis=2, keepdims=True)
        k = self.form.num_points
        picked = p[:, np.arange(k), self.true_idx]  # (P, K)
        return -np.mean(np.log(picked + 1e-300), axis=1)

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        h, h_hat, n_h, n_i, r, denom, spectrum, p = self._forward(x)
        k = self.form.num_points
        one_hot = np.zeros_like(p)
        one_hot[np.arange(k), self.true_idx] = 1.0
        loss = float(-np.mean(np.log(p[np.arange(k), self.true_idx] + 1e-300)))
        # dL/dS (softmax cross-entropy), averaged over points.
        g_s = self.beta * (p - one_hot) / k  # (K, I)
        # ∂S/∂h and ∂S/∂ĥ (Wirtinger partials):
        #   ∂S_ki/∂h_km = (r_ki·conj(ĥ_im) − S_ki·N_i·conj(h_km)) / D_ki
        #   ∂S_ki/∂ĥ_im = (conj(r_ki)·conj(h_km) − S_ki·N_h·conj(ĥ_im)) / D_ki
        ratio = g_s / denom
        w_h = (ratio * r) @ np.conj(h_hat)  # (K, M)
        w_h -= np.conj(h) * np.sum(
            g_s * spectrum * n_i[None, :] / denom, axis=1
        )[:, None]
        w_hat = (ratio * np.conj(r)).T @ np.conj(h)  # (I, M)
        w_hat -= np.conj(h_hat) * np.sum(
            g_s * spectrum * n_h[:, None] / denom, axis=0
        )[:, None]
        acc = np.einsum("km,kme->e", w_h, self.form.coeffs)
        acc += np.einsum("im,ime->e", w_hat, self.predictions)
        return loss, _phase_gradient(x, acc)


class JointObjective(Objective):
    """Weighted sum of objectives sharing one phase vector.

    The paper's multitasking: "we minimize the sum of localization loss
    and coverage loss" with a single shared surface configuration.
    """

    def __init__(self, parts: Sequence[Tuple[Objective, float]]):
        if not parts:
            raise OptimizationError("joint objective needs at least one part")
        dims = {obj.dim for obj, _ in parts}
        if len(dims) != 1:
            raise OptimizationError(f"parts disagree on dimension: {dims}")
        self.parts: List[Tuple[Objective, float]] = list(parts)
        self.dim = dims.pop()

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        total = 0.0
        grad = np.zeros(self.dim)
        for objective, weight in self.parts:
            value, g = objective.value_and_gradient(phases)
            total += weight * value
            grad += weight * g
        return total, grad

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        batch = self._check_batch(phases_batch)
        total = np.zeros(batch.shape[0])
        for objective, weight in self.parts:
            total += weight * np.asarray(objective.value_many(batch))
        return total


# ----------------------------------------------------------------------
# stacked cross-task evaluation
# ----------------------------------------------------------------------
#
# The slotted-task loop in ``reoptimize()`` runs one optimizer per task.
# Serially, every optimizer iteration pays its own Python round trip
# through ``value_many`` — a handful of small NumPy calls per task per
# iteration.  :class:`StackedObjective` removes that multiplier: the
# per-task linear forms are stacked along a new task axis and each
# lockstep iteration's candidate batches evaluate as *one* batched
# GEMM (``np.matmul`` over ``(T, P, E) @ (T, E, K·M)``) plus one pass
# of vectorized loss math across all tasks.
#
# Determinism: a batched-matmul slice runs the *same* BLAS kernel with
# the *same* operand shapes as the per-task ``tensordot`` inside
# ``LinearChannelForm.evaluate_many``, and every loss reduction keeps
# its task-local axis order, so stacked losses are bit-identical to
# per-task evaluation (asserted in tests/orchestrator/test_stacked.py).


def _form_contraction(form: LinearChannelForm) -> np.ndarray:
    """``coeffs`` reshaped to the ``(E, K·M)`` GEMM operand.

    Exactly the operand layout ``np.tensordot(x, coeffs, ([1], [2]))``
    builds internally, so a matmul against it reproduces
    :meth:`LinearChannelForm.evaluate_many` bit for bit.
    """
    k, m, e = form.coeffs.shape
    return np.ascontiguousarray(form.coeffs.transpose(2, 0, 1).reshape(e, k * m))


class _CoverageStack:
    """Stackable kernel for one :class:`CoverageObjective`."""

    __slots__ = ("key", "amplitudes", "bt", "offset", "weights", "tx", "noise")

    def __init__(self, obj: "CoverageObjective"):
        form = obj.form
        self.key = ("coverage", form.num_points, form.num_antennas, form.num_elements)
        self.amplitudes = obj.amplitudes
        self.bt = _form_contraction(form)
        self.offset = form.offset
        self.weights = obj._weights
        self.tx = obj.goal.budget.tx_power_watts
        self.noise = obj.goal.budget.noise_watts

    @staticmethod
    def pack(kernels: Sequence["_CoverageStack"]) -> tuple:
        """Stack per-task operands once; reused across solver iterations."""
        return (
            np.stack([kern.amplitudes for kern in kernels]),
            np.stack([kern.bt for kern in kernels]),
            np.stack([kern.offset for kern in kernels])[:, None, :, :],
            np.stack([kern.weights for kern in kernels])[:, None, :],
            np.array([kern.tx for kern in kernels])[:, None, None],
            np.array([kern.noise for kern in kernels])[:, None, None],
        )

    @staticmethod
    def evaluate_packed(ops: tuple, batch: np.ndarray) -> np.ndarray:
        amps, bts, offsets, weights, tx, noise = ops
        g, p, e = batch.shape
        _, _, k, m = offsets.shape
        x = amps[:, None, :] * np.exp(1j * batch)  # (G, P, E)
        h = np.matmul(x, bts).reshape(g, p, k, m) + offsets
        power = np.sum(np.abs(h) ** 2, axis=3)  # (G, P, K)
        snr = tx * power / noise
        return -np.sum(weights * np.log2(1.0 + snr), axis=2)

    @staticmethod
    def evaluate(kernels: Sequence["_CoverageStack"], batch: np.ndarray) -> np.ndarray:
        return _CoverageStack.evaluate_packed(_CoverageStack.pack(kernels), batch)


class _PoweringStack:
    """Stackable kernel for one :class:`PoweringObjective`."""

    __slots__ = ("key", "amplitudes", "bt", "offset")

    def __init__(self, obj: "PoweringObjective"):
        form = obj.form
        self.key = ("powering", form.num_points, form.num_antennas, form.num_elements)
        self.amplitudes = obj.amplitudes
        self.bt = _form_contraction(form)
        self.offset = form.offset

    @staticmethod
    def pack(kernels: Sequence["_PoweringStack"]) -> tuple:
        """Stack per-task operands once; reused across solver iterations."""
        return (
            np.stack([kern.amplitudes for kern in kernels]),
            np.stack([kern.bt for kern in kernels]),
            np.stack([kern.offset for kern in kernels])[:, None, :, :],
        )

    @staticmethod
    def evaluate_packed(ops: tuple, batch: np.ndarray) -> np.ndarray:
        amps, bts, offsets = ops
        g, p, e = batch.shape
        _, _, k, m = offsets.shape
        x = amps[:, None, :] * np.exp(1j * batch)
        h = np.matmul(x, bts).reshape(g, p, k, m) + offsets
        power = np.sum(np.abs(h) ** 2, axis=3)
        mean_power = np.mean(power, axis=2) + 1e-30
        return -10.0 * np.log10(mean_power)

    @staticmethod
    def evaluate(kernels: Sequence["_PoweringStack"], batch: np.ndarray) -> np.ndarray:
        return _PoweringStack.evaluate_packed(_PoweringStack.pack(kernels), batch)


class _JointStack:
    """Stackable kernel for a :class:`JointObjective` of stackable parts."""

    __slots__ = ("key", "subkernels", "weights")

    def __init__(self, obj: "JointObjective"):
        self.subkernels = []
        self.weights = []
        subkeys = []
        for part, weight in obj.parts:
            kernel = _stack_kernel(part)
            if kernel is None:
                raise OptimizationError("joint part is not stackable")
            self.subkernels.append(kernel)
            self.weights.append(float(weight))
            subkeys.append(kernel.key)
        self.key = ("joint", tuple(subkeys))

    @staticmethod
    def pack(kernels: Sequence["_JointStack"]) -> tuple:
        """Per-position packed sub-operands plus the stacked weights."""
        packed = []
        for pos in range(len(kernels[0].subkernels)):
            subs = [kern.subkernels[pos] for kern in kernels]
            weights = np.array([kern.weights[pos] for kern in kernels])
            packed.append(
                (type(subs[0]), type(subs[0]).pack(subs), weights[:, None])
            )
        return tuple(packed)

    @staticmethod
    def evaluate_packed(ops: tuple, batch: np.ndarray) -> np.ndarray:
        g, p, _ = batch.shape
        total = np.zeros((g, p))
        for sub_type, sub_ops, weights in ops:
            total += weights * sub_type.evaluate_packed(sub_ops, batch)
        return total

    @staticmethod
    def evaluate(kernels: Sequence["_JointStack"], batch: np.ndarray) -> np.ndarray:
        return _JointStack.evaluate_packed(_JointStack.pack(kernels), batch)


def _stack_kernel(objective: Objective):
    """The stacked-evaluation kernel for an objective, or ``None``.

    Objectives without a kernel (localization, user-defined losses)
    still work inside a :class:`StackedObjective` — they just evaluate
    through their own ``value_many`` instead of the batched GEMM.
    """
    try:
        if type(objective) is CoverageObjective:
            return _CoverageStack(objective)
        if type(objective) is PoweringObjective:
            return _PoweringStack(objective)
        if type(objective) is JointObjective:
            return _JointStack(objective)
    except OptimizationError:
        return None
    return None


class StackedObjective(Objective):
    """Vertically stacked per-task objectives over one surface.

    Holds one objective per slotted task (all sharing the surface's
    phase dimension) and evaluates *per-task candidate batches* —
    which differ task to task — in one batched BLAS pass wherever the
    parts stack (coverage/link/powering/security losses over a
    :class:`LinearChannelForm`), falling back to per-part ``value_many``
    otherwise.  Built by the lockstep multi-task driver
    (:meth:`repro.orchestrator.optimizers.Optimizer.optimize_many`).

    This is *not* a scalar loss of one phase vector, so the scalar
    :class:`Objective` entry points raise; evaluation goes through
    :meth:`value_many_segments` / :meth:`value_chunks`.
    """

    def __init__(self, parts: Sequence[Objective]):
        if not parts:
            raise OptimizationError("stacked objective needs at least one part")
        dims = {p.dim for p in parts}
        if len(dims) != 1:
            raise OptimizationError(f"parts disagree on dimension: {dims}")
        self.parts: List[Objective] = list(parts)
        self.dim = dims.pop()
        self._kernels = [_stack_kernel(p) for p in self.parts]
        #: Packed operand stacks per group membership — the lockstep
        #: driver re-evaluates the same task groups every iteration, so
        #: the per-task operand stacking happens once, not per call.
        self._packed: dict = {}

    @property
    def num_parts(self) -> int:
        """T, the number of stacked tasks."""
        return len(self.parts)

    @property
    def stacked_parts(self) -> int:
        """How many parts evaluate through a batched kernel."""
        return sum(1 for k in self._kernels if k is not None)

    def value(self, phases: np.ndarray) -> float:
        raise OptimizationError(
            "stacked objectives evaluate via value_many_segments"
        )

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        raise OptimizationError(
            "stacked objectives evaluate via value_many_segments"
        )

    def value_many(self, phases_batch: np.ndarray) -> np.ndarray:
        raise OptimizationError(
            "stacked objectives evaluate via value_many_segments"
        )

    def value_many_segments(
        self, batches: Sequence[Optional[np.ndarray]]
    ) -> List[Optional[np.ndarray]]:
        """Losses per task for one candidate batch per task.

        ``batches[t]`` is task ``t``'s ``(P_t, E)`` candidate batch, or
        ``None`` to skip a finished task; returns one ``(P_t,)`` loss
        vector per task (``None`` where skipped), bit-identical to
        ``[self.parts[t].value_many(batches[t]) for t]``.
        """
        if len(batches) != len(self.parts):
            raise OptimizationError(
                f"{len(batches)} batches for {len(self.parts)} parts"
            )
        items = [
            (t, self.parts[t]._check_batch(b))
            for t, b in enumerate(batches)
            if b is not None
        ]
        values = self.value_chunks(items)
        out: List[Optional[np.ndarray]] = [None] * len(batches)
        for (t, _), value in zip(items, values):
            out[t] = value
        return out

    def value_chunks(
        self, items: Sequence[Tuple[int, np.ndarray]]
    ) -> List[np.ndarray]:
        """Evaluate ``(part_index, rows)`` chunks, batching across parts.

        The evaluator's distribution unit: chunks with the same kernel
        shape and row count collapse into one batched matmul; the rest
        evaluate through their part's own ``value_many``.  Results come
        back in input order.  Grouping never changes bits — a batched
        GEMM slice equals the standalone GEMM for the same operands.
        """
        results: List[Optional[np.ndarray]] = [None] * len(items)
        groups: dict = {}
        for pos, (part_index, rows) in enumerate(items):
            kernel = self._kernels[part_index]
            if kernel is None:
                results[pos] = np.atleast_1d(
                    np.asarray(self.parts[part_index].value_many(rows))
                )
                continue
            groups.setdefault((kernel.key, rows.shape[0]), []).append(
                (pos, part_index, rows)
            )
        for members in groups.values():
            kernels = [self._kernels[pi] for _, pi, _ in members]
            kind = type(kernels[0])
            cache_key = tuple(pi for _, pi, _ in members)
            ops = self._packed.get(cache_key)
            if ops is None:
                ops = kind.pack(kernels)
                self._packed[cache_key] = ops
            batch = np.stack([rows for _, _, rows in members])
            values = kind.evaluate_packed(ops, batch)
            for row, (pos, _, _) in zip(values, members):
                results[pos] = row
        return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# evaluation-spec export (process-pool backend)
# ----------------------------------------------------------------------
#
# The process backend can't share Python objects with its workers, so
# supported objectives export a *spec*: plain scalars plus tokens for
# every large array, published once into shared memory by the caller's
# ``put_array``.  Workers rebuild the objective from the spec with
# zero-copy views over the shared segments and then run the exact same
# ``value_many`` code path as the parent — bit-identity by
# construction, not by reimplementation.


def export_objective(objective: Objective, put_array) -> dict:
    """Serializable evaluation spec for a supported objective.

    ``put_array(ndarray) -> token`` publishes an array (e.g. into
    shared memory) and returns a token ``restore_objective`` can hand
    back to fetch it.  Raises :class:`OptimizationError` for objective
    types without an export (the evaluator then falls back to in-process
    evaluation).
    """
    if type(objective) is CoverageObjective:
        return {
            "kind": "coverage",
            "surface": objective.form.surface_id,
            "coeffs": put_array(objective.form.coeffs),
            "offset": put_array(objective.form.offset),
            "amplitudes": put_array(objective.amplitudes),
            "weights": (
                None
                if objective.goal.weights is None
                else put_array(np.asarray(objective.goal.weights, dtype=float))
            ),
            "budget": _export_budget(objective.goal.budget),
        }
    if type(objective) is PoweringObjective:
        return {
            "kind": "powering",
            "surface": objective.form.surface_id,
            "coeffs": put_array(objective.form.coeffs),
            "offset": put_array(objective.form.offset),
            "amplitudes": put_array(objective.amplitudes),
            "budget": _export_budget(objective.budget),
        }
    if type(objective) is LocalizationObjective:
        return {
            "kind": "localization",
            "surface": objective.form.surface_id,
            "coeffs": put_array(objective.form.coeffs),
            "offset": put_array(objective.form.offset),
            "amplitudes": put_array(objective.amplitudes),
            "predictions": put_array(objective.predictions),
            "true_idx": put_array(objective.true_idx),
            "beta": objective.beta,
            "epsilon": objective.epsilon,
        }
    if type(objective) is JointObjective:
        return {
            "kind": "joint",
            "parts": [
                [export_objective(part, put_array), float(weight)]
                for part, weight in objective.parts
            ],
        }
    if type(objective) is StackedObjective:
        return {
            "kind": "stacked",
            "parts": [
                export_objective(part, put_array) for part in objective.parts
            ],
        }
    raise OptimizationError(
        f"no evaluation spec for {type(objective).__name__}"
    )


def restore_objective(spec: dict, get_array) -> Objective:
    """Rebuild an objective from :func:`export_objective`'s spec.

    ``get_array(token) -> ndarray`` resolves array tokens (typically
    attaching shared-memory segments).  The rebuilt objective runs the
    same evaluation code as the original.
    """
    kind = spec["kind"]
    if kind == "coverage":
        weights = None if spec["weights"] is None else get_array(spec["weights"])
        return CoverageObjective(
            _restore_form(spec, get_array),
            amplitudes=get_array(spec["amplitudes"]),
            goal=CoverageGoal(
                budget=_restore_budget(spec["budget"]), weights=weights
            ),
        )
    if kind == "powering":
        return PoweringObjective(
            _restore_form(spec, get_array),
            amplitudes=get_array(spec["amplitudes"]),
            budget=_restore_budget(spec["budget"]),
        )
    if kind == "localization":
        return LocalizationObjective(
            _restore_form(spec, get_array),
            predictions=get_array(spec["predictions"]),
            true_angle_indices=get_array(spec["true_idx"]),
            amplitudes=get_array(spec["amplitudes"]),
            beta=spec["beta"],
            epsilon=spec["epsilon"],
        )
    if kind == "joint":
        return JointObjective(
            [
                (restore_objective(part, get_array), weight)
                for part, weight in spec["parts"]
            ]
        )
    if kind == "stacked":
        return StackedObjective(
            [restore_objective(part, get_array) for part in spec["parts"]]
        )
    raise OptimizationError(f"unknown evaluation spec kind {kind!r}")


def _restore_form(spec: dict, get_array) -> LinearChannelForm:
    return LinearChannelForm(
        surface_id=spec["surface"],
        coeffs=get_array(spec["coeffs"]),
        offset=get_array(spec["offset"]),
    )


def _export_budget(budget: LinkBudget) -> List[float]:
    return [budget.tx_power_dbm, budget.bandwidth_hz, budget.noise_figure_db]


def _restore_budget(fields: Sequence[float]) -> LinkBudget:
    return LinkBudget(
        tx_power_dbm=fields[0],
        bandwidth_hz=fields[1],
        noise_figure_db=fields[2],
    )


class FiniteDifferenceObjective(Objective):
    """Wrap any black-box loss with central finite differences.

    Exists for cross-checking analytic gradients in tests and for
    exotic user-defined losses; O(dim) evaluations per gradient.
    """

    def __init__(self, fn, dim: int, step: float = 1e-6):
        self._fn = fn
        self.dim = dim
        self.step = step

    def value(self, phases: np.ndarray) -> float:
        return float(self._fn(self._check(phases)))

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        phases = self._check(phases)
        base = self.value(phases)
        grad = np.zeros(self.dim)
        for e in range(self.dim):
            up = phases.copy()
            down = phases.copy()
            up[e] += self.step
            down[e] -= self.step
            grad[e] = (self._fn(up) - self._fn(down)) / (2.0 * self.step)
        return base, grad
