"""Analysis helpers: CDFs, heatmaps, text tables."""

from .cdf import EmpiricalCDF, cdf_table, summarize
from .heatmap import Heatmap
from .tables import render_table

__all__ = ["EmpiricalCDF", "Heatmap", "cdf_table", "render_table", "summarize"]
