"""Spatial heatmaps over room grids (the paper's Figs. 2 and 4a).

Benchmarks run headless, so heatmaps render as ASCII shade ramps —
enough to see beams, shadows, and doorway leaks in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class Heatmap:
    """Values sampled on a regular 2-D grid of points.

    Built from the ``(K, 3)`` point array a room grid produced and the
    matching ``(K,)`` values; reconstructs the grid axes from the
    unique coordinates.
    """

    points: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        points = np.atleast_2d(np.asarray(self.points, dtype=float))
        values = np.asarray(self.values, dtype=float).reshape(-1)
        if points.shape[0] != values.size:
            raise ValueError(
                f"{points.shape[0]} points but {values.size} values"
            )
        object.__setattr__(self, "points", points)
        object.__setattr__(self, "values", values)

    def grid(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(xs, ys, Z) with Z[y, x] the value grid (NaN where missing)."""
        xs = np.unique(np.round(self.points[:, 0], 6))
        ys = np.unique(np.round(self.points[:, 1], 6))
        z = np.full((ys.size, xs.size), np.nan)
        xi = {x: i for i, x in enumerate(xs)}
        yi = {y: i for i, y in enumerate(ys)}
        for point, value in zip(self.points, self.values):
            z[yi[round(point[1], 6)], xi[round(point[0], 6)]] = value
        return xs, ys, z

    def stats(self) -> Dict[str, float]:
        """Summary statistics of the sampled values."""
        return {
            "min": float(self.values.min()),
            "median": float(np.median(self.values)),
            "mean": float(self.values.mean()),
            "max": float(self.values.max()),
        }

    def render(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        title: str = "",
    ) -> str:
        """ASCII rendering, north (max y) at the top."""
        xs, ys, z = self.grid()
        lo = float(np.nanmin(z)) if lo is None else lo
        hi = float(np.nanmax(z)) if hi is None else hi
        span = hi - lo if hi > lo else 1.0
        lines = []
        if title:
            lines.append(title)
        for row in z[::-1]:
            chars = []
            for value in row:
                if np.isnan(value):
                    chars.append(" ")
                else:
                    level = (value - lo) / span
                    idx = int(np.clip(level, 0.0, 1.0) * (len(_RAMP) - 1))
                    chars.append(_RAMP[idx])
            lines.append("".join(chars))
        lines.append(f"scale: '{_RAMP[0]}'={lo:.1f} → '{_RAMP[-1]}'={hi:.1f}")
        return "\n".join(lines)
