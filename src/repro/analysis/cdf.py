"""Empirical CDFs for the paper's Figure-5-style evaluations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical distribution over scalar samples."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        arr = np.sort(np.asarray(self.samples, dtype=float).reshape(-1))
        if arr.size == 0:
            raise ValueError("CDF needs at least one sample")
        object.__setattr__(self, "samples", arr)

    @property
    def count(self) -> int:
        """Number of samples."""
        return self.samples.size

    def at(self, value: float) -> float:
        """P(X <= value)."""
        return float(np.searchsorted(self.samples, value, side="right")) / (
            self.count
        )

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        return float(np.percentile(self.samples, q))

    @property
    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def curve(self, points: int = 50) -> Tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays for plotting/tabulating the CDF."""
        xs = np.linspace(self.samples[0], self.samples[-1], points)
        ys = np.array([self.at(x) for x in xs])
        return xs, ys


def cdf_table(
    cdfs: Dict[str, EmpiricalCDF],
    xs: Sequence[float],
    value_format: str = "{:.2f}",
) -> List[List[str]]:
    """Rows of F(x) per series at shared x values (for text rendering)."""
    rows = []
    for x in xs:
        row = [value_format.format(x)]
        row.extend(f"{cdf.at(x):.2f}" for cdf in cdfs.values())
        rows.append(row)
    return rows


def summarize(
    cdfs: Dict[str, EmpiricalCDF], percentiles: Sequence[float] = (10, 50, 90)
) -> Dict[str, Dict[str, float]]:
    """Percentile summary per series."""
    return {
        name: {f"p{int(q)}": cdf.percentile(q) for q in percentiles}
        for name, cdf in cdfs.items()
    }
