"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """A boxed, column-aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.extend([separator, line(headers), separator])
    out.extend(line(row) for row in str_rows)
    out.append(separator)
    return "\n".join(out)
