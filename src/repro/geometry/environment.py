"""The 3-D environment model consumed by the channel simulator.

An :class:`Environment` is a set of walls, box obstacles, and named
rooms.  It answers the only questions the ray model asks:

* what penetration loss does a straight segment accumulate,
* is there line of sight between two points,
* which walls can host a first-order specular reflection.

Obstacles split into *static* (furniture that is part of the floor
plan) and *dynamic* (humans, movable furniture) so the runtime layer
can mutate the latter; every mutation bumps :attr:`Environment.version`
so channel caches know to invalidate.

Mutations additionally record *which region of space changed* (an
axis-aligned bounding box) in a bounded dirty log, so incremental
consumers — the channel simulator's per-leg cache — can purge only the
cached results whose ray corridors intersect a changed region instead
of re-tracing the world.  :meth:`Environment.dirty_regions` replays the
log between two versions; it returns ``None`` whenever the log cannot
prove the change set (rotated-out entries, or a mutation recorded
without a region), which consumers must treat as "everything changed".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .materials import Material
from .shapes import Box, Room, Wall
from .vec import as_vec3

#: AABB of one mutated region: ``(lo, hi)`` corners.
DirtyRegion = Tuple[np.ndarray, np.ndarray]

#: Bound on the dirty log; older mutations rotate out and force a full
#: purge in consumers that fell that far behind.
_DIRTY_LOG_LEN = 256


def _wall_aabb(wall: Wall) -> DirtyRegion:
    footprint = np.stack([wall.start, wall.end])
    lo = footprint.min(axis=0)
    hi = footprint.max(axis=0)
    lo[2] = wall.z_min
    hi[2] = wall.z_max
    return lo, hi


def _box_aabb(box: Box) -> DirtyRegion:
    return np.array(box.lo, dtype=float), np.array(box.hi, dtype=float)


def _union_aabb(a: DirtyRegion, b: DirtyRegion) -> DirtyRegion:
    return np.minimum(a[0], b[0]), np.maximum(a[1], b[1])


class Environment:
    """Walls + obstacles + rooms making up one radio environment.

    Attributes:
        name: label for diagnostics.
        ceiling_height: default wall height used by convenience adders.
    """

    def __init__(self, name: str = "environment", ceiling_height: float = 3.0):
        self.name = name
        self.ceiling_height = ceiling_height
        self._walls: List[Wall] = []
        self._static_boxes: List[Box] = []
        self._dynamic_boxes: Dict[str, Box] = {}
        self._rooms: Dict[str, Room] = {}
        self._version = 0
        self._dirty_log: Deque[Tuple[int, Optional[DirtyRegion]]] = deque(
            maxlen=_DIRTY_LOG_LEN
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every geometry mutation."""
        return self._version

    def record_mutation(self, region: Optional[DirtyRegion] = None) -> int:
        """Bump :attr:`version`, attributing the change to ``region``.

        Every built-in mutator calls this with the AABB it touched;
        external code that mutates geometry it handed to the
        environment (e.g. editing a wall in place) must call it too —
        without a region, which makes incremental caches fall back to
        a full purge.  Returns the new version.
        """
        self._version += 1
        self._dirty_log.append((self._version, region))
        return self._version

    def dirty_regions(self, since_version: int) -> Optional[List[DirtyRegion]]:
        """The regions mutated after ``since_version``, if provable.

        Returns a (possibly empty) list of AABBs covering every
        mutation in ``(since_version, version]``, or ``None`` when the
        log cannot account for all of them — entries rotated out of the
        bounded log, ``since_version`` from the future, or any mutation
        recorded without a region.  ``None`` means "assume everything
        changed".
        """
        if since_version == self._version:
            return []
        if since_version > self._version:
            return None
        covered = [v for v, _ in self._dirty_log if v > since_version]
        if len(covered) != self._version - since_version:
            return None  # log rotation left a gap
        regions: List[DirtyRegion] = []
        for v, region in self._dirty_log:
            if v <= since_version:
                continue
            if region is None:
                return None  # unattributed mutation
            regions.append(region)
        return regions

    def add_wall(self, wall: Wall) -> Wall:
        """Add a wall and return it."""
        self._walls.append(wall)
        self.record_mutation(_wall_aabb(wall))
        return wall

    def add_wall_2d(
        self,
        start: Sequence[float],
        end: Sequence[float],
        material: Material,
        name: str = "",
        z_min: float = 0.0,
        z_max: Optional[float] = None,
    ) -> Wall:
        """Convenience: add a floor-to-ceiling wall from 2-D endpoints."""
        wall = Wall(
            start=as_vec3(start),
            end=as_vec3(end),
            material=material,
            z_min=z_min,
            z_max=self.ceiling_height if z_max is None else z_max,
            name=name,
        )
        return self.add_wall(wall)

    def add_box(self, box: Box) -> Box:
        """Add a static obstacle."""
        self._static_boxes.append(box)
        self.record_mutation(_box_aabb(box))
        return box

    def add_dynamic_box(self, key: str, box: Box) -> Box:
        """Add or replace a movable obstacle under a stable key."""
        region = _box_aabb(box)
        old = self._dynamic_boxes.get(key)
        if old is not None:
            region = _union_aabb(region, _box_aabb(old))
        self._dynamic_boxes[key] = box
        self.record_mutation(region)
        return box

    def move_dynamic_box(self, key: str, offset: Sequence[float]) -> Box:
        """Translate a movable obstacle; returns the new box."""
        if key not in self._dynamic_boxes:
            raise KeyError(f"no dynamic obstacle named {key!r}")
        old = self._dynamic_boxes[key]
        moved = old.translated(as_vec3(offset))
        self._dynamic_boxes[key] = moved
        self.record_mutation(_union_aabb(_box_aabb(old), _box_aabb(moved)))
        return moved

    def remove_dynamic_box(self, key: str) -> None:
        """Remove a movable obstacle."""
        if key not in self._dynamic_boxes:
            raise KeyError(f"no dynamic obstacle named {key!r}")
        old = self._dynamic_boxes.pop(key)
        self.record_mutation(_box_aabb(old))

    def add_room(self, room: Room) -> Room:
        """Register a named room region."""
        if room.name in self._rooms:
            raise ValueError(f"room {room.name!r} already defined")
        self._rooms[room.name] = room
        return room

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def walls(self) -> Tuple[Wall, ...]:
        """All walls."""
        return tuple(self._walls)

    @property
    def boxes(self) -> Tuple[Box, ...]:
        """All obstacles, static then dynamic."""
        return tuple(self._static_boxes) + tuple(self._dynamic_boxes.values())

    @property
    def rooms(self) -> Dict[str, Room]:
        """Registered rooms by name."""
        return dict(self._rooms)

    def room(self, name: str) -> Room:
        """Look up a room by name."""
        try:
            return self._rooms[name]
        except KeyError:
            known = ", ".join(sorted(self._rooms)) or "(none)"
            raise KeyError(f"unknown room {name!r}; known: {known}") from None

    def obstructions_on_segment(
        self, a: Sequence[float], b: Sequence[float]
    ) -> List[Material]:
        """Materials of every wall/box the open segment ``a→b`` crosses."""
        a3, b3 = as_vec3(a), as_vec3(b)
        hit: List[Material] = []
        for wall in self._walls:
            if wall.intersect_segment(a3, b3) is not None:
                hit.append(wall.material)
        for box in self.boxes:
            if box.intersects_segment(a3, b3):
                hit.append(box.material)
        return hit

    def penetration_loss_db(
        self, a: Sequence[float], b: Sequence[float], frequency_hz: float
    ) -> float:
        """Total one-way penetration loss (dB) along segment ``a→b``."""
        return sum(
            m.penetration_loss_db(frequency_hz)
            for m in self.obstructions_on_segment(a, b)
        )

    def penetration_amplitude(
        self, a: Sequence[float], b: Sequence[float], frequency_hz: float
    ) -> float:
        """Linear amplitude factor for all obstructions along ``a→b``."""
        return 10.0 ** (-self.penetration_loss_db(a, b, frequency_hz) / 20.0)

    def is_line_of_sight(self, a: Sequence[float], b: Sequence[float]) -> bool:
        """True when no wall or obstacle crosses the open segment."""
        return not self.obstructions_on_segment(a, b)

    def reflective_walls(self, min_reflectivity: float = 0.05) -> List[Wall]:
        """Walls worth considering for specular bounce paths."""
        return [w for w in self._walls if w.material.reflectivity >= min_reflectivity]

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds covering every wall footprint."""
        if not self._walls:
            raise ValueError("environment has no walls")
        pts = np.concatenate(
            [np.stack([w.start, w.end]) for w in self._walls], axis=0
        )
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        hi[2] = max(hi[2], self.ceiling_height)
        return lo, hi

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"Environment({self.name!r}: {len(self._walls)} walls, "
            f"{len(self._static_boxes)} static + {len(self._dynamic_boxes)} "
            f"dynamic obstacles, rooms: {sorted(self._rooms) or '-'})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def describe_obstructions(
    env: Environment, a: Sequence[float], b: Sequence[float]
) -> str:
    """Human-readable obstruction list for diagnostics tooling."""
    mats = env.obstructions_on_segment(a, b)
    if not mats:
        return "line of sight"
    names = ", ".join(m.name for m in mats)
    return f"blocked by: {names}"
