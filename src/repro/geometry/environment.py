"""The 3-D environment model consumed by the channel simulator.

An :class:`Environment` is a set of walls, box obstacles, and named
rooms.  It answers the only questions the ray model asks:

* what penetration loss does a straight segment accumulate,
* is there line of sight between two points,
* which walls can host a first-order specular reflection.

Obstacles split into *static* (furniture that is part of the floor
plan) and *dynamic* (humans, movable furniture) so the runtime layer
can mutate the latter; every mutation bumps :attr:`Environment.version`
so channel caches know to invalidate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .materials import Material
from .shapes import Box, Room, Wall
from .vec import as_vec3


class Environment:
    """Walls + obstacles + rooms making up one radio environment.

    Attributes:
        name: label for diagnostics.
        ceiling_height: default wall height used by convenience adders.
    """

    def __init__(self, name: str = "environment", ceiling_height: float = 3.0):
        self.name = name
        self.ceiling_height = ceiling_height
        self._walls: List[Wall] = []
        self._static_boxes: List[Box] = []
        self._dynamic_boxes: Dict[str, Box] = {}
        self._rooms: Dict[str, Room] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every geometry mutation."""
        return self._version

    def add_wall(self, wall: Wall) -> Wall:
        """Add a wall and return it."""
        self._walls.append(wall)
        self._version += 1
        return wall

    def add_wall_2d(
        self,
        start: Sequence[float],
        end: Sequence[float],
        material: Material,
        name: str = "",
        z_min: float = 0.0,
        z_max: Optional[float] = None,
    ) -> Wall:
        """Convenience: add a floor-to-ceiling wall from 2-D endpoints."""
        wall = Wall(
            start=as_vec3(start),
            end=as_vec3(end),
            material=material,
            z_min=z_min,
            z_max=self.ceiling_height if z_max is None else z_max,
            name=name,
        )
        return self.add_wall(wall)

    def add_box(self, box: Box) -> Box:
        """Add a static obstacle."""
        self._static_boxes.append(box)
        self._version += 1
        return box

    def add_dynamic_box(self, key: str, box: Box) -> Box:
        """Add or replace a movable obstacle under a stable key."""
        self._dynamic_boxes[key] = box
        self._version += 1
        return box

    def move_dynamic_box(self, key: str, offset: Sequence[float]) -> Box:
        """Translate a movable obstacle; returns the new box."""
        if key not in self._dynamic_boxes:
            raise KeyError(f"no dynamic obstacle named {key!r}")
        moved = self._dynamic_boxes[key].translated(as_vec3(offset))
        self._dynamic_boxes[key] = moved
        self._version += 1
        return moved

    def remove_dynamic_box(self, key: str) -> None:
        """Remove a movable obstacle."""
        if key not in self._dynamic_boxes:
            raise KeyError(f"no dynamic obstacle named {key!r}")
        del self._dynamic_boxes[key]
        self._version += 1

    def add_room(self, room: Room) -> Room:
        """Register a named room region."""
        if room.name in self._rooms:
            raise ValueError(f"room {room.name!r} already defined")
        self._rooms[room.name] = room
        return room

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def walls(self) -> Tuple[Wall, ...]:
        """All walls."""
        return tuple(self._walls)

    @property
    def boxes(self) -> Tuple[Box, ...]:
        """All obstacles, static then dynamic."""
        return tuple(self._static_boxes) + tuple(self._dynamic_boxes.values())

    @property
    def rooms(self) -> Dict[str, Room]:
        """Registered rooms by name."""
        return dict(self._rooms)

    def room(self, name: str) -> Room:
        """Look up a room by name."""
        try:
            return self._rooms[name]
        except KeyError:
            known = ", ".join(sorted(self._rooms)) or "(none)"
            raise KeyError(f"unknown room {name!r}; known: {known}") from None

    def obstructions_on_segment(
        self, a: Sequence[float], b: Sequence[float]
    ) -> List[Material]:
        """Materials of every wall/box the open segment ``a→b`` crosses."""
        a3, b3 = as_vec3(a), as_vec3(b)
        hit: List[Material] = []
        for wall in self._walls:
            if wall.intersect_segment(a3, b3) is not None:
                hit.append(wall.material)
        for box in self.boxes:
            if box.intersects_segment(a3, b3):
                hit.append(box.material)
        return hit

    def penetration_loss_db(
        self, a: Sequence[float], b: Sequence[float], frequency_hz: float
    ) -> float:
        """Total one-way penetration loss (dB) along segment ``a→b``."""
        return sum(
            m.penetration_loss_db(frequency_hz)
            for m in self.obstructions_on_segment(a, b)
        )

    def penetration_amplitude(
        self, a: Sequence[float], b: Sequence[float], frequency_hz: float
    ) -> float:
        """Linear amplitude factor for all obstructions along ``a→b``."""
        return 10.0 ** (-self.penetration_loss_db(a, b, frequency_hz) / 20.0)

    def is_line_of_sight(self, a: Sequence[float], b: Sequence[float]) -> bool:
        """True when no wall or obstacle crosses the open segment."""
        return not self.obstructions_on_segment(a, b)

    def reflective_walls(self, min_reflectivity: float = 0.05) -> List[Wall]:
        """Walls worth considering for specular bounce paths."""
        return [w for w in self._walls if w.material.reflectivity >= min_reflectivity]

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounds covering every wall footprint."""
        if not self._walls:
            raise ValueError("environment has no walls")
        pts = np.concatenate(
            [np.stack([w.start, w.end]) for w in self._walls], axis=0
        )
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        hi[2] = max(hi[2], self.ceiling_height)
        return lo, hi

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"Environment({self.name!r}: {len(self._walls)} walls, "
            f"{len(self._static_boxes)} static + {len(self._dynamic_boxes)} "
            f"dynamic obstacles, rooms: {sorted(self._rooms) or '-'})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.summary()


def describe_obstructions(
    env: Environment, a: Sequence[float], b: Sequence[float]
) -> str:
    """Human-readable obstruction list for diagnostics tooling."""
    mats = env.obstructions_on_segment(a, b)
    if not mats:
        return "line of sight"
    names = ", ".join(m.name for m in mats)
    return f"blocked by: {names}"
