"""Small 3-D vector helpers.

Points and directions are plain ``numpy`` arrays of shape ``(3,)``;
these helpers keep construction and the handful of common operations
explicit and validated rather than scattering ad-hoc array math around
the codebase.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Union

import numpy as np

Vec3Like = Union[Sequence[float], np.ndarray]


def vec3(x: float, y: float, z: float = 0.0) -> np.ndarray:
    """Build a 3-D point/direction as a float ndarray."""
    return np.array([x, y, z], dtype=float)


def as_vec3(value: Vec3Like) -> np.ndarray:
    """Coerce a 2- or 3-sequence to a 3-D ndarray (z defaults to 0)."""
    arr = np.asarray(value, dtype=float).reshape(-1)
    if arr.size == 2:
        return np.array([arr[0], arr[1], 0.0])
    if arr.size == 3:
        return arr.copy()
    raise ValueError(f"expected 2 or 3 components, got {arr.size}")


def distance(a: Vec3Like, b: Vec3Like) -> float:
    """Euclidean distance between two points."""
    return float(np.linalg.norm(as_vec3(a) - as_vec3(b)))


def norm(v: Vec3Like) -> float:
    """Euclidean length of a vector."""
    return float(np.linalg.norm(as_vec3(v)))


def normalize(v: Vec3Like) -> np.ndarray:
    """Unit vector in the direction of ``v``."""
    arr = as_vec3(v)
    length = np.linalg.norm(arr)
    if length == 0.0:
        raise ValueError("cannot normalize the zero vector")
    return arr / length


def dot(a: Vec3Like, b: Vec3Like) -> float:
    """Dot product."""
    return float(np.dot(as_vec3(a), as_vec3(b)))


def cross(a: Vec3Like, b: Vec3Like) -> np.ndarray:
    """Cross product."""
    return np.cross(as_vec3(a), as_vec3(b))


def lerp(a: Vec3Like, b: Vec3Like, t: float) -> np.ndarray:
    """Linear interpolation between two points."""
    av, bv = as_vec3(a), as_vec3(b)
    return av + (bv - av) * t


def azimuth_of(direction: Vec3Like) -> float:
    """Azimuth angle (radians, CCW from +x) of a direction's xy part."""
    d = as_vec3(direction)
    return math.atan2(d[1], d[0])


def centroid(points: Iterable[Vec3Like]) -> np.ndarray:
    """Mean point of a non-empty collection."""
    pts = [as_vec3(p) for p in points]
    if not pts:
        raise ValueError("centroid of empty point set")
    return np.mean(np.stack(pts), axis=0)
