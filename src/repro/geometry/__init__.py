"""Geometry substrate: vectors, shapes, materials, environments."""

from .environment import Environment, describe_obstructions
from .floorplans import (
    ApartmentLayout,
    ApartmentSites,
    apartment_sites,
    two_room_apartment,
)
from .materials import (
    BRICK,
    CONCRETE,
    DRYWALL,
    GLASS,
    HUMAN,
    MATERIALS,
    METAL,
    WOOD,
    Material,
    get_material,
    list_materials,
)
from .shapes import Box, Room, Wall
from .vec import (
    as_vec3,
    azimuth_of,
    centroid,
    cross,
    distance,
    dot,
    lerp,
    norm,
    normalize,
    vec3,
)

__all__ = [
    "ApartmentLayout",
    "ApartmentSites",
    "BRICK",
    "Box",
    "CONCRETE",
    "DRYWALL",
    "Environment",
    "GLASS",
    "HUMAN",
    "MATERIALS",
    "METAL",
    "Material",
    "Room",
    "WOOD",
    "Wall",
    "apartment_sites",
    "as_vec3",
    "azimuth_of",
    "centroid",
    "cross",
    "describe_obstructions",
    "distance",
    "dot",
    "get_material",
    "lerp",
    "list_materials",
    "norm",
    "normalize",
    "two_room_apartment",
    "vec3",
]
