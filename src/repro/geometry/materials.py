"""Building materials with frequency-dependent radio properties.

Penetration loss grows with carrier frequency: drywall is nearly
transparent at 2.4 GHz but lossy at 60 GHz, while concrete blocks
mmWave almost completely.  We model each material with a penetration
loss that interpolates log-linearly in frequency between anchor points
taken from published measurement surveys (ITU-R P.2040-style values),
plus a reflection coefficient used by the first-order specular bounce
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import math


@dataclass(frozen=True)
class Material:
    """A wall/obstacle material.

    Attributes:
        name: human-readable identifier.
        loss_anchors: ``(frequency_hz, penetration_loss_db)`` pairs,
            sorted by frequency, that define the loss curve.
        reflectivity: amplitude reflection coefficient magnitude in
            [0, 1] used for specular bounce paths.
    """

    name: str
    loss_anchors: Tuple[Tuple[float, float], ...]
    reflectivity: float = 0.4

    def __post_init__(self) -> None:
        if not self.loss_anchors:
            raise ValueError(f"material {self.name!r} needs >=1 loss anchor")
        freqs = [f for f, _ in self.loss_anchors]
        if freqs != sorted(freqs):
            raise ValueError(f"material {self.name!r} anchors must be freq-sorted")
        if not 0.0 <= self.reflectivity <= 1.0:
            raise ValueError("reflectivity must lie in [0, 1]")

    def penetration_loss_db(self, frequency_hz: float) -> float:
        """One-way penetration loss (dB) at a carrier frequency.

        Interpolates linearly in log-frequency between anchors and
        clamps flat outside the anchored range.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        anchors = self.loss_anchors
        if frequency_hz <= anchors[0][0]:
            return anchors[0][1]
        if frequency_hz >= anchors[-1][0]:
            return anchors[-1][1]
        for (f_lo, l_lo), (f_hi, l_hi) in zip(anchors, anchors[1:]):
            if f_lo <= frequency_hz <= f_hi:
                t = (math.log10(frequency_hz) - math.log10(f_lo)) / (
                    math.log10(f_hi) - math.log10(f_lo)
                )
                return l_lo + t * (l_hi - l_lo)
        raise AssertionError("unreachable: anchors cover the range")

    def penetration_amplitude(self, frequency_hz: float) -> float:
        """Linear amplitude transmission factor through the material."""
        return 10.0 ** (-self.penetration_loss_db(frequency_hz) / 20.0)


def _g(value_ghz: float) -> float:
    return value_ghz * 1e9


#: Interior partition wall: almost transparent at sub-6, lossy at mmWave.
DRYWALL = Material(
    name="drywall",
    loss_anchors=((_g(2.4), 3.0), (_g(5.0), 4.0), (_g(28.0), 8.0), (_g(60.0), 12.0)),
    reflectivity=0.35,
)

#: Load-bearing wall: effectively opaque at mmWave.
CONCRETE = Material(
    name="concrete",
    loss_anchors=((_g(2.4), 12.0), (_g(5.0), 16.0), (_g(28.0), 45.0), (_g(60.0), 70.0)),
    reflectivity=0.55,
)

#: Brick exterior wall.
BRICK = Material(
    name="brick",
    loss_anchors=((_g(2.4), 8.0), (_g(5.0), 10.0), (_g(28.0), 28.0), (_g(60.0), 40.0)),
    reflectivity=0.45,
)

#: Single-pane glass (windows): low loss, decent reflector at mmWave.
GLASS = Material(
    name="glass",
    loss_anchors=((_g(2.4), 2.0), (_g(5.0), 2.5), (_g(28.0), 4.0), (_g(60.0), 6.0)),
    reflectivity=0.5,
)

#: Wooden furniture / doors.
WOOD = Material(
    name="wood",
    loss_anchors=((_g(2.4), 3.0), (_g(5.0), 4.0), (_g(28.0), 7.0), (_g(60.0), 10.0)),
    reflectivity=0.25,
)

#: Human body (for dynamic blockage events): severe at mmWave.
HUMAN = Material(
    name="human",
    loss_anchors=((_g(2.4), 4.0), (_g(5.0), 6.0), (_g(28.0), 20.0), (_g(60.0), 30.0)),
    reflectivity=0.2,
)

#: Metal: opaque at all bands, strong reflector.
METAL = Material(
    name="metal",
    loss_anchors=((_g(2.4), 40.0), (_g(60.0), 80.0)),
    reflectivity=0.95,
)

MATERIALS: Dict[str, Material] = {
    m.name: m for m in (DRYWALL, CONCRETE, BRICK, GLASS, WOOD, HUMAN, METAL)
}


def get_material(name: str) -> Material:
    """Look up a built-in material by name."""
    try:
        return MATERIALS[name]
    except KeyError:
        known = ", ".join(sorted(MATERIALS))
        raise KeyError(f"unknown material {name!r}; known: {known}") from None


def list_materials() -> Sequence[str]:
    """Names of all built-in materials."""
    return sorted(MATERIALS)
