"""Ready-made floor plans used by the paper's exploratory studies.

The central scenario (paper Figs. 2, 4, 5) is a furnished two-room
apartment: an access point in the living room, a concrete partition
blocking mmWave into the adjacent bedroom except through a doorway, and
surfaces mounted at pre-determined locations relaying signal around the
partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .environment import Environment
from .materials import BRICK, CONCRETE, DRYWALL, WOOD
from .shapes import Box, Room
from .vec import vec3


@dataclass(frozen=True)
class ApartmentLayout:
    """Dimension knobs for :func:`two_room_apartment`.

    The defaults put the partition doorway near the top wall, matching
    the paper's Fig. 4a sketch where the relayed beam turns the corner
    through the opening.
    """

    living_width: float = 5.0
    bedroom_width: float = 3.5
    depth: float = 4.0
    ceiling: float = 3.0
    door_lo: float = 3.0
    door_hi: float = 3.9
    furnished: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.door_lo < self.door_hi < self.depth):
            raise ValueError("doorway must lie strictly inside the partition")

    @property
    def total_width(self) -> float:
        """Full apartment width (m)."""
        return self.living_width + self.bedroom_width


def two_room_apartment(layout: ApartmentLayout = ApartmentLayout()) -> Environment:
    """Build the two-room apartment environment.

    Coordinates: x grows from the living room (left) into the bedroom
    (right); y spans the apartment depth; z is height.  The concrete
    partition sits at ``x = layout.living_width`` with a doorway gap
    between ``door_lo`` and ``door_hi``.
    """
    env = Environment(name="two-room-apartment", ceiling_height=layout.ceiling)
    w, bw, d = layout.living_width, layout.bedroom_width, layout.depth
    total = layout.total_width

    # Exterior shell (brick).
    env.add_wall_2d((0, 0), (total, 0), BRICK, name="south-exterior")
    env.add_wall_2d((total, 0), (total, d), BRICK, name="east-exterior")
    env.add_wall_2d((total, d), (0, d), BRICK, name="north-exterior")
    env.add_wall_2d((0, d), (0, 0), BRICK, name="west-exterior")

    # Interior concrete partition with a doorway gap.
    env.add_wall_2d((w, 0), (w, layout.door_lo), CONCRETE, name="partition-south")
    env.add_wall_2d((w, layout.door_hi), (w, d), CONCRETE, name="partition-north")

    env.add_room(Room("living", 0.0, w, 0.0, d))
    env.add_room(Room("bedroom", w, total, 0.0, d))

    if layout.furnished:
        # A sofa and a bookshelf in the living room, a bed and a
        # wardrobe in the bedroom; heights below typical device height
        # except the wardrobe, so some grid points see extra blockage.
        env.add_box(
            Box(vec3(1.2, 0.2, 0.0), vec3(3.2, 1.0, 0.8), WOOD, name="sofa")
        )
        env.add_box(
            Box(vec3(0.1, 2.6, 0.0), vec3(0.5, 3.8, 1.9), WOOD, name="bookshelf")
        )
        env.add_box(
            Box(
                vec3(w + 0.8, 0.3, 0.0),
                vec3(w + 2.4, 1.7, 0.6),
                WOOD,
                name="bed",
            )
        )
        env.add_box(
            Box(
                vec3(total - 0.6, 0.2, 0.0),
                vec3(total - 0.1, 1.4, 2.0),
                WOOD,
                name="wardrobe",
            )
        )

    return env


@dataclass(frozen=True)
class ApartmentSites:
    """Canonical device/surface mounting sites for the apartment.

    All positions are 3-D points; surface normals point into the room
    the surface serves.  These mirror the paper's "suitable
    pre-determined deployment locations".
    """

    ap_position: np.ndarray
    passive_center: np.ndarray
    passive_normal: np.ndarray
    programmable_center: np.ndarray
    programmable_normal: np.ndarray
    single_surface_center: np.ndarray
    single_surface_normal: np.ndarray


def apartment_sites(layout: ApartmentLayout = ApartmentLayout()) -> ApartmentSites:
    """Deployment sites used by the Fig. 2/4/5 experiments.

    * AP: on the west living-room wall, facing east.
    * Passive surface: on the north living-room wall, well away from
      the doorway.  Its through-door view of the bedroom is a *narrow
      wedge* — useless for flooding the room statically, but exactly
      enough to relay a focused backhaul beam onto the programmable
      panel (the Fig. 4a story).
    * Programmable surface: on the east bedroom wall inside that wedge,
      re-steering the relayed beam across the bedroom.
    * Single-surface site (Figs. 2/5, programmable-only baseline): the
      north bedroom wall just past the doorway, seeing both the AP
      (obliquely, through the door) and the whole bedroom.
    """
    w, d = layout.living_width, layout.depth
    total = layout.total_width
    return ApartmentSites(
        ap_position=vec3(0.3, 1.2, 2.0),
        passive_center=vec3(1.8, d - 0.02, 1.8),
        passive_normal=vec3(0.0, -1.0, 0.0),
        programmable_center=vec3(total - 0.02, 2.6, 1.8),
        programmable_normal=vec3(-1.0, 0.0, 0.0),
        single_surface_center=vec3(w + 1.6, d - 0.02, 1.8),
        single_surface_normal=vec3(0.0, -1.0, 0.0),
    )
