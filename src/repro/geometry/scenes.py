"""Named, registered scene builders (the ``SceneBuilder`` API).

Every scenario used to hand-roll its environment — the fleet shard
builder constructed the two-room apartment inline, experiments copied
site coordinates around.  A :class:`Scene` bundles everything a
scenario needs to stand up a system — the environment, the AP mount,
the surface sites, the observation room, client spawn region, and
canonical walking routes through the doorways — and the registry
constructs any of them by name (``build_scene("office")``), which is
what the ``--scene`` CLI flags plug into.

Scenes:

* ``two-room`` — the unfurnished-knobs-default furnished apartment
  with the single programmable surface (the paper's Figs. 2/5 setup;
  the fleet shard default).
* ``apartment`` — the same apartment with programmable surfaces on
  both the bedroom-north and bedroom-east walls (the mobility pack's
  richer single-floor scene).
* ``office`` — a new two-storey office: per-floor concrete partitions
  with doorways, a concrete inter-floor slab with a stairwell gap, a
  surface per floor on the same east-wall xy (different z — the
  digest-uniqueness case), rooms with ``z_floor`` set per storey.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from ..core.errors import SurfOSError
from .environment import Environment
from .floorplans import apartment_sites, two_room_apartment
from .materials import BRICK, CONCRETE
from .shapes import Box, Room
from .vec import vec3

__all__ = [
    "PanelSite",
    "Scene",
    "SceneBuilder",
    "register_scene",
    "build_scene",
    "scene_names",
    "SCENE_NAMES",
]


@dataclass(frozen=True)
class PanelSite:
    """One surface mounting site: id suffix, center, inward normal."""

    panel_id: str
    center: Tuple[float, float, float]
    normal: Tuple[float, float, float]


@dataclass
class Scene:
    """Everything a scenario needs to stand up a system.

    Attributes:
        name: registry name.
        env: the built environment (fresh per :func:`build_scene` call).
        ap_position / ap_boresight: access-point mount.
        panel_sites: surface mounting sites (ids are suffixes; system
            builders may prefix them, e.g. with a shard id).
        observe_room: room the daemon monitors.
        spawn_lo / spawn_hi: axis-aligned box client spawn positions
            are drawn from (z is the device height).
        walker_loops: canonical obstacle-walker waypoint loops
            (floor-level; z = storey elevation).
        client_loops: canonical mobile-endpoint loops at device height,
            each crossing at least one doorway.
    """

    name: str
    env: Environment
    ap_position: Tuple[float, float, float]
    ap_boresight: Tuple[float, float, float]
    panel_sites: Tuple[PanelSite, ...]
    observe_room: str
    spawn_lo: Tuple[float, float, float]
    spawn_hi: Tuple[float, float, float]
    walker_loops: Tuple[Tuple[Tuple[float, ...], ...], ...] = field(
        default_factory=tuple
    )
    client_loops: Tuple[Tuple[Tuple[float, ...], ...], ...] = field(
        default_factory=tuple
    )

    def spawn_position(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a seeded spawn position inside the spawn box.

        Draw order (x, then y) is part of the determinism contract —
        fleet client placement has always drawn this way.
        """
        x = rng.uniform(self.spawn_lo[0], self.spawn_hi[0])
        y = rng.uniform(self.spawn_lo[1], self.spawn_hi[1])
        return vec3(x, y, self.spawn_lo[2])


#: A registered scene builder: knobs → a fresh :class:`Scene`.
SceneBuilder = Callable[..., Scene]

_BUILDERS: Dict[str, SceneBuilder] = {}


def register_scene(name: str) -> Callable[[SceneBuilder], SceneBuilder]:
    """Decorator registering a :class:`SceneBuilder` under ``name``."""

    def deco(builder: SceneBuilder) -> SceneBuilder:
        if name in _BUILDERS:
            raise SurfOSError(f"scene {name!r} already registered")
        _BUILDERS[name] = builder
        return builder

    return deco


def build_scene(name: str, **knobs) -> Scene:
    """Construct a registered scene by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise SurfOSError(
            f"unknown scene {name!r} (choose from {scene_names()})"
        ) from None
    return builder(**knobs)


def scene_names() -> Tuple[str, ...]:
    """All registered scene names, sorted."""
    return tuple(sorted(_BUILDERS))


@register_scene("two-room")
def _two_room_scene() -> Scene:
    """The fleet-shard default: apartment + the single-surface site."""
    sites = apartment_sites()
    return Scene(
        name="two-room",
        env=two_room_apartment(),
        ap_position=tuple(map(float, sites.ap_position)),
        ap_boresight=(1.0, 0.3, 0.0),
        panel_sites=(
            PanelSite(
                "rs",
                tuple(map(float, sites.single_surface_center)),
                tuple(map(float, sites.single_surface_normal)),
            ),
        ),
        observe_room="bedroom",
        spawn_lo=(5.2, 0.8, 1.0),
        spawn_hi=(8.0, 3.4, 1.0),
        walker_loops=(
            ((6.2, 1.0), (7.8, 1.0), (7.8, 3.0), (6.2, 3.0)),
        ),
        client_loops=(
            (
                (6.8, 1.6, 1.0),
                (6.0, 3.4, 1.0),
                (4.0, 3.5, 1.0),
                (2.5, 2.0, 1.0),
                (4.0, 3.5, 1.0),
                (6.0, 3.4, 1.0),
            ),
        ),
    )


@register_scene("apartment")
def _apartment_scene() -> Scene:
    """The furnished apartment with surfaces on two bedroom walls."""
    sites = apartment_sites()
    base = _two_room_scene()
    return Scene(
        name="apartment",
        env=two_room_apartment(),
        ap_position=base.ap_position,
        ap_boresight=base.ap_boresight,
        panel_sites=(
            PanelSite(
                "rs-north",
                tuple(map(float, sites.single_surface_center)),
                tuple(map(float, sites.single_surface_normal)),
            ),
            PanelSite(
                "rs-east",
                tuple(map(float, sites.programmable_center)),
                tuple(map(float, sites.programmable_normal)),
            ),
        ),
        observe_room="bedroom",
        spawn_lo=base.spawn_lo,
        spawn_hi=base.spawn_hi,
        # The obstacle walker works the living room (its dirty regions
        # cross the AP-side corridors, not the bedroom surface→points
        # corridors the prefetcher warms); clients cross the doorway.
        walker_loops=(((1.5, 1.2), (4.2, 3.4), (3.0, 0.8), (1.2, 2.6)),),
        client_loops=base.client_loops,
    )


#: Office footprint (m) and storey geometry.
_OFFICE_W, _OFFICE_D = 10.0, 6.0
_FLOOR_H = 3.0
_SLAB_T = 0.2
_F2_Z = _FLOOR_H + _SLAB_T  # second-storey floor elevation


@register_scene("office")
def _office_scene() -> Scene:
    """A two-storey office with a stairwell gap in the slab."""
    w, d = _OFFICE_W, _OFFICE_D
    env = Environment(name="office", ceiling_height=_F2_Z + _FLOOR_H)
    for z_lo, z_hi, tag in ((0.0, _FLOOR_H, "f1"), (_F2_Z, _F2_Z + _FLOOR_H, "f2")):
        env.add_wall_2d(
            (0, 0), (w, 0), BRICK, name=f"{tag}-south", z_min=z_lo, z_max=z_hi
        )
        env.add_wall_2d(
            (w, 0), (w, d), BRICK, name=f"{tag}-east", z_min=z_lo, z_max=z_hi
        )
        env.add_wall_2d(
            (w, d), (0, d), BRICK, name=f"{tag}-north", z_min=z_lo, z_max=z_hi
        )
        env.add_wall_2d(
            (0, d), (0, 0), BRICK, name=f"{tag}-west", z_min=z_lo, z_max=z_hi
        )
        # Concrete partition at x=5 with a doorway gap y in [2.4, 3.3].
        env.add_wall_2d(
            (5.0, 0),
            (5.0, 2.4),
            CONCRETE,
            name=f"{tag}-partition-south",
            z_min=z_lo,
            z_max=z_hi,
        )
        env.add_wall_2d(
            (5.0, 3.3),
            (5.0, d),
            CONCRETE,
            name=f"{tag}-partition-north",
            z_min=z_lo,
            z_max=z_hi,
        )
    # Inter-floor concrete slab, leaving a stairwell gap in the
    # north-east corner (x in [8.4, 10], y in [4.4, 6]).
    env.add_box(
        Box(
            vec3(0.0, 0.0, _FLOOR_H),
            vec3(8.4, d, _F2_Z),
            CONCRETE,
            name="slab-main",
        )
    )
    env.add_box(
        Box(
            vec3(8.4, 0.0, _FLOOR_H),
            vec3(w, 4.4, _F2_Z),
            CONCRETE,
            name="slab-east",
        )
    )
    env.add_room(Room("f1-open", 0.0, 5.0, 0.0, d))
    env.add_room(Room("f1-lab", 5.0, w, 0.0, d))
    env.add_room(Room("f2-open", 0.0, 5.0, 0.0, d, z_floor=_F2_Z))
    env.add_room(Room("f2-lab", 5.0, w, 0.0, d, z_floor=_F2_Z))
    return Scene(
        name="office",
        env=env,
        ap_position=(0.4, 1.0, 2.2),
        ap_boresight=(1.0, 0.2, 0.1),
        panel_sites=(
            # Same east-wall xy on both storeys — only z distinguishes
            # their digests (pinned by the scenes test).
            PanelSite("rs-f1", (9.98, 2.8, 1.8), (-1.0, 0.0, 0.0)),
            PanelSite("rs-f2", (9.98, 2.8, _F2_Z + 1.8), (-1.0, 0.0, 0.0)),
        ),
        observe_room="f1-lab",
        spawn_lo=(5.4, 0.8, 1.0),
        spawn_hi=(9.4, 3.6, 1.0),
        walker_loops=(
            ((1.2, 1.2), (4.0, 2.8), (5.6, 2.85), (8.0, 1.4)),
            (
                (1.2, 1.2, _F2_Z),
                (4.0, 2.8, _F2_Z),
                (5.6, 2.85, _F2_Z),
                (8.0, 1.4, _F2_Z),
            ),
        ),
        client_loops=(
            (
                (8.6, 1.4, 1.0),
                (6.0, 2.9, 1.0),
                (4.2, 2.9, 1.0),
                (2.0, 1.6, 1.0),
                (4.2, 2.9, 1.0),
                (6.0, 2.9, 1.0),
            ),
        ),
    )


#: Registered scene names at import time (CLI choices).
SCENE_NAMES = scene_names()
