"""Geometric primitives for the indoor environment model.

Walls are vertical rectangles standing on a 2-D footprint segment (the
usual representation for floor plans); obstacles (furniture, humans) are
axis-aligned boxes.  Both support segment-intersection tests, which is
all the ray model needs: a radio path is a polyline of straight
segments, and each segment collects the penetration losses of whatever
it crosses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .materials import Material
from .vec import as_vec3, vec3

_EPS = 1e-9


@dataclass(frozen=True)
class Wall:
    """A vertical rectangular wall over a 2-D footprint segment.

    Attributes:
        start: one footprint endpoint ``(x, y)`` (z ignored).
        end: the other footprint endpoint.
        material: radio material of the wall.
        z_min: bottom height of the wall (m).
        z_max: top height of the wall (m).
        name: optional label for diagnostics.
    """

    start: np.ndarray
    end: np.ndarray
    material: Material
    z_min: float = 0.0
    z_max: float = 3.0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", as_vec3(self.start))
        object.__setattr__(self, "end", as_vec3(self.end))
        if self.z_max <= self.z_min:
            raise ValueError("wall z_max must exceed z_min")
        if np.allclose(self.start[:2], self.end[:2]):
            raise ValueError("wall footprint endpoints coincide")

    @property
    def length(self) -> float:
        """Footprint length (m)."""
        return float(np.linalg.norm(self.end[:2] - self.start[:2]))

    @property
    def height(self) -> float:
        """Vertical extent (m)."""
        return self.z_max - self.z_min

    def normal2d(self) -> np.ndarray:
        """A unit normal of the footprint line, in the xy-plane."""
        d = self.end[:2] - self.start[:2]
        n = np.array([-d[1], d[0], 0.0])
        return n / np.linalg.norm(n)

    def intersect_segment(
        self, a: np.ndarray, b: np.ndarray
    ) -> Optional[np.ndarray]:
        """Crossing point of segment ``a→b`` with this wall, if any.

        Returns the 3-D intersection point, or ``None`` when the
        segment misses the wall rectangle.  Grazing contacts at the
        very endpoints of the segment are ignored so that a device
        mounted *on* a wall is not considered blocked by it.
        """
        a, b = as_vec3(a), as_vec3(b)
        p, q = self.start[:2], self.end[:2]
        r = b[:2] - a[:2]
        s = q - p
        denom = r[0] * s[1] - r[1] * s[0]
        if abs(denom) < _EPS:
            return None  # parallel in plan view
        ap = p - a[:2]
        t = (ap[0] * s[1] - ap[1] * s[0]) / denom
        u = (ap[0] * r[1] - ap[1] * r[0]) / denom
        if not (_EPS < t < 1.0 - _EPS):
            return None
        if not (-_EPS <= u <= 1.0 + _EPS):
            return None
        z = a[2] + t * (b[2] - a[2])
        if not (self.z_min - _EPS <= z <= self.z_max + _EPS):
            return None
        xy = a[:2] + t * r
        return vec3(xy[0], xy[1], z)

    def mirror_point(self, point: np.ndarray) -> np.ndarray:
        """Mirror a point across the wall's vertical plane.

        Used by the image method for first-order specular reflections:
        the reflected path Tx→wall→Rx has the same length as the
        straight line from the mirrored Tx to Rx.
        """
        point = as_vec3(point)
        p = self.start[:2]
        n = self.normal2d()[:2]
        dist = float(np.dot(point[:2] - p, n))
        mirrored_xy = point[:2] - 2.0 * dist * n
        return vec3(mirrored_xy[0], mirrored_xy[1], point[2])

    def contains_footprint_point(self, point: np.ndarray) -> bool:
        """Whether a point's xy lies on the footprint segment (with z in range)."""
        point = as_vec3(point)
        p, q = self.start[:2], self.end[:2]
        d = q - p
        length2 = float(np.dot(d, d))
        t = float(np.dot(point[:2] - p, d)) / length2
        if not (-_EPS <= t <= 1.0 + _EPS):
            return False
        closest = p + t * d
        if np.linalg.norm(point[:2] - closest) > 1e-6:
            return False
        return self.z_min - _EPS <= point[2] <= self.z_max + _EPS


@dataclass(frozen=True)
class Box:
    """An axis-aligned box obstacle (furniture, appliance, human).

    Attributes:
        lo: minimum corner ``(x, y, z)``.
        hi: maximum corner ``(x, y, z)``.
        material: radio material of the obstacle.
        name: optional label for diagnostics.
    """

    lo: np.ndarray
    hi: np.ndarray
    material: Material
    name: str = ""

    def __post_init__(self) -> None:
        lo, hi = as_vec3(self.lo), as_vec3(self.hi)
        if np.any(hi <= lo):
            raise ValueError("box hi corner must strictly exceed lo corner")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return (self.lo + self.hi) / 2.0

    def translated(self, offset: np.ndarray) -> "Box":
        """A copy moved by ``offset`` (used by dynamics events)."""
        off = as_vec3(offset)
        return Box(self.lo + off, self.hi + off, self.material, self.name)

    def contains(self, point: np.ndarray) -> bool:
        """Whether the point lies inside (or on) the box."""
        p = as_vec3(point)
        return bool(np.all(p >= self.lo - _EPS) and np.all(p <= self.hi + _EPS))

    def intersects_segment(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Slab test: does segment ``a→b`` pass through the box?

        Endpoint grazing is ignored, matching :meth:`Wall.intersect_segment`.
        """
        a, b = as_vec3(a), as_vec3(b)
        d = b - a
        t_enter, t_exit = 0.0, 1.0
        for axis in range(3):
            if abs(d[axis]) < _EPS:
                if a[axis] < self.lo[axis] - _EPS or a[axis] > self.hi[axis] + _EPS:
                    return False
                continue
            t1 = (self.lo[axis] - a[axis]) / d[axis]
            t2 = (self.hi[axis] - a[axis]) / d[axis]
            if t1 > t2:
                t1, t2 = t2, t1
            t_enter = max(t_enter, t1)
            t_exit = min(t_exit, t2)
            if t_enter - t_exit > -_EPS:
                return False
        return _EPS < t_exit and t_enter < 1.0 - _EPS


@dataclass(frozen=True)
class Room:
    """A named rectangular region of the floor plan (for queries/grids).

    Attributes:
        name: room label, e.g. ``"bedroom"``.
        x_min, x_max, y_min, y_max: footprint bounds (m).
        z_floor: floor elevation (m) — 0 for ground-floor rooms;
            upper storeys of a multi-floor scene set it so grids and
            heights resolve relative to *their* floor.
    """

    name: str
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    z_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ValueError(f"room {self.name!r} has empty extent")

    @property
    def area(self) -> float:
        """Footprint area (m^2)."""
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)

    @property
    def center(self) -> np.ndarray:
        """Footprint center at z=0."""
        return vec3(
            (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        )

    def contains(self, point: np.ndarray, margin: float = 0.0) -> bool:
        """Whether a point's xy lies inside the room, shrunk by ``margin``."""
        p = as_vec3(point)
        return (
            self.x_min + margin <= p[0] <= self.x_max - margin
            and self.y_min + margin <= p[1] <= self.y_max - margin
        )

    def grid(self, spacing: float, z: float = 1.0, margin: float = 0.3) -> np.ndarray:
        """Regular grid of sample points inside the room at height ``z``.

        Returns an ``(n, 3)`` array.  ``margin`` keeps points off the
        walls, where the field model is least meaningful.  ``z`` is
        measured above the room's own floor (``z_floor``), so callers
        asking for "device height" get it on every storey.
        """
        if spacing <= 0:
            raise ValueError("grid spacing must be positive")
        xs = np.arange(self.x_min + margin, self.x_max - margin + _EPS, spacing)
        ys = np.arange(self.y_min + margin, self.y_max - margin + _EPS, spacing)
        if xs.size == 0 or ys.size == 0:
            raise ValueError(f"room {self.name!r} too small for margin {margin}")
        gx, gy = np.meshgrid(xs, ys)
        height = self.z_floor + float(z)
        pts = np.stack([gx.ravel(), gy.ravel(), np.full(gx.size, height)], axis=1)
        return pts
