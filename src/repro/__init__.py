"""SurfOS: an operating system for programmable radio environments.

A full Python implementation of the HotNets '24 vision paper —
hardware manager, surface orchestrator, service broker, LLM-assisted
automation — plus every substrate it needs: a geometric channel
simulator, surface hardware models (the paper's Table 1 catalog),
drivers, optimizers, and a runtime daemon.

Quickstart::

    from repro import SurfOS, ghz
    from repro.geometry import two_room_apartment, apartment_sites
    from repro.hwmgr import AccessPoint, ClientDevice
    from repro.surfaces import SurfacePanel, GENERIC_PROGRAMMABLE_28

    env = two_room_apartment()
    sites = apartment_sites()
    surfos = SurfOS(env, frequency_hz=ghz(28))
    surfos.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, ghz(28), boresight=(1, 0.3, 0))
    )
    surfos.add_surface(
        SurfacePanel("s1", GENERIC_PROGRAMMABLE_28, 16, 16,
                     sites.single_surface_center, sites.single_surface_normal)
    )
    surfos.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    surfos.boot()
    tasks = surfos.handle_user_demand("I want to start VR gaming in this room.")
    surfos.reoptimize()
    print(surfos.telemetry.summary())
"""

from .core.configuration import Granularity, SurfaceConfiguration
from .core.errors import SurfOSError
from .core.kernel import SurfOS
from .core.units import ghz, mhz
from .telemetry import Telemetry

__version__ = "0.1.0"

__all__ = [
    "Granularity",
    "SurfOS",
    "SurfOSError",
    "SurfaceConfiguration",
    "Telemetry",
    "__version__",
    "ghz",
    "mhz",
]
