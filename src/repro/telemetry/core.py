"""The SurfOS telemetry substrate: spans, counters, and an event log.

Every control-plane layer reports into one :class:`Telemetry` instance
(the kernel wires a single one through the hardware manager, channel
simulator, orchestrator, daemon, and broker).  The design goals:

* **Nested spans** with wall-clock *and* simulated-clock timing, so
  "where does reoptimize() spend its time" and "how much simulated
  settle did the hardware pay" are both first-class questions.
* **Named counters and gauges** for cache hits, pushes, objective
  evaluations, daemon reactions, …
* **A bounded in-memory event log** (completed spans + point events)
  exportable as JSON lines for offline analysis.
* **Near-zero cost when disabled**: ``span()`` returns a shared no-op
  handle and counters return without touching any dict.

Aggregate span statistics are folded in as spans finish, so summaries
survive event-log rotation.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from .histogram import StreamingHistogram


#: Metric namespaces that describe the *host's* execution strategy
#: (worker counts, evaluation backend) rather than the simulation.
#: Sim-only exports drop them: two runs of one seeded scenario must be
#: byte-identical regardless of how the machine evaluated the solves.
HOST_METRIC_PREFIXES = ("evaluator.",)


def _strip_wall_fields(value: object) -> object:
    """Recursively drop ``wall_*`` keys (used by sim-only exports)."""
    if isinstance(value, dict):
        return {
            k: _strip_wall_fields(v)
            for k, v in value.items()
            if not str(k).startswith("wall")
        }
    if isinstance(value, list):
        return [_strip_wall_fields(v) for v in value]
    return value


def _strip_host_metrics(metrics: Dict[str, object]) -> Dict[str, object]:
    """Drop host-execution metrics from a counters/gauges mapping."""
    return {
        name: value
        for name, value in metrics.items()
        if not str(name).startswith(HOST_METRIC_PREFIXES)
    }


def _format_metric(value: object) -> str:
    """Render a counter/gauge value (numeric or label) for a table."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    return f"{value:g}"


@dataclass(frozen=True)
class TelemetryEvent:
    """One completed span or point event in the log.

    Attributes:
        kind: ``"span"`` for timed spans, ``"event"`` for point events.
        name: leaf name (``"channel-build"``).
        path: slash-joined nesting path (``"reoptimize/channel-build"``).
        seq: monotonically increasing sequence number.
        wall_start_s: start offset from the telemetry epoch (seconds).
        wall_duration_s: wall-clock duration (0.0 for point events).
        sim_start_s: simulated time at start, when a sim clock is bound.
        sim_duration_s: simulated time elapsed, when a sim clock is bound.
        attrs: free-form attributes attached by the instrumented code.
    """

    kind: str
    name: str
    path: str
    seq: int
    wall_start_s: float
    wall_duration_s: float
    sim_start_s: Optional[float] = None
    sim_duration_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by :meth:`Telemetry.export_jsonl`)."""
        out: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "path": self.path,
            "seq": self.seq,
            "wall_start_s": round(self.wall_start_s, 9),
            "wall_duration_s": round(self.wall_duration_s, 9),
        }
        if self.sim_start_s is not None:
            out["sim_start_s"] = self.sim_start_s
        if self.sim_duration_s is not None:
            out["sim_duration_s"] = self.sim_duration_s
        if self.attrs:
            out["attrs"] = self.attrs
        return out


@dataclass
class SpanStats:
    """Aggregate statistics for all spans sharing one path."""

    count: int = 0
    wall_total_s: float = 0.0
    wall_min_s: float = math.inf
    wall_max_s: float = 0.0
    sim_total_s: float = 0.0

    @property
    def wall_mean_s(self) -> float:
        """Mean wall-clock duration per span."""
        return self.wall_total_s / self.count if self.count else 0.0

    def add(self, wall_s: float, sim_s: Optional[float]) -> None:
        """Fold one finished span in."""
        self.count += 1
        self.wall_total_s += wall_s
        self.wall_min_s = min(self.wall_min_s, wall_s)
        self.wall_max_s = max(self.wall_max_s, wall_s)
        if sim_s is not None:
            self.sim_total_s += sim_s

    def as_dict(self) -> Dict[str, float]:
        """JSON-serializable form."""
        return {
            "count": self.count,
            "wall_total_s": self.wall_total_s,
            "wall_mean_s": self.wall_mean_s,
            "wall_min_s": self.wall_min_s if self.count else 0.0,
            "wall_max_s": self.wall_max_s,
            "sim_total_s": self.sim_total_s,
        }


class _NullSpan:
    """Shared no-op span handle used while telemetry is disabled."""

    __slots__ = ()

    path = ""
    wall_duration_s = 0.0
    sim_duration_s = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """A live timed span; use as a context manager.

    After ``__exit__`` the handle keeps ``wall_duration_s`` /
    ``sim_duration_s``, so callers can read the measured timings back
    (the orchestrator builds its per-phase timing summary this way).
    """

    __slots__ = (
        "_telemetry",
        "name",
        "path",
        "attrs",
        "wall_start_s",
        "wall_duration_s",
        "sim_start_s",
        "sim_duration_s",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, object]):
        self._telemetry = telemetry
        self.name = name
        self.path = name
        self.attrs = attrs
        self.wall_start_s = 0.0
        self.wall_duration_s = 0.0
        self.sim_start_s: Optional[float] = None
        self.sim_duration_s: Optional[float] = None

    def set(self, **attrs: object) -> "Span":
        """Attach or update attributes mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        t = self._telemetry
        t._stack.append(self.name)
        self.path = "/".join(t._stack)
        self.sim_start_s = t._sim_now()
        self.wall_start_s = time.perf_counter() - t._epoch
        return self

    def __exit__(self, *exc: object) -> bool:
        t = self._telemetry
        self.wall_duration_s = (time.perf_counter() - t._epoch) - self.wall_start_s
        sim_now = t._sim_now()
        if self.sim_start_s is not None and sim_now is not None:
            self.sim_duration_s = sim_now - self.sim_start_s
        if t._stack and t._stack[-1] == self.name:
            t._stack.pop()
        t._finish_span(self)
        return False


@dataclass
class TelemetrySnapshot:
    """A point-in-time copy of every aggregate the telemetry holds."""

    spans: Dict[str, SpanStats]
    counters: Dict[str, float]
    gauges: Dict[str, object]
    events_logged: int
    events_dropped: int
    #: Streaming-histogram summaries (p50/p99/p999 etc.), keyed by name.
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        out: Dict[str, object] = {
            "spans": {p: s.as_dict() for p, s in self.spans.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "events_logged": self.events_logged,
            "events_dropped": self.events_dropped,
        }
        if self.histograms:
            out["histograms"] = {
                name: dict(summary)
                for name, summary in self.histograms.items()
            }
        return out

    def render(self) -> str:
        """Human-readable summary tables (spans, counters, gauges)."""
        from ..analysis.tables import render_table

        blocks: List[str] = []
        if self.spans:
            rows = [
                (
                    path,
                    stats.count,
                    f"{stats.wall_total_s * 1e3:.2f}",
                    f"{stats.wall_mean_s * 1e3:.2f}",
                    f"{stats.wall_max_s * 1e3:.2f}",
                    f"{stats.sim_total_s:.4g}",
                )
                for path, stats in sorted(self.spans.items())
            ]
            blocks.append(
                render_table(
                    ("span", "count", "wall total ms", "mean ms", "max ms", "sim s"),
                    rows,
                    title="Telemetry: spans",
                )
            )
        if self.counters:
            rows = [
                (name, f"{value:g}")
                for name, value in sorted(self.counters.items())
            ]
            blocks.append(
                render_table(("counter", "value"), rows, title="Telemetry: counters")
            )
        if self.gauges:
            rows = [
                (name, _format_metric(value))
                for name, value in sorted(self.gauges.items())
            ]
            blocks.append(
                render_table(("gauge", "value"), rows, title="Telemetry: gauges")
            )
        if self.histograms:
            rows = [
                (
                    name,
                    f"{summary.get('count', 0):g}",
                    f"{summary.get('mean', 0.0):.4g}",
                    f"{summary.get('p50', 0.0):.4g}",
                    f"{summary.get('p99', 0.0):.4g}",
                    f"{summary.get('p999', 0.0):.4g}",
                )
                for name, summary in sorted(self.histograms.items())
            ]
            blocks.append(
                render_table(
                    ("histogram", "count", "mean", "p50", "p99", "p999"),
                    rows,
                    title="Telemetry: histograms",
                )
            )
        if not blocks:
            return "(no telemetry recorded)"
        return "\n\n".join(blocks)


class Telemetry:
    """Tracing + metrics for one SurfOS deployment.

    Args:
        enabled: start collecting immediately (disable for zero-cost).
        max_events: bound on the in-memory event log; older events are
            dropped (aggregates are unaffected by rotation).
        sim_clock: optional zero-argument callable returning simulated
            time; spans then also carry sim-clock timing.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_events: int = 10000,
        sim_clock: Optional[Callable[[], float]] = None,
    ):
        self.enabled = enabled
        self.max_events = max_events
        self._sim_clock = sim_clock
        self._epoch = time.perf_counter()
        self._events: Deque[TelemetryEvent] = deque(maxlen=max_events)
        self._span_stats: Dict[str, SpanStats] = {}
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, object] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}
        self._stack: List[str] = []
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> None:
        """Resume collection."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting; instrumented code pays (almost) nothing."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every event, aggregate, counter, gauge, and histogram."""
        self._events.clear()
        self._span_stats.clear()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._stack.clear()
        self._seq = 0
        self._dropped = 0
        self._epoch = time.perf_counter()

    def bind_sim_clock(
        self, sim_clock: Callable[[], float], force: bool = False
    ) -> None:
        """Attach a simulated-time source (first binding wins by default)."""
        if self._sim_clock is None or force:
            self._sim_clock = sim_clock

    def _sim_now(self) -> Optional[float]:
        return self._sim_clock() if self._sim_clock is not None else None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: object) -> "Span":
        """Open a (nested) timed span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN  # type: ignore[return-value]
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record an instantaneous point event."""
        if not self.enabled:
            return
        path = "/".join(self._stack + [name]) if self._stack else name
        self._append(
            TelemetryEvent(
                kind="event",
                name=name,
                path=path,
                seq=self._next_seq(),
                wall_start_s=time.perf_counter() - self._epoch,
                wall_duration_s=0.0,
                sim_start_s=self._sim_now(),
                attrs=attrs,
            )
        )

    def counter(self, name: str, value: float = 1) -> float:
        """Increment a named counter; returns the new total."""
        if not self.enabled:
            return self._counters.get(name, 0)
        total = self._counters.get(name, 0) + value
        self._counters[name] = total
        return total

    def gauge(self, name: str, value) -> None:
        """Set a named gauge to its latest value (a number or a label).

        String values make configuration visible in the same place as
        measurements (e.g. ``evaluator.backend = "process"``).
        """
        if not self.enabled:
            return
        self._gauges[name] = value

    def histogram(
        self,
        name: str,
        bucket_width: float = 0.001,
        buckets: int = 4096,
    ) -> StreamingHistogram:
        """The named streaming histogram, created on first use.

        The grid is fixed by the first caller; later callers get the
        existing histogram regardless of the arguments they pass (one
        metric, one grid).  Returned histograms stay live — ``observe``
        on them feeds the snapshot/summary/export path directly.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = StreamingHistogram(
                bucket_width=bucket_width, buckets=buckets
            )
        return hist

    def observe(self, name: str, value: float) -> None:
        """Fold one value into the named histogram (O(1) streaming)."""
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _append(self, event: TelemetryEvent) -> None:
        if len(self._events) == self.max_events:
            self._dropped += 1
        self._events.append(event)

    def _finish_span(self, span: Span) -> None:
        stats = self._span_stats.get(span.path)
        if stats is None:
            stats = self._span_stats[span.path] = SpanStats()
        stats.add(span.wall_duration_s, span.sim_duration_s)
        self._append(
            TelemetryEvent(
                kind="span",
                name=span.name,
                path=span.path,
                seq=self._next_seq(),
                wall_start_s=span.wall_start_s,
                wall_duration_s=span.wall_duration_s,
                sim_start_s=span.sim_start_s,
                sim_duration_s=span.sim_duration_s,
                attrs=span.attrs,
            )
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def events(self, name: Optional[str] = None) -> List[TelemetryEvent]:
        """The logged events, optionally filtered by leaf name."""
        if name is None:
            return list(self._events)
        return [e for e in self._events if e.name == name]

    @property
    def counters(self) -> Dict[str, float]:
        """Current counter totals."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        """Latest gauge values."""
        return dict(self._gauges)

    def get_counter(self, name: str, default: float = 0) -> float:
        """One counter's total."""
        return self._counters.get(name, default)

    def snapshot(self) -> TelemetrySnapshot:
        """A point-in-time copy of all aggregates."""
        return TelemetrySnapshot(
            spans={
                path: SpanStats(
                    count=s.count,
                    wall_total_s=s.wall_total_s,
                    wall_min_s=s.wall_min_s,
                    wall_max_s=s.wall_max_s,
                    sim_total_s=s.sim_total_s,
                )
                for path, s in self._span_stats.items()
            },
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            events_logged=len(self._events),
            events_dropped=self._dropped,
            histograms={
                name: hist.as_dict()
                for name, hist in self._histograms.items()
            },
        )

    def export_jsonl(
        self, path: Optional[str] = None, sim_only: bool = False
    ) -> str:
        """Serialize the event log (plus a trailing summary record).

        Returns the JSON-lines text; when ``path`` is given the text is
        also written to that file.  The last line is a ``"snapshot"``
        record carrying counters, gauges, and span aggregates so a
        report can be rebuilt without replaying every event.

        With ``sim_only`` every wall-clock field (``wall_*``) is
        stripped recursively, leaving only simulated-time, count, and
        attribute fields.  Two runs of a seeded scenario then export
        byte-identical text — CI diffs the two exports to catch
        nondeterminism.
        """
        records = [e.as_dict() for e in self._events]
        summary: Dict[str, object] = {"kind": "snapshot"}
        summary.update(self.snapshot().as_dict())
        records.append(summary)
        if sim_only:
            records = [_strip_wall_fields(r) for r in records]
            stripped = records[-1]
            for section in ("counters", "gauges"):
                values = stripped.get(section)
                if isinstance(values, dict):
                    stripped[section] = _strip_host_metrics(values)
        lines = [json.dumps(r, sort_keys=True) for r in records]
        text = "\n".join(lines) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def summary(self) -> str:
        """Human-readable summary tables."""
        return self.snapshot().render()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Telemetry({state}, {len(self._events)} events, "
            f"{len(self._span_stats)} span paths, "
            f"{len(self._counters)} counters)"
        )
