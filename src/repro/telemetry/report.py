"""Offline telemetry reports: read a JSON-lines export, render tables.

The CLI's ``trace --report`` path uses this to turn a file produced by
:meth:`~repro.telemetry.Telemetry.export_jsonl` back into the same
summary tables a live snapshot renders — plus a chronological listing
of point events (daemon reactions and friends).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import render_table
from ..core.errors import SurfOSError
from .core import SpanStats


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a telemetry JSON-lines file into record dicts."""
    records: List[Dict[str, object]] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise SurfOSError(f"cannot read telemetry export: {exc}") from None
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SurfOSError(
                    f"{path}:{lineno}: not valid telemetry JSON ({exc})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise SurfOSError(
                    f"{path}:{lineno}: not a telemetry record (missing 'kind')"
                )
            records.append(record)
    if not records:
        raise SurfOSError(f"{path}: empty telemetry export")
    return records


def _aggregate_spans(
    records: List[Dict[str, object]],
) -> Tuple[Dict[str, SpanStats], Optional[Dict[str, object]]]:
    """Span aggregates by path, preferring the trailing snapshot record."""
    snapshot = None
    for record in records:
        if record["kind"] == "snapshot":
            snapshot = record
    spans: Dict[str, SpanStats] = {}
    if snapshot is not None and isinstance(snapshot.get("spans"), dict):
        for path, stats in snapshot["spans"].items():
            spans[path] = SpanStats(
                count=int(stats.get("count", 0)),
                wall_total_s=float(stats.get("wall_total_s", 0.0)),
                wall_min_s=float(stats.get("wall_min_s", 0.0)),
                wall_max_s=float(stats.get("wall_max_s", 0.0)),
                sim_total_s=float(stats.get("sim_total_s", 0.0)),
            )
        return spans, snapshot
    # No snapshot line: rebuild aggregates from the raw span events.
    for record in records:
        if record["kind"] != "span":
            continue
        path = str(record["path"])
        stats = spans.setdefault(path, SpanStats())
        stats.add(
            float(record.get("wall_duration_s", 0.0)),
            record.get("sim_duration_s"),
        )
    return spans, snapshot


def render_report(records: List[Dict[str, object]]) -> str:
    """Render a full human-readable report from exported records."""
    spans, snapshot = _aggregate_spans(records)
    blocks: List[str] = []
    if spans:
        rows = [
            (
                path,
                stats.count,
                f"{stats.wall_total_s * 1e3:.2f}",
                f"{stats.wall_mean_s * 1e3:.2f}",
                f"{stats.wall_max_s * 1e3:.2f}",
                f"{stats.sim_total_s:.4g}",
            )
            for path, stats in sorted(spans.items())
        ]
        blocks.append(
            render_table(
                ("span", "count", "wall total ms", "mean ms", "max ms", "sim s"),
                rows,
                title="Telemetry report: spans",
            )
        )
    counters = (snapshot or {}).get("counters") or {}
    if counters:
        rows = [(name, f"{value:g}") for name, value in sorted(counters.items())]
        blocks.append(
            render_table(
                ("counter", "value"), rows, title="Telemetry report: counters"
            )
        )
    gauges = (snapshot or {}).get("gauges") or {}
    if gauges:
        rows = [(name, f"{value:g}") for name, value in sorted(gauges.items())]
        blocks.append(
            render_table(("gauge", "value"), rows, title="Telemetry report: gauges")
        )
    points = [r for r in records if r["kind"] == "event"]
    if points:
        rows = []
        for record in points:
            attrs = record.get("attrs") or {}
            rendered = ", ".join(f"{k}={v}" for k, v in attrs.items())
            sim = record.get("sim_start_s")
            rows.append(
                (
                    f"{record.get('wall_start_s', 0.0):.3f}",
                    "-" if sim is None else f"{sim:.3f}",
                    record["name"],
                    rendered or "-",
                )
            )
        blocks.append(
            render_table(
                ("wall s", "sim s", "event", "attributes"),
                rows,
                title="Telemetry report: events",
            )
        )
    if not blocks:
        return "(no telemetry records)"
    return "\n\n".join(blocks)
