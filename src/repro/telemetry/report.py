"""Offline telemetry reports: read a JSON-lines export, render tables.

The CLI's ``trace --report`` path uses this to turn a file produced by
:meth:`~repro.telemetry.Telemetry.export_jsonl` back into the same
summary tables a live snapshot renders — plus a chronological listing
of point events (daemon reactions and friends).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import render_table
from ..core.errors import SurfOSError
from .core import SpanStats, _format_metric


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a telemetry JSON-lines file into record dicts."""
    records: List[Dict[str, object]] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise SurfOSError(f"cannot read telemetry export: {exc}") from None
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SurfOSError(
                    f"{path}:{lineno}: not valid telemetry JSON ({exc})"
                ) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise SurfOSError(
                    f"{path}:{lineno}: not a telemetry record (missing 'kind')"
                )
            records.append(record)
    if not records:
        raise SurfOSError(f"{path}: empty telemetry export")
    return records


def _aggregate_spans(
    records: List[Dict[str, object]],
) -> Tuple[Dict[str, SpanStats], Optional[Dict[str, object]]]:
    """Span aggregates by path, preferring the trailing snapshot record."""
    snapshot = None
    for record in records:
        if record["kind"] == "snapshot":
            snapshot = record
    spans: Dict[str, SpanStats] = {}
    if snapshot is not None and isinstance(snapshot.get("spans"), dict):
        for path, stats in snapshot["spans"].items():
            spans[path] = SpanStats(
                count=int(stats.get("count", 0)),
                wall_total_s=float(stats.get("wall_total_s", 0.0)),
                wall_min_s=float(stats.get("wall_min_s", 0.0)),
                wall_max_s=float(stats.get("wall_max_s", 0.0)),
                sim_total_s=float(stats.get("sim_total_s", 0.0)),
            )
        return spans, snapshot
    # No snapshot line: rebuild aggregates from the raw span events.
    for record in records:
        if record["kind"] != "span":
            continue
        path = str(record["path"])
        stats = spans.setdefault(path, SpanStats())
        stats.add(
            float(record.get("wall_duration_s", 0.0)),
            record.get("sim_duration_s"),
        )
    return spans, snapshot


def span_self_times(spans: Dict[str, SpanStats]) -> Dict[str, float]:
    """Self wall-time per span path: total minus direct children's totals.

    A span's direct children are the paths one ``/`` level below it.
    Negative residues (clock skew between overlapping spans) clamp to
    zero so profiles never show negative self-time.
    """
    out = {path: stats.wall_total_s for path, stats in spans.items()}
    for path, stats in spans.items():
        if "/" not in path:
            continue
        parent = path.rsplit("/", 1)[0]
        if parent in out:
            out[parent] -= stats.wall_total_s
    return {path: max(0.0, t) for path, t in out.items()}


def render_profile(spans: Dict[str, SpanStats], top: int = 10) -> str:
    """Top-N spans by self wall-time, as a table (the ``--profile`` view)."""
    if not spans:
        return "(no spans recorded)"
    self_times = span_self_times(spans)
    total = sum(self_times.values()) or 1.0
    ranked = sorted(self_times.items(), key=lambda kv: kv[1], reverse=True)
    rows = [
        (
            path,
            spans[path].count,
            f"{self_s * 1e3:.2f}",
            f"{spans[path].wall_total_s * 1e3:.2f}",
            f"{100.0 * self_s / total:.1f}",
        )
        for path, self_s in ranked[: max(1, top)]
    ]
    return render_table(
        ("span", "count", "self ms", "total ms", "self %"),
        rows,
        title=f"Profile: top {len(rows)} spans by self-time",
    )


def render_solver_stats(
    counters: Dict[str, object], gauges: Dict[str, object]
) -> Optional[str]:
    """The ``solver.*`` adaptive-budget stats, as a table.

    Collects the drift-aware solve-budget namespace (budgeted vs used
    iterations, warm hits, cold starts, early stops, last drift) plus a
    derived budget-utilization row.  Returns ``None`` when no solver
    stats were recorded (adaptive budgets off), so callers can skip the
    block entirely.
    """
    rows = [
        (name, _format_metric(value))
        for name, value in sorted(counters.items())
        if name.startswith("solver.")
    ]
    rows.extend(
        (name, _format_metric(value))
        for name, value in sorted(gauges.items())
        if name.startswith("solver.")
    )
    if not rows:
        return None
    budgeted = counters.get("solver.budget_iterations", 0) or 0
    used = counters.get("solver.used_iterations", 0) or 0
    if budgeted:
        rows.append(
            ("solver.budget_utilization", f"{float(used) / budgeted:.3f}")
        )
    return render_table(
        ("solver stat", "value"),
        rows,
        title="Solver: adaptive budgets",
    )


def render_report(records: List[Dict[str, object]]) -> str:
    """Render a full human-readable report from exported records."""
    spans, snapshot = _aggregate_spans(records)
    blocks: List[str] = []
    if spans:
        rows = [
            (
                path,
                stats.count,
                f"{stats.wall_total_s * 1e3:.2f}",
                f"{stats.wall_mean_s * 1e3:.2f}",
                f"{stats.wall_max_s * 1e3:.2f}",
                f"{stats.sim_total_s:.4g}",
            )
            for path, stats in sorted(spans.items())
        ]
        blocks.append(
            render_table(
                ("span", "count", "wall total ms", "mean ms", "max ms", "sim s"),
                rows,
                title="Telemetry report: spans",
            )
        )
    counters = (snapshot or {}).get("counters") or {}
    if counters:
        rows = [
            (name, _format_metric(value))
            for name, value in sorted(counters.items())
        ]
        blocks.append(
            render_table(
                ("counter", "value"), rows, title="Telemetry report: counters"
            )
        )
    gauges = (snapshot or {}).get("gauges") or {}
    if gauges:
        rows = [
            (name, _format_metric(value))
            for name, value in sorted(gauges.items())
        ]
        blocks.append(
            render_table(("gauge", "value"), rows, title="Telemetry report: gauges")
        )
    points = [r for r in records if r["kind"] == "event"]
    if points:
        rows = []
        for record in points:
            attrs = record.get("attrs") or {}
            rendered = ", ".join(f"{k}={v}" for k, v in attrs.items())
            sim = record.get("sim_start_s")
            rows.append(
                (
                    f"{record.get('wall_start_s', 0.0):.3f}",
                    "-" if sim is None else f"{sim:.3f}",
                    record["name"],
                    rendered or "-",
                )
            )
        blocks.append(
            render_table(
                ("wall s", "sim s", "event", "attributes"),
                rows,
                title="Telemetry report: events",
            )
        )
    if not blocks:
        return "(no telemetry records)"
    return "\n\n".join(blocks)
