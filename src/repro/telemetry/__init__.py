"""repro.telemetry — tracing and metrics for the SurfOS control plane.

Public API (stable):

* :class:`Telemetry` — ``span()``, ``event()``, ``counter()``,
  ``gauge()``, ``snapshot()``, ``export_jsonl()``, ``summary()``.
* :class:`TelemetrySnapshot`, :class:`SpanStats`,
  :class:`TelemetryEvent` — the read-side data model.
* :func:`load_jsonl` / :func:`render_report` — offline report path.
"""

from .core import (
    NULL_SPAN,
    Span,
    SpanStats,
    Telemetry,
    TelemetryEvent,
    TelemetrySnapshot,
)
from .report import load_jsonl, render_report

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanStats",
    "Telemetry",
    "TelemetryEvent",
    "TelemetrySnapshot",
    "load_jsonl",
    "render_report",
]
