"""repro.telemetry — tracing and metrics for the SurfOS control plane.

Public API (stable):

* :class:`Telemetry` — ``span()``, ``event()``, ``counter()``,
  ``gauge()``, ``snapshot()``, ``export_jsonl()``, ``summary()``.
* :class:`TelemetrySnapshot`, :class:`SpanStats`,
  :class:`TelemetryEvent` — the read-side data model.
* :func:`load_jsonl` / :func:`render_report` — offline report path.
* :func:`span_self_times` / :func:`render_profile` — self-time profile.
"""

from .core import (
    NULL_SPAN,
    Span,
    SpanStats,
    Telemetry,
    TelemetryEvent,
    TelemetrySnapshot,
)
from .histogram import StreamingHistogram
from .report import (
    load_jsonl,
    render_profile,
    render_report,
    render_solver_stats,
    span_self_times,
)

__all__ = [
    "NULL_SPAN",
    "Span",
    "SpanStats",
    "StreamingHistogram",
    "Telemetry",
    "TelemetryEvent",
    "TelemetrySnapshot",
    "load_jsonl",
    "render_profile",
    "render_report",
    "render_solver_stats",
    "span_self_times",
]
