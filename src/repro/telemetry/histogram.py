"""Fixed-bucket streaming histograms for load-scale percentile tracking.

The load harness replays 10⁵–10⁶ requests; retaining a per-request
latency list (the :class:`~repro.pipeline.PipelineStats` approach) would
cost memory linear in the trace and an O(n log n) sort per percentile
query.  A :class:`StreamingHistogram` keeps a fixed grid of counts
instead: ``observe()`` is O(1), memory is constant, and any percentile
is answered by one cumulative walk with a guaranteed error of at most
one bucket width.

Everything is deterministic — no sampling, no decay — so two identical
simulated runs produce byte-identical histogram summaries, which is
what lets the sim-only JSONL determinism gates cover load runs too.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = ["StreamingHistogram"]


class StreamingHistogram:
    """Streaming values → fixed-width buckets with percentile queries.

    Args:
        bucket_width: width of each bucket (e.g. seconds of latency).
        buckets: number of regular buckets; values at or beyond
            ``bucket_width * buckets`` land in one overflow bucket.
        lowest: left edge of the first bucket (0.0 for latencies).

    A percentile query returns the *upper edge* of the bucket holding
    the requested rank, so the reported value is an upper bound on the
    true percentile and never off by more than one ``bucket_width``
    (overflowed values are reported as the overflow edge).
    """

    __slots__ = (
        "bucket_width",
        "buckets",
        "lowest",
        "_counts",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        bucket_width: float = 0.001,
        buckets: int = 4096,
        lowest: float = 0.0,
    ):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if buckets < 1:
            raise ValueError("need at least one bucket")
        self.bucket_width = float(bucket_width)
        self.buckets = int(buckets)
        self.lowest = float(lowest)
        # +1 overflow bucket at the end.
        self._counts = np.zeros(self.buckets + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- recording -------------------------------------------------------

    def _index(self, value: float) -> int:
        idx = int((value - self.lowest) / self.bucket_width)
        if idx < 0:
            return 0
        if idx >= self.buckets:
            return self.buckets  # overflow
        return idx

    def observe(self, value: float) -> None:
        """Fold one value in (O(1))."""
        value = float(value)
        self._counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch in (vectorized bucketing)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        idx = ((arr - self.lowest) / self.bucket_width).astype(np.int64)
        np.clip(idx, 0, self.buckets, out=idx)
        np.add.at(self._counts, idx, 1)
        self.count += int(arr.size)
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram with the same grid into this one."""
        if (
            other.bucket_width != self.bucket_width
            or other.buckets != self.buckets
            or other.lowest != self.lowest
        ):
            raise ValueError("cannot merge histograms with different grids")
        self._counts += other._counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    # -- queries ---------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact mean of the observed values (sum is tracked exactly)."""
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Values that landed beyond the regular grid."""
        return int(self._counts[-1])

    def percentile(self, q: float) -> float:
        """Upper bound of the q-th percentile (within one bucket width).

        ``q`` is in [0, 100].  Returns 0.0 when nothing was observed.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = int(np.ceil(q / 100.0 * self.count))
        rank = max(rank, 1)
        cumulative = 0
        for idx in range(self.buckets + 1):
            cumulative += int(self._counts[idx])
            if cumulative >= rank:
                # Upper edge of this bucket (overflow reports the edge
                # of the grid — the true value is at least that).
                return self.lowest + self.bucket_width * min(
                    idx + 1, self.buckets
                )
        return self.lowest + self.bucket_width * self.buckets

    def percentiles(self, qs: Iterable[float]) -> Dict[float, float]:
        """Several percentiles in one pass over the grid."""
        return {q: self.percentile(q) for q in qs}

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flat JSON-friendly summary (deterministic per run)."""
        if self.count == 0:
            return {f"{prefix}count": 0}
        return {
            f"{prefix}count": self.count,
            f"{prefix}mean": round(self.mean, 9),
            f"{prefix}min": round(self.min, 9),
            f"{prefix}max": round(self.max, 9),
            f"{prefix}p50": round(self.percentile(50.0), 9),
            f"{prefix}p99": round(self.percentile(99.0), 9),
            f"{prefix}p999": round(self.percentile(99.9), 9),
            f"{prefix}overflow": self.overflow,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingHistogram({self.count} values, "
            f"{self.buckets}x{self.bucket_width:g})"
        )
