"""The concurrent request pipeline: queue → batch admit → coalesced solve.

Before this subsystem, every demand entering the broker triggered its
own scheduler admission and its own full joint reoptimization — N
requests cost N optimizer solves even when they arrived microseconds
apart.  The pipeline restructures the control plane's concurrency:

1. **Bounded queueing** — demands park in a :class:`RequestQueue` with
   priority classes and explicit backpressure (reject-with-reason when
   full), never an unbounded buffer.
2. **Batched admission** — each daemon tick drains up to a batch of
   compatible requests and admits them in one
   :meth:`~repro.orchestrator.scheduler.Scheduler.admit_batch` pass
   inside the orchestrator's deferred-admission context.
3. **Coalesced reoptimization** — admission, motion, and degradation
   triggers landing within a configurable window collapse into a
   single joint :meth:`reoptimize` covering the whole dirty set.
4. **Worker-pool evaluation** — with ``parallelism > 1`` the value-only
   optimizers fan candidate batches over a thread pool of
   GIL-releasing NumPy kernels, bit-identical to serial evaluation
   (see :mod:`repro.pipeline.workers`).

Everything runs on the simulated clock; wall time only enters when
``charge_compute`` maps measured solve time onto the sim clock for
latency benchmarking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..broker.calls import RequestStatus, ServiceRequest, ServiceResponse
from ..broker.demands import ApplicationDemand
from ..broker.handle import ServiceHandle
from ..core.errors import ServiceError
from ..runtime.clock import SimClock
from .coalesce import AdaptiveCoalescer
from .config import PipelineConfig
from .queue import RequestQueue
from .workers import build_evaluator

#: Tolerance for the window-close comparison.  Tick times accumulate
#: floating-point error (0.1 + 0.1 + ... drifts in the last ulps), and
#: a strict ``now - first_at >= window`` then closed windows one tick
#: late whenever the difference landed a few ulps short — visible as an
#: inflated coalesce_ratio at steady arrival rates.  Within this
#: epsilon the boundary counts as reached (inclusive close).
WINDOW_CLOSE_EPS_S = 1e-9


@dataclass
class PipelineStats:
    """Lifetime statistics of one pipeline instance."""

    submitted: int = 0
    rejected: int = 0
    admitted: int = 0
    admission_failures: int = 0
    triggers: int = 0
    reoptimizations: int = 0
    reoptimize_failures: int = 0
    #: Sim-clock submit→served latency per served request.
    latencies: List[float] = field(default_factory=list)
    #: Sum / max of the effective coalescing window at each solve —
    #: under adaptive coalescing these show what the controller chose.
    window_sum_s: float = 0.0
    window_max_s: float = 0.0

    @property
    def coalesce_ratio(self) -> float:
        """Triggers absorbed per reoptimization (1.0 = no coalescing)."""
        if not self.reoptimizations:
            return 0.0
        return self.triggers / self.reoptimizations

    @property
    def mean_window_s(self) -> float:
        """Mean effective coalescing window across solves."""
        if not self.reoptimizations:
            return 0.0
        return self.window_sum_s / self.reoptimizations

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in simulated seconds (0 when unserved)."""
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    def summary(self) -> Dict[str, float]:
        """The stats as a flat dict (benchmark JSON artifacts)."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "admitted": self.admitted,
            "admission_failures": self.admission_failures,
            "triggers": self.triggers,
            "reoptimizations": self.reoptimizations,
            "reoptimize_failures": self.reoptimize_failures,
            "served": len(self.latencies),
            "coalesce_ratio": round(self.coalesce_ratio, 3),
            "p50_latency_s": round(self.p50_latency_s, 6),
            "p99_latency_s": round(self.p99_latency_s, 6),
            "mean_window_s": round(self.mean_window_s, 6),
            "max_window_s": round(self.window_max_s, 6),
        }


@dataclass
class TickResult:
    """What one :meth:`RequestPipeline.tick` actually did."""

    now: float
    drained: int = 0
    admitted: List[ServiceHandle] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)
    reoptimized: bool = False
    #: ``(sim_time, kind)`` triggers the coalesced solve consumed.
    coalesced: List[Tuple[float, str]] = field(default_factory=list)
    result: Optional[object] = None
    failure_reason: str = ""

    @property
    def first_trigger_at(self) -> Optional[float]:
        """Sim time of the earliest coalesced trigger (detection time)."""
        return self.coalesced[0][0] if self.coalesced else None

    @property
    def primary_trigger(self) -> str:
        """Kind of the earliest coalesced trigger."""
        return self.coalesced[0][1] if self.coalesced else ""


class RequestPipeline:
    """Drives queued demands through batched admission and coalesced solves.

    Built over an existing :class:`~repro.broker.broker.ServiceBroker`;
    :meth:`~repro.core.kernel.SurfOS.attach_pipeline` wires one to the
    kernel's broker and daemon clock.  All progress happens in
    :meth:`tick` — callers (the daemon, :meth:`ServiceHandle.wait`, the
    arrival benchmark) advance the sim clock and tick.
    """

    def __init__(
        self,
        broker,
        clock: Optional[SimClock] = None,
        config: Optional[PipelineConfig] = None,
    ):
        self.broker = broker
        self.orchestrator = broker.orchestrator
        self.clock = clock or SimClock()
        self.config = config or PipelineConfig()
        self.telemetry = broker.telemetry
        self.queue = RequestQueue(self.config.queue_capacity)
        self.evaluator = build_evaluator(self.config.evaluation)
        self.evaluator.bind_telemetry(self.telemetry)
        # Candidate-batch evaluation routes through the worker pool for
        # every parallelism setting — the chunk grid, not the worker
        # count or backend, is what the results depend on.
        self.orchestrator.optimizer.bind_evaluator(self.evaluator)
        self.stats = PipelineStats()
        self._handles: List[ServiceHandle] = []
        self._pending_triggers: List[Tuple[float, str]] = []
        self.coalescer: Optional[AdaptiveCoalescer] = (
            AdaptiveCoalescer(self.config.adaptive)
            if self.config.adaptive is not None
            else None
        )

    # -- intake ----------------------------------------------------------

    def submit(
        self,
        demand: ApplicationDemand,
        priority: Optional[int] = None,
    ) -> ServiceHandle:
        """Queue one application demand; returns its handle immediately.

        The handle starts ``QUEUED`` (or ``REJECTED`` under
        backpressure) and progresses as ticks drain the queue; use
        :meth:`ServiceHandle.wait` to pump the sim clock until served.
        """
        request = ServiceRequest(
            demand=demand,
            submitted_at=self.clock.now,
            priority=priority,
        )
        return self.submit_request(request).handle

    def submit_request(self, request: ServiceRequest) -> ServiceResponse:
        """Queue a pre-built request envelope (typed entry point)."""
        handle = ServiceHandle(self.broker, request)
        handle._bind_pipeline(self)
        self._handles.append(handle)
        response = self.queue.offer(request, handle, now=self.clock.now)
        if response.status is RequestStatus.REJECTED:
            self.stats.rejected += 1
            self.telemetry.counter("pipeline.rejected")
        else:
            self.stats.submitted += 1
            self.telemetry.counter("pipeline.submitted")
        self.telemetry.gauge("pipeline.queue_depth", self.queue.depth)
        return response

    def note_trigger(self, kind: str, now: Optional[float] = None) -> None:
        """Record a reoptimization trigger for the coalescing window."""
        at = self.clock.now if now is None else now
        self._pending_triggers.append((at, kind))
        self.stats.triggers += 1
        self.telemetry.counter("pipeline.triggers")
        if self.coalescer is not None:
            self.coalescer.observe_trigger(at)

    def effective_window_s(self, now: Optional[float] = None) -> float:
        """The coalescing window in force at ``now``.

        Fixed ``coalesce_window_s`` normally; under adaptive coalescing
        the :class:`AdaptiveCoalescer` sizes it from measured trigger
        pressure versus solve cost.
        """
        if self.coalescer is None:
            return self.config.coalesce_window_s
        return self.coalescer.window_s(self.clock.now if now is None else now)

    # -- the engine ------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> TickResult:
        """One pipeline cycle: drain + batch-admit, maybe coalesce-solve."""
        if now is None:
            now = self.clock.now
        if now > self.orchestrator.clock_now:
            self.orchestrator.clock_now = now
        outcome = TickResult(now=now)
        with self.telemetry.span("pipeline-tick"):
            self._admit_batch(now, outcome)
            self._maybe_reoptimize(now, outcome)
        return outcome

    def _admit_batch(self, now: float, outcome: TickResult) -> None:
        batch = self.queue.drain(self.config.max_batch)
        self.telemetry.gauge("pipeline.queue_depth", self.queue.depth)
        if not batch:
            return
        outcome.drained = len(batch)
        with self.telemetry.span("pipeline-admit", batch=len(batch)):
            with self.orchestrator.batch_admission() as admission:
                responses = [
                    self.broker.serve(entry.request, handle=entry.handle)
                    for entry in batch
                ]
        self.telemetry.gauge("pipeline.batch_size", len(batch))
        for entry, response in zip(batch, responses):
            handle = response.handle
            if response.status is RequestStatus.REJECTED:
                self.stats.admission_failures += 1
                outcome.failures[entry.request.request_id] = response.reason
                continue
            task_failures = {
                tid: reason
                for tid in handle.task_ids
                if (reason := admission.outcomes.get(tid)) is not None
            }
            if task_failures and len(task_failures) == len(handle.task_ids):
                reason = next(iter(task_failures.values()))
                handle._mark_failed(reason)
                self.stats.admission_failures += 1
                outcome.failures[entry.request.request_id] = reason
                continue
            handle.admitted_at = now
            self.stats.admitted += 1
            outcome.admitted.append(handle)
        if outcome.failures:
            self.telemetry.counter(
                "pipeline.admission_failures", len(outcome.failures)
            )
        if outcome.admitted:
            self.telemetry.counter("pipeline.admitted", len(outcome.admitted))
            self.note_trigger("admission", now)

    def _maybe_reoptimize(self, now: float, outcome: TickResult) -> None:
        if not self._pending_triggers:
            return
        first_at = self._pending_triggers[0][0]
        window = self.effective_window_s(now)
        # Inclusive close with an epsilon: accumulated tick times drift
        # in the last ulps, and a bare `<` kept windows open one whole
        # tick past their nominal deadline (see WINDOW_CLOSE_EPS_S).
        if now - first_at < window - WINDOW_CLOSE_EPS_S:
            return
        if not self.orchestrator.active_contexts():
            # Nothing admitted survives to optimize for; the triggers
            # are moot (e.g. every batch entry failed admission).
            self._pending_triggers.clear()
            return
        coalesced = list(self._pending_triggers)
        self._pending_triggers.clear()
        started = time.perf_counter()
        try:
            with self.telemetry.span(
                "pipeline-reoptimize", coalesced=len(coalesced)
            ):
                result = self.orchestrator.reoptimize(
                    now=now, rounds=self.config.reoptimize_rounds
                )
        except ServiceError as exc:
            # Degraded-mode guarantee: an unsatisfiable solve degrades
            # service, it never crashes the pipeline.
            self.stats.reoptimize_failures += 1
            self.telemetry.counter("pipeline.reoptimize_failures")
            outcome.failure_reason = str(exc)
            return
        if self.config.charge_compute:
            wall = time.perf_counter() - started
            self.clock.advance(wall)
            self.orchestrator.clock_now += wall
            if self.coalescer is not None:
                # Cost feedback only from *charged* (sim-visible) time:
                # without charging, wall time is nondeterministic and
                # would leak into window sizing, breaking same-seed runs.
                self.coalescer.observe_solve_cost(wall)
        outcome.reoptimized = True
        outcome.coalesced = coalesced
        outcome.result = result
        self.stats.reoptimizations += 1
        self.stats.window_sum_s += window
        self.stats.window_max_s = max(self.stats.window_max_s, window)
        self.telemetry.counter("pipeline.reoptimizations")
        self.telemetry.gauge("pipeline.coalesced_triggers", len(coalesced))
        self.telemetry.gauge("pipeline.coalesce_window_s", window)
        served_at = self.orchestrator.clock_now
        for handle in self._handles:
            if handle.served_at is None and handle.admitted_at is not None:
                handle.served_at = served_at
                self.stats.latencies.append(
                    served_at - handle.submitted_at
                )

    # -- conveniences ----------------------------------------------------

    def next_deadline(self, now: Optional[float] = None) -> Optional[float]:
        """Earliest sim time at which a tick would make progress.

        ``now`` when the queue holds requests (admission is overdue),
        the first pending trigger's window close otherwise, ``None``
        when the pipeline is fully idle.  :meth:`pump` drives the clock
        straight to this instant instead of polling a tick grid.
        """
        if now is None:
            now = self.clock.now
        if self.queue.depth:
            return now
        if self._pending_triggers:
            first_at = self._pending_triggers[0][0]
            return max(now, first_at + self.effective_window_s(now))
        return None

    def run(self, steps: int, dt: float = 0.5) -> List[TickResult]:
        """Advance the clock and tick ``steps`` times (tests, benchmarks)."""
        results = []
        for _ in range(steps):
            self.clock.advance(dt)
            results.append(self.tick())
        return results

    def pump(self, horizon_s: float) -> List[TickResult]:
        """Event-driven drive loop: tick at exact event times to a horizon.

        Unlike :meth:`run`'s fixed tick grid — which quantizes every
        admission and window close up to one ``dt`` late — ``pump``
        advances the sim clock directly to the next meaningful instant:
        the earliest scheduled clock callback (arrivals, motion) or the
        pipeline's own :meth:`next_deadline`.  With an adaptive
        zero-minimum window, a lone request is therefore admitted *and*
        solved at its exact arrival time.

        Returns when the horizon passes or the system goes fully idle
        (no scheduled events, nothing queued, nothing pending) —
        whichever comes first.  Only ticks that did work (drained,
        admitted, or reoptimized) are returned.
        """
        if horizon_s < self.clock.now:
            raise ServiceError(
                f"pump horizon {horizon_s} is in the simulated past "
                f"(now={self.clock.now})"
            )
        results: List[TickResult] = []
        while True:
            now = self.clock.now
            targets = []
            event_at = self.clock.next_event_at()
            if event_at is not None:
                targets.append(event_at)
            deadline = self.next_deadline(now)
            if deadline is not None:
                targets.append(deadline)
            if not targets:
                # Fully idle: nothing scheduled, nothing queued, nothing
                # pending — no tick can do work before the caller
                # schedules more, so pumping further is pointless.
                break
            target = min(targets)
            if target > horizon_s:
                break
            self.clock.advance(max(0.0, target - self.clock.now))
            outcome = self.tick()
            if outcome.drained or outcome.admitted or outcome.reoptimized:
                results.append(outcome)
            if self.clock.now >= horizon_s and self.next_deadline() is None:
                break
        return results

    def close(self) -> None:
        """Release the evaluation worker pool.

        Unbinds the optimizer first: a closed evaluator is terminal,
        and leaving it bound would make the next ``optimize()`` raise
        instead of quietly re-spawning a pool nobody owns (the pre-fix
        behavior leaked a thread pool per solve after close).
        """
        optimizer = self.orchestrator.optimizer
        if optimizer.evaluator is self.evaluator:
            optimizer.unbind_evaluator()
        self.evaluator.close()
