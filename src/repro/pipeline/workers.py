"""Worker-pool candidate evaluation, bit-identical to serial.

The value-only optimizers (random search, simulated annealing) spend
their time in :meth:`Objective.value_many` — dense NumPy linear algebra
that releases the GIL — so a thread pool genuinely overlaps the work.

Determinism contract: results must be *bit-identical* regardless of
``parallelism``.  The trick is that the chunk grid depends only on
``chunk`` (a config constant), never on the worker count: a candidate
batch is split into the same fixed-size row blocks whether one thread
or eight evaluate them, each block's NumPy reduction runs over the same
operands in the same order, and the per-block results are concatenated
in index order (``ThreadPoolExecutor.map`` preserves input order).
Floating-point non-associativity therefore never enters the picture —
no result ever sums across a worker boundary.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np


class BatchEvaluator:
    """Evaluates candidate batches in fixed-size chunks, optionally threaded.

    Bind one to an optimizer via
    :meth:`~repro.orchestrator.optimizers.Optimizer.bind_evaluator`;
    the pipeline does this when built with ``parallelism > 1``.
    """

    def __init__(self, parallelism: int = 1, chunk: int = 8):
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if chunk < 1:
            raise ValueError("chunk must be at least 1")
        self.parallelism = int(parallelism)
        self.chunk = int(chunk)
        self._pool: Optional[ThreadPoolExecutor] = None
        #: Lifetime counters for telemetry / tests.
        self.batches = 0
        self.chunks_evaluated = 0

    def _chunks(self, batch: np.ndarray) -> List[np.ndarray]:
        return [
            batch[i : i + self.chunk]
            for i in range(0, batch.shape[0], self.chunk)
        ]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="surfos-eval",
            )
        return self._pool

    def value_many(self, objective, batch: np.ndarray) -> np.ndarray:
        """Evaluate a ``(N, D)`` candidate batch; returns ``(N,)`` losses."""
        batch = np.atleast_2d(np.asarray(batch, dtype=float))
        chunks = self._chunks(batch)
        self.batches += 1
        self.chunks_evaluated += len(chunks)
        if self.parallelism == 1 or len(chunks) == 1:
            parts = [np.asarray(objective.value_many(c)) for c in chunks]
        else:
            pool = self._ensure_pool()
            parts = [
                np.asarray(p)
                for p in pool.map(objective.value_many, chunks)
            ]
        return np.concatenate([np.atleast_1d(p) for p in parts])

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BatchEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
