"""Worker-pool candidate evaluation, bit-identical to serial.

The value-only optimizers (random search, simulated annealing) spend
their time in :meth:`Objective.value_many` — dense NumPy linear algebra
that releases the GIL — so a thread pool genuinely overlaps the work.
For solve paths that are Python-bound rather than BLAS-bound, the
process backend (:class:`ProcessPoolEvaluator`) moves whole evaluation
chunks out of the interpreter entirely: objective arrays ship into
``multiprocessing.shared_memory`` once per channel build, and worker
processes rebuild the objective over zero-copy views and run the exact
same evaluation code as the parent.

Determinism contract: results must be *bit-identical* regardless of
``parallelism`` and backend.  The trick is that the chunk grid depends
only on ``chunk`` (a config constant), never on the worker count: a
candidate batch is split into the same fixed-size row blocks whether
one thread or eight evaluate them, each block's NumPy reduction runs
over the same operands in the same order, and the per-block results are
concatenated in index order (executor ``map``/``submit`` results are
gathered in submission order).  Floating-point non-associativity
therefore never enters the picture — no result ever sums across a
worker boundary.  The process backend adds nothing to that story: a
worker evaluates the same chunks with the same code over the same
bytes, so ``backend="process"`` equals ``backend="thread"`` equals
serial, bit for bit, at any worker count.

Cross-task stacking (:meth:`value_many_segments`) preserves the grid
per *task segment*: each task's batch is chunked exactly as
:meth:`value_many` would chunk it, and same-shaped chunks collapse into
one batched GEMM — a batched-matmul slice runs the same BLAS kernel
over the same operands as the standalone per-chunk call, so grouping
membership never changes bits either.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import OptimizationError
from ..orchestrator.objectives import (
    StackedObjective,
    export_objective,
    restore_objective,
)

#: Default shared-memory budget for the process backend's array store.
_DEFAULT_STORE_BYTES = 256 * 1024 * 1024


def _partition(items: Sequence, runs: int) -> List[List]:
    """Split ``items`` into at most ``runs`` contiguous balanced runs."""
    n = len(items)
    runs = max(1, min(runs, n))
    out: List[List] = []
    base, extra = divmod(n, runs)
    start = 0
    for i in range(runs):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


class _EvaluatorBase:
    """Shared chunking, telemetry, and lifecycle for evaluators."""

    #: Which backend this evaluator is ("thread" | "process").
    backend = "thread"

    def __init__(self, parallelism: int = 1, chunk: int = 8):
        if parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if chunk < 1:
            raise ValueError("chunk must be at least 1")
        self.parallelism = int(parallelism)
        self.chunk = int(chunk)
        self.telemetry = None
        self._closed = False
        #: Lifetime counters for telemetry / tests.
        self.batches = 0
        self.chunks_evaluated = 0

    def bind_telemetry(self, telemetry) -> None:
        """Attach a telemetry sink and publish the evaluator's shape."""
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.gauge("evaluator.backend", self.backend)
            telemetry.gauge("evaluator.parallelism", self.parallelism)

    def _chunks(self, batch: np.ndarray) -> List[np.ndarray]:
        return [
            batch[i : i + self.chunk]
            for i in range(0, batch.shape[0], self.chunk)
        ]

    def _note(self, chunks: int) -> None:
        self.batches += 1
        self.chunks_evaluated += chunks
        if self.telemetry is not None:
            self.telemetry.counter("evaluator.batches", 1)
            self.telemetry.counter("evaluator.chunks", chunks)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; evaluation after close "
                "would silently re-spawn a worker pool nobody shuts down"
            )

    def close(self) -> None:
        """Shut the evaluator down (idempotent, terminal)."""
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- segment plumbing (shared by both backends) ----------------------

    def _segment_items(
        self, stacked: StackedObjective, batches: Sequence[Optional[np.ndarray]]
    ) -> List[Tuple[int, np.ndarray]]:
        """Per-task chunks as ``(part_index, rows)`` items, in task order.

        Each task's batch is chunked with the *same* grid
        :meth:`value_many` uses, so a lockstep stacked solve sees
        bit-identical chunk operands to the serial per-task loop.
        """
        if len(batches) != len(stacked.parts):
            raise ValueError(
                f"{len(batches)} batches for {len(stacked.parts)} parts"
            )
        items: List[Tuple[int, np.ndarray]] = []
        for t, batch in enumerate(batches):
            if batch is None:
                continue
            batch = np.atleast_2d(np.asarray(batch, dtype=float))
            items.extend((t, rows) for rows in self._chunks(batch))
        return items

    @staticmethod
    def _gather_segments(
        batches: Sequence[Optional[np.ndarray]],
        items: Sequence[Tuple[int, np.ndarray]],
        values: Sequence[np.ndarray],
    ) -> List[Optional[np.ndarray]]:
        """Reassemble per-task loss vectors from per-chunk results."""
        per_task: Dict[int, List[np.ndarray]] = {}
        for (t, _), value in zip(items, values):
            per_task.setdefault(t, []).append(np.atleast_1d(np.asarray(value)))
        return [
            np.concatenate(per_task[t]) if t in per_task else None
            for t in range(len(batches))
        ]


class BatchEvaluator(_EvaluatorBase):
    """Evaluates candidate batches in fixed-size chunks, optionally threaded.

    Bind one to an optimizer via
    :meth:`~repro.orchestrator.optimizers.Optimizer.bind_evaluator`;
    the pipeline does this when built with ``parallelism > 1``.
    """

    backend = "thread"

    def __init__(self, parallelism: int = 1, chunk: int = 8):
        super().__init__(parallelism=parallelism, chunk=chunk)
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="surfos-eval",
            )
        return self._pool

    def value_many(self, objective, batch: np.ndarray) -> np.ndarray:
        """Evaluate a ``(N, D)`` candidate batch; returns ``(N,)`` losses."""
        self._check_open()
        batch = np.atleast_2d(np.asarray(batch, dtype=float))
        chunks = self._chunks(batch)
        self._note(len(chunks))
        if self.parallelism == 1 or len(chunks) == 1:
            parts = [np.asarray(objective.value_many(c)) for c in chunks]
        else:
            pool = self._ensure_pool()
            parts = [
                np.asarray(p)
                for p in pool.map(objective.value_many, chunks)
            ]
        return np.concatenate([np.atleast_1d(p) for p in parts])

    def value_many_segments(
        self,
        stacked: StackedObjective,
        batches: Sequence[Optional[np.ndarray]],
    ) -> List[Optional[np.ndarray]]:
        """Evaluate one candidate batch per stacked task (``None`` skips).

        Chunks each task with the :meth:`value_many` grid, then lets
        :meth:`StackedObjective.value_chunks` collapse same-shaped
        chunks across tasks into batched GEMMs.  Bit-identical to the
        per-task serial loop at any parallelism.
        """
        self._check_open()
        items = self._segment_items(stacked, batches)
        self._note(len(items))
        if self.parallelism == 1 or len(items) <= 1:
            values = stacked.value_chunks(items)
        else:
            pool = self._ensure_pool()
            runs = _partition(items, self.parallelism)
            values = [
                value
                for run_values in pool.map(stacked.value_chunks, runs)
                for value in run_values
            ]
        return self._gather_segments(batches, items, values)

    def close(self) -> None:
        """Shut the worker pool down (idempotent, terminal).

        A closed evaluator refuses further evaluation instead of
        silently re-spawning a thread pool that nothing owns anymore.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
#
# Worker-process side.  These run in the pool workers; module-level so
# they pickle under both fork and spawn start methods.  Workers cache
# attached shared-memory segments and restored objectives keyed by the
# content digests the parent ships, so steady-state traffic per
# evaluation is one small pickle each way: chunk rows out, loss vectors
# back.  The arrays themselves never cross the pipe.

#: token -> ndarray view over an attached shared-memory segment.
_worker_arrays: Dict[tuple, np.ndarray] = {}
#: shm name -> SharedMemory handle (kept alive for the views above).
_worker_segments: Dict[str, shared_memory.SharedMemory] = {}
#: spec digest -> restored objective.
_worker_objectives: Dict[str, object] = {}


def _worker_get_array(token: tuple) -> np.ndarray:
    name, shape, dtype = token
    key = (name, tuple(shape), dtype)
    cached = _worker_arrays.get(key)
    if cached is not None:
        return cached
    segment = shared_memory.SharedMemory(name=name)
    _worker_segments[name] = segment
    array = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf)
    _worker_arrays[key] = array
    return array


def _worker_eval(payload: tuple) -> List[np.ndarray]:
    """Evaluate one run of chunks against a (cached) restored objective.

    ``payload = (spec_digest, spec, items)`` where ``items`` is a list
    of ``(part_index, rows)`` — ``part_index`` is ``None`` for a plain
    (non-stacked) objective's chunk.
    """
    spec_digest, spec, items = payload
    objective = _worker_objectives.get(spec_digest)
    if objective is None:
        objective = restore_objective(spec, _worker_get_array)
        _worker_objectives[spec_digest] = objective
        if len(_worker_objectives) > 64:
            oldest = next(iter(_worker_objectives))
            del _worker_objectives[oldest]
    if isinstance(objective, StackedObjective):
        return objective.value_chunks(items)
    return [
        np.atleast_1d(np.asarray(objective.value_many(rows)))
        for _, rows in items
    ]


class _SharedArrayStore:
    """Content-addressed shared-memory segments for objective arrays.

    ``put`` publishes an array once per distinct content — repeat puts
    of the same bytes (the common case: linear forms are rebuilt per
    channel build, then reused for a whole solve) return the existing
    token.  A channel rebuild (``env.version`` bump) changes the form
    bytes, so it naturally mints fresh segments while the stale ones
    age out of the LRU byte budget.
    """

    def __init__(self, budget_bytes: int = _DEFAULT_STORE_BYTES):
        self._budget = budget_bytes
        self._segments: Dict[str, Tuple[shared_memory.SharedMemory, tuple, int]] = {}
        self._order: List[str] = []
        self._bytes = 0
        #: id(array) -> (array, digest): skips re-hashing arrays the
        #: caller re-ships within one solve (strong ref pins the id).
        self._id_memo: Dict[int, Tuple[np.ndarray, str]] = {}

    def put(self, array: np.ndarray) -> tuple:
        array = np.ascontiguousarray(array)
        memo = self._id_memo.get(id(array))
        if memo is not None and memo[0] is array and memo[1] in self._segments:
            digest = memo[1]
            self._order.remove(digest)
            self._order.append(digest)
            return self._segments[digest][1]
        digest = hashlib.sha1(
            f"{array.shape}|{array.dtype}|".encode() + array.tobytes()
        ).hexdigest()
        entry = self._segments.get(digest)
        if entry is None:
            nbytes = max(1, array.nbytes)
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            view[...] = array
            token = (segment.name, tuple(array.shape), str(array.dtype))
            self._segments[digest] = (segment, token, nbytes)
            self._order.append(digest)
            self._bytes += nbytes
            self._evict()
        else:
            self._order.remove(digest)
            self._order.append(digest)
        if len(self._id_memo) > 256:
            self._id_memo.clear()
        self._id_memo[id(array)] = (array, digest)
        return self._segments[digest][1]

    def _evict(self) -> None:
        while self._bytes > self._budget and len(self._order) > 1:
            digest = self._order.pop(0)
            segment, _, nbytes = self._segments.pop(digest)
            self._bytes -= nbytes
            segment.close()
            segment.unlink()

    def close(self) -> None:
        for segment, _, _ in self._segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._order.clear()
        self._id_memo.clear()
        self._bytes = 0


class ProcessPoolEvaluator(_EvaluatorBase):
    """Evaluates candidate chunks in worker *processes* — no GIL at all.

    Supported objectives export an evaluation spec
    (:func:`~repro.orchestrator.objectives.export_objective`): plain
    scalars plus shared-memory tokens for every large array.  Workers
    rebuild the objective over zero-copy views and run the identical
    ``value_many`` / ``value_chunks`` code the parent would run, on the
    identical chunk grid, so results are bit-identical to serial and to
    the thread backend at any worker count.  Objectives without an
    export fall back to in-process evaluation on the same grid.

    Each ``value_many`` call costs at most ``parallelism`` round trips
    (one submit per contiguous chunk run); at ``parallelism=1`` that is
    a single submit shipping only the candidate rows.
    """

    backend = "process"

    def __init__(
        self,
        parallelism: int = 1,
        chunk: int = 8,
        start_method: Optional[str] = None,
        store_bytes: int = _DEFAULT_STORE_BYTES,
    ):
        super().__init__(parallelism=parallelism, chunk=chunk)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else available[0]
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._store = _SharedArrayStore(budget_bytes=store_bytes)
        #: id(objective) -> (objective, digest, spec) export memo.
        self._spec_memo: Dict[int, Tuple[object, str, dict]] = {}
        #: Chunks that evaluated in-process because the objective type
        #: has no evaluation spec.
        self.fallback_chunks = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.parallelism,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._pool

    def _export(self, objective) -> Optional[Tuple[str, dict]]:
        memo = self._spec_memo.get(id(objective))
        if memo is not None and memo[0] is objective:
            return memo[1], memo[2]
        try:
            spec = export_objective(objective, self._store.put)
        except OptimizationError:
            return None
        digest = hashlib.sha1(repr(spec).encode()).hexdigest()
        if len(self._spec_memo) > 64:
            self._spec_memo.clear()
        self._spec_memo[id(objective)] = (objective, digest, spec)
        return digest, spec

    def _run_items(
        self, exported: Tuple[str, dict], items: List[Tuple[Optional[int], np.ndarray]]
    ) -> List[np.ndarray]:
        """Ship item runs to the pool; gather values in item order."""
        digest, spec = exported
        pool = self._ensure_pool()
        runs = _partition(items, self.parallelism)
        futures = [
            pool.submit(_worker_eval, (digest, spec, run)) for run in runs
        ]
        return [value for future in futures for value in future.result()]

    def value_many(self, objective, batch: np.ndarray) -> np.ndarray:
        """Evaluate a ``(N, D)`` candidate batch; returns ``(N,)`` losses."""
        self._check_open()
        batch = np.atleast_2d(np.asarray(batch, dtype=float))
        chunks = self._chunks(batch)
        self._note(len(chunks))
        exported = self._export(objective)
        if exported is None:
            self.fallback_chunks += len(chunks)
            if self.telemetry is not None:
                self.telemetry.counter("evaluator.fallback_chunks", len(chunks))
            parts = [np.asarray(objective.value_many(c)) for c in chunks]
        else:
            items = [(None, rows) for rows in chunks]
            parts = self._run_items(exported, items)
        return np.concatenate([np.atleast_1d(p) for p in parts])

    def value_many_segments(
        self,
        stacked: StackedObjective,
        batches: Sequence[Optional[np.ndarray]],
    ) -> List[Optional[np.ndarray]]:
        """Evaluate one candidate batch per stacked task (``None`` skips)."""
        self._check_open()
        items = self._segment_items(stacked, batches)
        self._note(len(items))
        exported = self._export(stacked)
        if exported is None:
            self.fallback_chunks += len(items)
            if self.telemetry is not None:
                self.telemetry.counter("evaluator.fallback_chunks", len(items))
            values = stacked.value_chunks(items)
        else:
            values = self._run_items(exported, items)
        return self._gather_segments(batches, items, values)

    def close(self) -> None:
        """Shut workers down and unlink every shared segment (terminal)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._store.close()
        self._spec_memo.clear()
        super().close()


def build_evaluator(evaluation) -> _EvaluatorBase:
    """The evaluator an :class:`~repro.pipeline.config.EvaluationConfig` asks for."""
    if evaluation.backend == "process":
        return ProcessPoolEvaluator(
            parallelism=evaluation.parallelism,
            chunk=evaluation.chunk,
            start_method=evaluation.start_method,
        )
    return BatchEvaluator(
        parallelism=evaluation.parallelism, chunk=evaluation.chunk
    )
