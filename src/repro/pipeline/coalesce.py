"""Adaptive reoptimization coalescing: window sized by measured pressure.

The fixed ``coalesce_window_s`` the pipeline shipped with is a blunt
trade: on a burst it collapses N triggers into one joint solve (the
3.6x headline), but at sparse steady-state arrival rates every lone
request still pays the whole window as pure added latency — the
rate-sweep regression (speedups 0.95/0.93 at 2–5 Hz) in
``BENCH_pipeline.json`` was exactly that tax.

:class:`AdaptiveCoalescer` replaces the constant with a classic
batch-while-busy controller, driven only by sim-clock observations so
it stays deterministic:

* **Pressure** is the EWMA of inter-trigger gaps, and — crucially —
  while a window is open the *silence since the last trigger* counts
  against it: ``pressure_gap = max(gap_ewma, now - last_trigger_at)``.
  A window that is waiting for companions that never come collapses on
  its own.
* **Worth waiting?**  Coalescing pays when triggers arrive faster than
  the control plane can solve, i.e. when ``pressure_gap`` is below the
  (EWMA-smoothed) solve cost.  Then the window opens to about one
  solve's worth of time — the server would have been busy anyway, so
  the wait is free — clamped to ``[min_window_s, max_window_s]``.
* **Idle → zero.**  When the expected gap exceeds the solve cost the
  window is ``min_window_s`` (0 by default): a lone steady-state
  request is solved on the tick it is admitted, paying no window at
  all (the "incremental admission" half of the rate-sweep fix).

Solve costs are observed from *charged* sim time only (the pipeline
feeds measured wall time when ``charge_compute`` is on, and the load
harness feeds its deterministic modeled cost); without charging the
cost estimate stays at the configured prior, keeping byte-identical
same-seed runs byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ServiceError

__all__ = ["AdaptiveCoalesceConfig", "AdaptiveCoalescer"]


@dataclass(frozen=True)
class AdaptiveCoalesceConfig:
    """Tuning for one :class:`AdaptiveCoalescer`.

    Attributes:
        min_window_s: window when idle (0 = solve on the admitting
            tick).
        max_window_s: hard cap on how long triggers may coalesce.
        alpha: EWMA weight of the newest inter-trigger gap (and of the
            newest solve cost); higher reacts faster.
        busy_factor: the window opens when the pressure gap is at most
            ``busy_factor × solve-cost estimate``.
        initial_cost_s: solve-cost prior used until real charged costs
            are observed (and forever when compute is not charged to
            the sim clock — determinism over adaptivity).
    """

    min_window_s: float = 0.0
    max_window_s: float = 0.5
    alpha: float = 0.4
    busy_factor: float = 1.25
    initial_cost_s: float = 0.05

    def __post_init__(self) -> None:
        if self.min_window_s < 0:
            raise ServiceError("min_window_s must be non-negative")
        if self.max_window_s < self.min_window_s:
            raise ServiceError("max_window_s must be >= min_window_s")
        if not 0.0 < self.alpha <= 1.0:
            raise ServiceError("alpha must be in (0, 1]")
        if self.busy_factor <= 0:
            raise ServiceError("busy_factor must be positive")
        if self.initial_cost_s < 0:
            raise ServiceError("initial_cost_s must be non-negative")


class AdaptiveCoalescer:
    """Deterministic, sim-clock-driven coalescing-window controller."""

    __slots__ = ("config", "_gap_hat", "_last_trigger_at", "_cost_hat")

    def __init__(self, config: Optional[AdaptiveCoalesceConfig] = None):
        self.config = config or AdaptiveCoalesceConfig()
        self._gap_hat: Optional[float] = None
        self._last_trigger_at: Optional[float] = None
        self._cost_hat = self.config.initial_cost_s

    # -- observations ----------------------------------------------------

    def observe_trigger(self, at: float) -> None:
        """Fold one reoptimization trigger (sim time) into the pressure."""
        if self._last_trigger_at is not None:
            gap = max(0.0, at - self._last_trigger_at)
            if self._gap_hat is None:
                self._gap_hat = gap
            else:
                alpha = self.config.alpha
                self._gap_hat = alpha * gap + (1.0 - alpha) * self._gap_hat
        self._last_trigger_at = at

    def observe_solve_cost(self, cost_s: float) -> None:
        """Fold one charged solve cost (sim seconds) into the estimate."""
        if cost_s < 0:
            return
        alpha = self.config.alpha
        self._cost_hat = alpha * cost_s + (1.0 - alpha) * self._cost_hat

    # -- the window ------------------------------------------------------

    @property
    def solve_cost_estimate_s(self) -> float:
        """Current EWMA of the charged solve cost."""
        return self._cost_hat

    def pressure_gap_s(self, now: float) -> float:
        """Effective inter-trigger gap: EWMA, aged by current silence."""
        if self._last_trigger_at is None or self._gap_hat is None:
            return float("inf")
        return max(self._gap_hat, now - self._last_trigger_at)

    def window_s(self, now: float) -> float:
        """The coalescing window to apply at sim time ``now``.

        Monotonically non-increasing between triggers: with no new
        trigger the pressure gap only grows, so an open window never
        extends itself — it either holds or collapses to the minimum.
        """
        cfg = self.config
        gap = self.pressure_gap_s(now)
        if gap > cfg.busy_factor * self._cost_hat:
            return cfg.min_window_s
        return min(cfg.max_window_s, max(cfg.min_window_s, self._cost_hat))

    def reset(self) -> None:
        """Forget all pressure/cost history (back to the cold state)."""
        self._gap_hat = None
        self._last_trigger_at = None
        self._cost_hat = self.config.initial_cost_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gap = "∅" if self._gap_hat is None else f"{self._gap_hat:.4f}s"
        return (
            f"AdaptiveCoalescer(gap_hat={gap}, "
            f"cost_hat={self._cost_hat:.4f}s)"
        )
