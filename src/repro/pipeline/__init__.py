"""Concurrent request pipeline: queued admission, coalesced solves.

See :class:`RequestPipeline` for the architecture; attach one to a
booted kernel with :meth:`repro.core.kernel.SurfOS.attach_pipeline`.
"""

from .coalesce import AdaptiveCoalesceConfig, AdaptiveCoalescer
from .config import EvaluationConfig, PipelineConfig
from .pipeline import (
    WINDOW_CLOSE_EPS_S,
    PipelineStats,
    RequestPipeline,
    TickResult,
)
from .queue import PriorityClass, QueuedRequest, RequestQueue
from .workers import BatchEvaluator, ProcessPoolEvaluator, build_evaluator

__all__ = [
    "AdaptiveCoalesceConfig",
    "AdaptiveCoalescer",
    "BatchEvaluator",
    "EvaluationConfig",
    "PipelineConfig",
    "ProcessPoolEvaluator",
    "build_evaluator",
    "PipelineStats",
    "PriorityClass",
    "QueuedRequest",
    "RequestPipeline",
    "RequestQueue",
    "TickResult",
    "WINDOW_CLOSE_EPS_S",
]
