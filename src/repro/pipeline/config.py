"""Configuration knobs for the concurrent request pipeline."""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Optional

from ..core.errors import ServiceError
from .coalesce import AdaptiveCoalesceConfig

#: Evaluation backends the pipeline can build.
EVALUATION_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class EvaluationConfig:
    """How candidate batches are evaluated during solves.

    This is the *single source of truth* for evaluation parallelism:
    the old ``PipelineConfig.parallelism`` / ``eval_chunk`` mirror
    fields are retired (they are accepted as init-only conveniences and
    raise when they conflict with an explicit ``evaluation=``).

    Attributes:
        backend: ``"thread"`` (GIL-sharing pool over BLAS calls, zero
            setup cost) or ``"process"`` (worker processes over
            shared-memory objective arrays — no GIL at all).  Either
            backend is bit-identical to serial evaluation at any
            ``parallelism`` (see :mod:`repro.pipeline.workers`).
        parallelism: worker threads/processes; 1 keeps evaluation on
            (or, for ``process``, behind) the calling thread.
        chunk: rows per evaluation chunk.  The chunk grid depends only
            on this — never on ``parallelism`` or ``backend`` — which
            is what makes parallel evaluation deterministic.
        start_method: multiprocessing start method for the process
            backend (``None`` picks ``fork`` where available).
    """

    backend: str = "thread"
    parallelism: int = 1
    chunk: int = 8
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend not in EVALUATION_BACKENDS:
            raise ServiceError(
                f"backend must be one of {EVALUATION_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.parallelism < 1:
            raise ServiceError("parallelism must be at least 1")
        if self.chunk < 1:
            raise ServiceError("chunk must be at least 1")


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning for one :class:`~repro.pipeline.RequestPipeline`.

    Attributes:
        queue_capacity: bounded request-queue size; offers beyond it
            are rejected with a reason (backpressure, never blocking).
        max_batch: most requests one daemon tick admits in a single
            :meth:`~repro.orchestrator.scheduler.Scheduler.admit_batch`
            pass.
        coalesce_window_s: simulated seconds a reoptimization trigger
            waits for companions before one joint
            :meth:`~repro.orchestrator.orchestrator.SurfaceOrchestrator.reoptimize`
            covers them all.  0 fires on the tick after the trigger.
            Ignored when ``adaptive`` is set.
        adaptive: when set, the coalescing window is controlled by an
            :class:`~repro.pipeline.coalesce.AdaptiveCoalescer` — it
            widens under measured trigger pressure and collapses to
            (typically) zero when idle, so lone steady-state requests
            pay no window latency while bursts still coalesce.
        charge_compute: when True, measured reoptimization wall time is
            charged to the sim clock so latency benchmarks see compute
            cost.  Off by default: wall time is nondeterministic, and
            determinism tests diff sim-clocked telemetry.
        reoptimize_rounds: block-coordinate rounds per coalesced solve.
        evaluation: full evaluation-backend config — the single source
            of truth for parallelism/chunking (defaults to serial
            thread-backend evaluation).

    Init-only conveniences (NOT stored — read
    ``config.evaluation.parallelism`` / ``config.evaluation.chunk``):
        parallelism, eval_chunk: build the ``evaluation`` config for
            you.  Passing either together with an explicit
            ``evaluation=`` raises — there is exactly one place
            evaluation settings live.
    """

    queue_capacity: int = 64
    max_batch: int = 16
    coalesce_window_s: float = 1.0
    charge_compute: bool = False
    reoptimize_rounds: int = 2
    adaptive: Optional[AdaptiveCoalesceConfig] = None
    evaluation: EvaluationConfig = field(default=None)  # type: ignore[assignment]
    parallelism: InitVar[Optional[int]] = None
    eval_chunk: InitVar[Optional[int]] = None

    def __post_init__(
        self,
        parallelism: Optional[int],
        eval_chunk: Optional[int],
    ) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be at least 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if self.coalesce_window_s < 0:
            raise ServiceError("coalesce_window_s must be non-negative")
        if self.reoptimize_rounds < 1:
            raise ServiceError("reoptimize_rounds must be at least 1")
        if self.evaluation is None:
            object.__setattr__(
                self,
                "evaluation",
                EvaluationConfig(
                    parallelism=1 if parallelism is None else parallelism,
                    chunk=8 if eval_chunk is None else eval_chunk,
                ),
            )
        elif parallelism is not None or eval_chunk is not None:
            raise ServiceError(
                "pass evaluation settings in exactly one place: either "
                "an explicit evaluation=EvaluationConfig(...) or the "
                "parallelism=/eval_chunk= conveniences, not both"
            )
