"""Configuration knobs for the concurrent request pipeline."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ServiceError


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning for one :class:`~repro.pipeline.RequestPipeline`.

    Attributes:
        queue_capacity: bounded request-queue size; offers beyond it
            are rejected with a reason (backpressure, never blocking).
        max_batch: most requests one daemon tick admits in a single
            :meth:`~repro.orchestrator.scheduler.Scheduler.admit_batch`
            pass.
        coalesce_window_s: simulated seconds a reoptimization trigger
            waits for companions before one joint
            :meth:`~repro.orchestrator.orchestrator.SurfaceOrchestrator.reoptimize`
            covers them all.  0 fires on the tick after the trigger.
        parallelism: worker threads for candidate-batch objective
            evaluation.  1 keeps everything on the calling thread; any
            value yields bit-identical results (fixed-size chunking).
        eval_chunk: rows per evaluation chunk.  The chunk grid depends
            only on this — never on ``parallelism`` — which is what
            makes parallel evaluation deterministic.
        charge_compute: when True, measured reoptimization wall time is
            charged to the sim clock so latency benchmarks see compute
            cost.  Off by default: wall time is nondeterministic, and
            determinism tests diff sim-clocked telemetry.
        reoptimize_rounds: block-coordinate rounds per coalesced solve.
    """

    queue_capacity: int = 64
    max_batch: int = 16
    coalesce_window_s: float = 1.0
    parallelism: int = 1
    eval_chunk: int = 8
    charge_compute: bool = False
    reoptimize_rounds: int = 2

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be at least 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if self.coalesce_window_s < 0:
            raise ServiceError("coalesce_window_s must be non-negative")
        if self.parallelism < 1:
            raise ServiceError("parallelism must be at least 1")
        if self.eval_chunk < 1:
            raise ServiceError("eval_chunk must be at least 1")
        if self.reoptimize_rounds < 1:
            raise ServiceError("reoptimize_rounds must be at least 1")
