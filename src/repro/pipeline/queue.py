"""Bounded, priority-classed request queue with backpressure.

The admission side of the concurrent pipeline: demands are offered,
classed (interactive / normal / bulk), and either accepted into a
bounded buffer or rejected with a reason.  Rejection-with-reason is the
backpressure contract — the queue never blocks a caller and never grows
without bound, so a burst beyond capacity degrades into explicit
:class:`~repro.broker.calls.RequestStatus.REJECTED` responses instead
of unbounded latency.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..broker.calls import RequestStatus, ServiceRequest, ServiceResponse
from ..broker.handle import ServiceHandle


class PriorityClass(enum.IntEnum):
    """Drain-order class of one queued request (lower drains first)."""

    INTERACTIVE = 0   #: hard-latency applications (sub-20 ms bounds)
    NORMAL = 1        #: everything else
    BULK = 2          #: low-priority background demands

    @classmethod
    def classify(cls, request: ServiceRequest) -> "PriorityClass":
        """Class a request by its demand's latency bound and priority."""
        if request.demand.latency_sensitive:
            return cls.INTERACTIVE
        if request.effective_priority <= 3:
            return cls.BULK
        return cls.NORMAL


@dataclass
class QueuedRequest:
    """One parked request: the envelope plus its caller-facing handle."""

    request: ServiceRequest
    handle: Optional[ServiceHandle] = None
    priority_class: PriorityClass = PriorityClass.NORMAL
    enqueued_at: float = 0.0
    seq: int = 0

    @property
    def sort_key(self):
        """Drain order: class, then priority (desc), then FIFO."""
        return (
            int(self.priority_class),
            -self.request.effective_priority,
            self.seq,
        )


class RequestQueue:
    """A bounded admission queue; offers beyond capacity are rejected."""

    def __init__(self, capacity: int = 64):
        self.capacity = int(capacity)
        self._entries: List[QueuedRequest] = []
        self._seq = itertools.count()
        #: Lifetime counters (the pipeline mirrors these to telemetry).
        self.offered = 0
        self.rejected = 0

    @property
    def depth(self) -> int:
        """Requests currently parked (cancelled ones still count)."""
        return len(self._entries)

    def offer(
        self,
        request: ServiceRequest,
        handle: Optional[ServiceHandle] = None,
        now: float = 0.0,
    ) -> ServiceResponse:
        """Try to park a request; reject with a reason when full."""
        self.offered += 1
        if len(self._entries) >= self.capacity:
            self.rejected += 1
            reason = (
                f"request queue full ({self.capacity} waiting); retry later"
            )
            if handle is not None:
                handle._mark_rejected(reason)
            return ServiceResponse(
                status=RequestStatus.REJECTED,
                request=request,
                reason=reason,
                handle=handle,
                key=request.key,
            )
        entry = QueuedRequest(
            request=request,
            handle=handle,
            priority_class=PriorityClass.classify(request),
            enqueued_at=now,
            seq=next(self._seq),
        )
        self._entries.append(entry)
        return ServiceResponse(
            status=RequestStatus.QUEUED,
            request=request,
            handle=handle,
            key=request.key,
        )

    def drain(self, max_batch: int) -> List[QueuedRequest]:
        """Pop up to ``max_batch`` requests in drain order.

        Cancelled handles (``stop()`` called while queued) are dropped
        silently — they consume no batch slots.
        """
        self._entries.sort(key=lambda e: e.sort_key)
        batch: List[QueuedRequest] = []
        remaining: List[QueuedRequest] = []
        for entry in self._entries:
            if entry.handle is not None and entry.handle._cancelled:
                continue
            if len(batch) < max_batch:
                batch.append(entry)
            else:
                remaining.append(entry)
        self._entries = remaining
        return batch
