"""Deployment goals for the design/placement automation (§5).

"In clean slate scenarios, we also need to consider the design and
deployment stages … compiling upper-layer goals into hardware designs
and deployment configurations."  A :class:`DeploymentGoal` is that
upper-layer goal: what service level is needed, where, and under which
cost/size constraints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import ServiceError


@dataclass(frozen=True)
class DeploymentGoal:
    """What a clean-slate deployment must achieve.

    Attributes:
        room_id: the room to serve.
        target_median_snr_db: coverage target over the room grid.
        frequency_hz: the network's carrier.
        max_cost_usd: hardware budget (``inf`` = unconstrained).
        max_area_m2: largest panel area that fits the walls.
        require_reconfigurable: demand dynamic steering (e.g. for
            mobility); ``None`` = either.
    """

    room_id: str
    target_median_snr_db: float
    frequency_hz: float
    max_cost_usd: float = math.inf
    max_area_m2: float = 1.0
    require_reconfigurable: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ServiceError("carrier must be positive")
        if self.max_cost_usd <= 0:
            raise ServiceError("cost budget must be positive")
        if self.max_area_m2 <= 0:
            raise ServiceError("area budget must be positive")
