"""The surface design database (§5 design automation).

"For design automation, based on the user input, LLMs can locate an
appropriate design from a surface design database.  If existing designs
are inadequate … determine the necessary design parameter adjustments."

The database is the Table 1 catalog plus the generic experiment
designs; :func:`select_designs` ranks candidates against a query, and
:func:`adapt_design` re-parameterizes the nearest design when no
catalog entry covers the requested band — the deterministic stand-in
for the LLM-driven adjustment step.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import ServiceError
from ..surfaces.catalog import CATALOG, GENERIC_DESIGNS
from ..surfaces.specs import SignalProperty, SurfaceSpec


@dataclass(frozen=True)
class DesignQuery:
    """What the deployment needs from a hardware design.

    Attributes:
        frequency_hz: carrier the surface must operate at.
        reconfigurable: require (True) / forbid (False) / accept (None)
            dynamic reconfiguration.
        max_cost_per_element_usd: unit-cost ceiling.
        properties: required control modalities (default: phase).
    """

    frequency_hz: float
    reconfigurable: Optional[bool] = None
    max_cost_per_element_usd: float = math.inf
    properties: Tuple[SignalProperty, ...] = (SignalProperty.PHASE,)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ServiceError("query carrier must be positive")
        if not self.properties:
            raise ServiceError("query needs at least one property")


def _all_specs() -> List[SurfaceSpec]:
    specs = [entry.spec for entry in CATALOG.values()]
    specs.extend(GENERIC_DESIGNS.values())
    return specs


def _matches(spec: SurfaceSpec, query: DesignQuery) -> bool:
    if not spec.in_band(query.frequency_hz):
        return False
    if (
        query.reconfigurable is not None
        and spec.reconfigurable is not query.reconfigurable
    ):
        return False
    if spec.cost_per_element_usd > query.max_cost_per_element_usd:
        return False
    return all(spec.supports(p) for p in query.properties)


def select_designs(query: DesignQuery) -> List[SurfaceSpec]:
    """Catalog designs satisfying a query, cheapest-per-element first."""
    matches = [s for s in _all_specs() if _matches(s, query)]
    return sorted(matches, key=lambda s: s.cost_per_element_usd)


def adapt_design(query: DesignQuery) -> SurfaceSpec:
    """Re-parameterize the nearest design for an uncovered band.

    Picks the band-closest design that satisfies the non-band
    constraints and shifts its operating band to the requested carrier
    (±4 %), keeping the element economics — the §5 "design parameter
    adjustments" path a real deployment would hand to EM simulation.
    """
    candidates = [
        s
        for s in _all_specs()
        if all(s.supports(p) for p in query.properties)
        and (
            query.reconfigurable is None
            or s.reconfigurable is query.reconfigurable
        )
        and s.cost_per_element_usd <= query.max_cost_per_element_usd
    ]
    if not candidates:
        raise ServiceError(
            "no design satisfies the non-band constraints; relax the query"
        )
    nearest = min(
        candidates,
        key=lambda s: abs(
            math.log(s.center_frequency_hz / query.frequency_hz)
        ),
    )
    return dataclasses.replace(
        nearest,
        design=f"{nearest.design}@{query.frequency_hz / 1e9:g}GHz",
        band_hz=(0.96 * query.frequency_hz, 1.04 * query.frequency_hz),
        notes=(
            f"adapted from {nearest.design} for "
            f"{query.frequency_hz / 1e9:g} GHz; requires EM re-simulation"
        ),
    )


def find_design(query: DesignQuery) -> SurfaceSpec:
    """A design for the query: catalog hit if any, else adapted."""
    matches = select_designs(query)
    if matches:
        return matches[0]
    return adapt_design(query)
