"""Candidate mounting sites for deployment automation (§5).

Placement automation needs a menu of physically meaningful mounting
positions: points on walls, at mounting height, with the panel normal
facing into the floor plan.  Sites are enumerated along every wall
footprint at a fixed pitch and can be filtered to those with (partial)
line of sight to the AP or the target room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.environment import Environment
from ..geometry.shapes import Wall
from ..geometry.vec import as_vec3

#: Offset off the wall plane so panels never sit inside the wall.
_WALL_CLEARANCE_M = 0.02


@dataclass(frozen=True)
class CandidateSite:
    """One wall-mounted candidate position.

    Attributes:
        center: panel center position.
        normal: outward panel normal (into the room).
        wall_name: which wall hosts the site (diagnostics).
    """

    center: np.ndarray
    normal: np.ndarray
    wall_name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "center", as_vec3(self.center))
        object.__setattr__(self, "normal", as_vec3(self.normal))


def _interior_normal(env: Environment, wall: Wall) -> Optional[np.ndarray]:
    """The wall normal pointing into the floor plan, or None if unclear."""
    lo, hi = env.bounds()
    interior = (lo + hi) / 2.0
    n = wall.normal2d()
    midpoint = (wall.start + wall.end) / 2.0
    if float(np.dot(interior - midpoint, n)) >= 0:
        return n
    return -n


def enumerate_sites(
    env: Environment,
    spacing_m: float = 1.0,
    height_m: float = 1.8,
    margin_m: float = 0.4,
) -> List[CandidateSite]:
    """Wall-mounted candidate sites along every wall footprint.

    Sites sit ``height_m`` up the wall, ``margin_m`` in from the wall
    ends, every ``spacing_m`` along the footprint, facing the interior.
    Both faces are emitted for interior walls whose two sides face
    rooms; exterior walls get only their interior face.
    """
    if spacing_m <= 0:
        raise ValueError("site spacing must be positive")
    sites: List[CandidateSite] = []
    for wall in env.walls:
        if wall.z_max < height_m:
            continue
        direction = (wall.end - wall.start)[:2]
        length = float(np.linalg.norm(direction))
        usable = length - 2 * margin_m
        if usable <= 0:
            continue
        unit = np.array([direction[0], direction[1], 0.0]) / length
        count = max(1, int(usable // spacing_m) + 1)
        offsets = np.linspace(margin_m, length - margin_m, count)
        normal = _interior_normal(env, wall)
        if normal is None:
            continue
        for offset in offsets:
            base = wall.start + unit * offset
            center = base + normal * _WALL_CLEARANCE_M
            center[2] = height_m
            sites.append(
                CandidateSite(
                    center=center, normal=normal, wall_name=wall.name
                )
            )
    return sites


def sites_facing_room(
    env: Environment,
    sites: Sequence[CandidateSite],
    room_id: str,
    min_visible_fraction: float = 0.3,
    sample_spacing_m: float = 1.0,
) -> List[CandidateSite]:
    """Filter sites that see a useful fraction of a room.

    Visibility is a straight line-of-sight test from the site to a
    coarse grid of room points, requiring the point to lie in front of
    the panel face.
    """
    room = env.room(room_id)
    samples = room.grid(sample_spacing_m, z=1.0)
    kept = []
    for site in sites:
        visible = 0
        for point in samples:
            if float(np.dot(point - site.center, site.normal)) <= 0:
                continue
            if env.is_line_of_sight(site.center, point):
                visible += 1
        if visible / samples.shape[0] >= min_visible_fraction:
            kept.append(site)
    return kept


def sites_seeing_point(
    env: Environment,
    sites: Sequence[CandidateSite],
    point: Sequence[float],
    max_loss_db: float = 20.0,
    frequency_hz: float = 28e9,
) -> List[CandidateSite]:
    """Filter sites with an adequately clear path to a point (the AP)."""
    target = as_vec3(point)
    kept = []
    for site in sites:
        if float(np.dot(target - site.center, site.normal)) <= 0:
            continue
        loss = env.penetration_loss_db(site.center, target, frequency_hz)
        if loss <= max_loss_db:
            kept.append(site)
    return kept
