"""Design & deployment automation (the paper's §5 clean-slate stage)."""

from .designdb import DesignQuery, adapt_design, find_design, select_designs
from .planner import DEFAULT_SIZE_LADDER, DeploymentPlan, DeploymentPlanner
from .requirements import DeploymentGoal
from .sites import (
    CandidateSite,
    enumerate_sites,
    sites_facing_room,
    sites_seeing_point,
)

__all__ = [
    "CandidateSite",
    "DEFAULT_SIZE_LADDER",
    "DeploymentGoal",
    "DeploymentPlan",
    "DeploymentPlanner",
    "DesignQuery",
    "adapt_design",
    "enumerate_sites",
    "find_design",
    "select_designs",
    "sites_facing_room",
    "sites_seeing_point",
]
