"""The deployment planner: goals → (design, site, size) plans (§5).

"Deployment automation involves running the simulator to model the
environment and optimize for placement as part of the surface hardware
configurations."  The planner enumerates candidate sites, pairs them
with database designs, grows the panel until the goal's SNR target is
met (or a constraint binds), and ranks the feasible plans by cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.simulator import ChannelSimulator
from ..core.errors import ServiceError
from ..em.steering import focus_configuration
from ..geometry.environment import Environment
from ..hwmgr.devices import AccessPoint
from ..orchestrator.optimizers import Adam, Optimizer
from ..services import connectivity
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SurfaceSpec
from .designdb import DesignQuery, find_design
from .requirements import DeploymentGoal
from .sites import CandidateSite, enumerate_sites, sites_facing_room, sites_seeing_point

#: Panel sides tried during the size search (elements per side).
DEFAULT_SIZE_LADDER = (8, 12, 16, 24, 32, 48, 64)


@dataclass(frozen=True)
class DeploymentPlan:
    """One feasible (or best-effort) deployment option.

    Attributes:
        spec: the chosen hardware design.
        site: where the panel mounts.
        side_elements: square panel side (elements).
        predicted_median_snr_db: simulator-predicted room median.
        cost_usd: hardware cost.
        area_m2: panel area.
        meets_target: whether the goal's SNR target is met.
    """

    spec: SurfaceSpec
    site: CandidateSite
    side_elements: int
    predicted_median_snr_db: float
    cost_usd: float
    area_m2: float
    meets_target: bool

    def describe(self) -> str:
        """One-line plan summary."""
        flag = "meets target" if self.meets_target else "best effort"
        return (
            f"{self.spec.design} {self.side_elements}x{self.side_elements} "
            f"@ {self.site.wall_name} ({self.site.center[0]:.1f}, "
            f"{self.site.center[1]:.1f}) → "
            f"{self.predicted_median_snr_db:.1f} dB median, "
            f"${self.cost_usd:,.2f}, {self.area_m2 * 1e4:.0f} cm^2 [{flag}]"
        )


class DeploymentPlanner:
    """Plans clean-slate surface deployments for a coverage goal."""

    def __init__(
        self,
        env: Environment,
        ap: AccessPoint,
        optimizer: Optional[Optimizer] = None,
        size_ladder: Sequence[int] = DEFAULT_SIZE_LADDER,
        site_spacing_m: float = 1.2,
        grid_spacing_m: float = 0.8,
        max_sites: int = 6,
    ):
        self.env = env
        self.ap = ap
        self.optimizer = optimizer or Adam(max_iterations=100, learning_rate=0.2)
        self.size_ladder = tuple(size_ladder)
        self.site_spacing_m = site_spacing_m
        self.grid_spacing_m = grid_spacing_m
        self.max_sites = max_sites

    # ------------------------------------------------------------------

    def candidate_sites(self, goal: DeploymentGoal) -> List[CandidateSite]:
        """Sites that both see the target room and hear the AP."""
        sites = enumerate_sites(self.env, spacing_m=self.site_spacing_m)
        sites = sites_facing_room(
            self.env, sites, goal.room_id, min_visible_fraction=0.3
        )
        sites = sites_seeing_point(
            self.env,
            sites,
            self.ap.position,
            max_loss_db=25.0,
            frequency_hz=goal.frequency_hz,
        )
        if not sites:
            raise ServiceError(
                f"no candidate site sees both room {goal.room_id!r} and the AP"
            )
        # Prefer sites closest to the AP (strongest illumination).
        sites.sort(
            key=lambda s: float(np.linalg.norm(s.center - self.ap.position))
        )
        return sites[: self.max_sites]

    def choose_designs(
        self, goal: DeploymentGoal, max_designs: int = 2
    ) -> List[SurfaceSpec]:
        """Candidate hardware designs for the goal (adapted if needed).

        Cheapest-per-element designs are not always cheapest overall
        (column-wise control needs more elements), so the planner
        compares a couple of candidates end to end.
        """
        query = DesignQuery(
            frequency_hz=goal.frequency_hz,
            reconfigurable=goal.require_reconfigurable,
        )
        from .designdb import adapt_design, select_designs

        matches = select_designs(query)
        if not matches:
            return [adapt_design(query)]
        return matches[:max_designs]

    # ------------------------------------------------------------------

    def _evaluate(
        self,
        goal: DeploymentGoal,
        spec: SurfaceSpec,
        site: CandidateSite,
        side: int,
        points: np.ndarray,
        simulator: ChannelSimulator,
    ) -> float:
        panel = SurfacePanel(
            "candidate", spec, side, side, site.center, site.normal
        )
        model = simulator.build(self.ap.node(), points, [panel])
        if spec.reconfigurable:
            # Dynamic steering: per-point best beam.
            snrs = np.zeros(points.shape[0])
            for k in range(points.shape[0]):
                beam = focus_configuration(
                    panel.element_positions(),
                    panel.shape,
                    self.ap.position,
                    points[k],
                    goal.frequency_hz,
                )
                x = panel.feasible(beam).coefficients().reshape(-1)
                h = model.evaluate({panel.panel_id: x})[k]
                snrs[k] = self.ap.budget.snr_db(float(np.sum(np.abs(h) ** 2)))
            return float(np.median(snrs))
        # Static: one optimized configuration for the whole room.
        form = model.linear_form(panel.panel_id, {})
        objective = connectivity.coverage_objective(
            form, budget=self.ap.budget
        )
        warm = focus_configuration(
            panel.element_positions(),
            panel.shape,
            self.ap.position,
            points.mean(axis=0),
            goal.frequency_hz,
        ).flat_phases()
        result = self.optimizer.optimize(objective, warm)
        return float(np.median(objective.snr_db(result.phases)))

    def plan(self, goal: DeploymentGoal, max_plans: int = 5) -> List[DeploymentPlan]:
        """Rank feasible deployments for a goal (cheapest first).

        For each (design, site) pair, the panel grows along the size
        ladder until the target is met or a cost/area constraint binds;
        the best size per pair becomes one plan.
        """
        simulator = ChannelSimulator(self.env, goal.frequency_hz)
        points = self.env.room(goal.room_id).grid(self.grid_spacing_m, z=1.0)
        plans: List[DeploymentPlan] = []
        sites = self.candidate_sites(goal)
        for spec in self.choose_designs(goal):
            for site in sites:
                best: Optional[DeploymentPlan] = None
                for side in self.size_ladder:
                    cost = side * side * spec.cost_per_element_usd
                    area = (side * spec.element_pitch_m) ** 2
                    if cost > goal.max_cost_usd or area > goal.max_area_m2:
                        break
                    median = self._evaluate(
                        goal, spec, site, side, points, simulator
                    )
                    best = DeploymentPlan(
                        spec=spec,
                        site=site,
                        side_elements=side,
                        predicted_median_snr_db=median,
                        cost_usd=cost,
                        area_m2=area,
                        meets_target=median >= goal.target_median_snr_db,
                    )
                    if best.meets_target:
                        break
                if best is not None:
                    plans.append(best)
        if not plans:
            raise ServiceError("no deployment fits the goal's constraints")
        plans.sort(
            key=lambda p: (not p.meets_target, p.cost_usd, -p.predicted_median_snr_db)
        )
        return plans[:max_plans]
