"""Command-line interface for the SurfOS reproduction.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig2
    python -m repro.cli fig4 --quick
    python -m repro.cli fig5
    python -m repro.cli fig6
    python -m repro.cli translate "I want to start VR gaming in this room."
    python -m repro.cli recommend "passive surface for 60 GHz"
    python -m repro.cli plan --room bedroom --target-snr 20
    python -m repro.cli trace --jsonl /tmp/trace.jsonl
    python -m repro.cli trace --report /tmp/trace.jsonl
    python -m repro.cli faults --seed 7 --jsonl /tmp/faults.jsonl
    python -m repro.cli pipeline --requests 10 --json /tmp/bench.json
    python -m repro.cli fleet --shards 3 --requests 12 --seed 7
    python -m repro.cli load --model poisson --rate 20 --requests 100000
    python -m repro.cli load --model flash-crowd --slo "interactive=0.2"
    python -m repro.cli load --sweep --requests 2000 --json /tmp/sweep.json
    python -m repro.cli mobility --adaptive-budget --churn-rate 0.4
    python -m repro.cli info

Every experiment prints the same rendering its benchmark asserts on.
``trace`` runs one orchestrated pass on the two-room apartment and
prints the telemetry summary (optionally exporting the raw event log
as JSON lines); ``trace --report`` renders a previously exported file.
``faults`` runs the degraded-mode recovery scenario (two of five panels
die mid-run); its ``--jsonl`` export strips wall-clock fields, so two
runs with the same seed produce byte-identical files — CI diffs them to
catch nondeterminism.  ``pipeline`` runs the open-loop arrival
benchmark (serial vs pipelined admission) and exits nonzero if the
pipelined p99 latency exceeds serial.  ``fleet`` runs the multi-shard
scenario (quarantine spill + roaming handoff) and exits nonzero when
the interactive SLO is missed; its ``--jsonl`` export is sim-only and
byte-stable per seed, diffed by the ``fleet-smoke`` CI job.  ``load``
replays a seeded arrival model (Poisson, diurnal, flash-crowd, burst,
or a recorded JSONL trace) through the modeled control plane and gates
on an ``--slo`` policy (per-class p99 bounds + satisfaction floor);
``pipeline``, ``fleet``, ``faults``, and ``load`` all share one
result contract — render, optional ``--json`` artifact, ``FAIL:``
lines on stderr, nonzero exit on any gate violation.  ``load --sweep``
instead ladders the offered rate and records the latency-vs-rate
saturation knee (observational — never gated); ``mobility
--adaptive-budget`` turns on drift-aware adaptive solve budgets, which
keep same-seed runs byte-identical while skipping converged solves.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_info(args: argparse.Namespace) -> int:
    from . import __version__
    from .surfaces import list_designs

    print(f"SurfOS reproduction v{__version__}")
    print("Paper: SurfOS: Towards an Operating System for Programmable")
    print("       Radio Environments (HotNets '24)")
    print(f"Known surface designs: {', '.join(list_designs())}")
    print("Experiments: table1, fig2, fig4, fig5, fig6, faults (see DESIGN.md)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    print(table1.run().render())
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from .experiments import fig2

    print(fig2.run().render())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from .experiments import fig4

    if args.quick:
        result = fig4.run(
            passive_sizes=(24, 48),
            programmable_sizes=(12, 22),
            hybrid_sizes=((64, 12),),
        )
    else:
        result = fig4.run()
    print(result.render_sweep())
    print()
    print(result.render_targets())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments import fig5

    print(fig5.run().render())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .experiments import fig6

    result = fig6.run()
    print(result.render())
    return 0 if result.all_match else 1


def _cmd_translate(args: argparse.Namespace) -> int:
    from .llm import IntentTranslator, MockLLM

    translator = IntentTranslator(MockLLM())
    calls = translator.translate(args.text)
    if not calls:
        print("(no service calls — demand not understood)")
        return 1
    for call in calls:
        print(call.render())
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .llm import recommend_designs

    for spec in recommend_designs(args.text):
        lo, hi = spec.band_hz
        kind = "passive" if spec.is_passive else "programmable"
        print(
            f"{spec.design}: {lo / 1e9:g}-{hi / 1e9:g} GHz, {kind}, "
            f"${spec.cost_per_element_usd:.4g}/element"
        )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .autodesign import DeploymentGoal, DeploymentPlanner
    from .core.units import ghz
    from .experiments import build_scenario
    from .orchestrator import Adam

    scenario = build_scenario()
    planner = DeploymentPlanner(
        scenario.env,
        scenario.ap,
        optimizer=Adam(max_iterations=60),
        size_ladder=(8, 12, 16, 24, 32),
        max_sites=4,
    )
    goal = DeploymentGoal(
        room_id=args.room,
        target_median_snr_db=args.target_snr,
        frequency_hz=ghz(args.ghz),
        require_reconfigurable=None if args.any_hardware else True,
    )
    plans = planner.plan(goal)
    for i, plan in enumerate(plans, 1):
        print(f"{i}. {plan.describe()}")
    return 0 if plans[0].meets_target else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .core.errors import SurfOSError
    from .telemetry import (
        load_jsonl,
        render_profile,
        render_report,
        render_solver_stats,
    )
    from .telemetry.report import _aggregate_spans

    if args.report:
        try:
            records = load_jsonl(args.report)
            print(render_report(records))
            if args.profile is not None:
                spans, snapshot = _aggregate_spans(records)
                print()
                print(render_profile(spans, top=args.profile))
                solver_block = render_solver_stats(
                    (snapshot or {}).get("counters") or {},
                    (snapshot or {}).get("gauges") or {},
                )
                if solver_block:
                    print()
                    print(solver_block)
        except SurfOSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    from . import SurfOS
    from .core.units import ghz
    from .geometry import apartment_sites, two_room_apartment
    from .hwmgr import AccessPoint, ClientDevice
    from .orchestrator import Adam, RandomSearch
    from .surfaces import GENERIC_PROGRAMMABLE_28, SurfacePanel

    frequency = ghz(28)
    sites = apartment_sites()
    # With an evaluation backend bound, trace a population optimizer —
    # gradient descent never evaluates candidate batches, so Adam would
    # leave the evaluator (and its telemetry) idle.  Adaptive budgets
    # also need a budget-capable population optimizer with early stop.
    if args.eval_backend or args.adaptive_budget:
        optimizer = RandomSearch(
            max_iterations=args.iterations,
            seed=0,
            early_stop_eps=1e-3 if args.adaptive_budget else None,
        )
    else:
        optimizer = Adam(max_iterations=args.iterations)
    solve_budget = None
    if args.adaptive_budget:
        from .orchestrator import SolveBudgetConfig

        solve_budget = SolveBudgetConfig(enabled=True)
    system = SurfOS(
        two_room_apartment(),
        frequency_hz=frequency,
        optimizer=optimizer,
        grid_spacing_m=1.0,
        solve_budget=solve_budget,
    )
    system.add_access_point(
        AccessPoint("ap", sites.ap_position, 4, frequency, boresight=(1, 0.3, 0))
    )
    system.add_surface(
        SurfacePanel(
            "s1",
            GENERIC_PROGRAMMABLE_28,
            16,
            16,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    system.add_client(ClientDevice("phone", (6.5, 1.5, 1.0)))
    system.boot()
    system.orchestrator.optimize_coverage("bedroom")
    system.orchestrator.enhance_link("phone", snr=25.0)
    evaluator = None
    if args.eval_backend:
        from .pipeline import EvaluationConfig, build_evaluator

        evaluator = build_evaluator(
            EvaluationConfig(backend=args.eval_backend, parallelism=2)
        )
        evaluator.bind_telemetry(system.telemetry)
        system.orchestrator.optimizer.bind_evaluator(evaluator)
    try:
        result = system.reoptimize(rounds=args.rounds)
        if args.adaptive_budget:
            # A second pass hits the solution store warm: the drift
            # probe and the budget clamp both show up in solver.*.
            result = system.reoptimize(rounds=args.rounds)
    finally:
        if evaluator is not None:
            system.orchestrator.optimizer.unbind_evaluator()
            evaluator.close()

    passes = "two reoptimize() passes" if args.adaptive_budget else (
        "one reoptimize()"
    )
    print(f"Traced {passes} on the two-room apartment scenario.")
    print()
    for phase, seconds in result.timing.items():
        print(f"  {phase:>18}: {seconds * 1e3:8.2f} ms")
    print()
    print(system.telemetry.summary())
    if args.profile is not None:
        snapshot = system.telemetry.snapshot()
        print()
        print(render_profile(snapshot.spans, top=args.profile))
        solver_block = render_solver_stats(snapshot.counters, snapshot.gauges)
        if solver_block:
            print()
            print(solver_block)
    if args.jsonl:
        system.telemetry.export_jsonl(args.jsonl)
        print(f"\nevent log written to {args.jsonl}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .experiments import degradation
    from .experiments.result import finish

    system = degradation.build_system(
        seed=args.seed, panel_size=args.panels
    )
    result = degradation.run(
        seed=args.seed,
        kill=tuple(args.kill),
        panel_size=args.panels,
        system=system,
    )
    code = finish(result, args.json, artifact_label="scenario results")
    if args.jsonl:
        system.telemetry.export_jsonl(args.jsonl, sim_only=True)
        print(f"\nsim-only event log written to {args.jsonl}")
    return code


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from .experiments import arrivals
    from .experiments.result import finish

    result = arrivals.run(
        requests=args.requests,
        rate_hz=args.rate,
        seed=args.seed,
        backend=args.eval_backend,
    )
    return finish(result, args.json, artifact_label="benchmark results")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .experiments import fleet as fleet_experiment
    from .experiments.result import finish

    result = fleet_experiment.run(
        shards=args.shards,
        requests=args.requests,
        seed=args.seed,
        strategy=args.strategy,
        parallelism=args.workers,
        backend=args.eval_backend,
        jsonl=args.jsonl,
        scene=args.scene,
    )
    code = finish(result, args.json, artifact_label="scenario results")
    if args.jsonl:
        print(f"\nsim-only event log written to {args.jsonl}")
    return code


def _cmd_mobility(args: argparse.Namespace) -> int:
    from .experiments import mobility
    from .experiments.result import finish

    config = mobility.MobilityConfig(
        scene=args.scene,
        seed=args.seed,
        steps=args.steps,
        dt_s=args.dt,
        clients=args.clients,
        walkers=args.walkers,
        churn_rate_hz=args.churn_rate,
        prefetch=not args.no_prefetch,
        channel_workers=args.workers,
        panel_size=args.panel_size,
        adaptive_budget=args.adaptive_budget,
        eval_backend=args.eval_backend,
    )
    result = mobility.run(config, jsonl=args.jsonl)
    code = finish(result, args.json, artifact_label="scenario results")
    if args.jsonl:
        print(f"\nsim-only event log written to {args.jsonl}")
    return code


def _cmd_load(args: argparse.Namespace) -> int:
    from .core.errors import SurfOSError
    from .experiments.result import finish
    from .load import (
        DEFAULT_SWEEP_RATES,
        LoadConfig,
        LoadHarness,
        SLOPolicy,
        build_model,
        run_sweep,
        write_trace,
    )

    if args.sweep:
        try:
            rates = (
                tuple(float(r) for r in args.sweep_rates.split(","))
                if args.sweep_rates
                else DEFAULT_SWEEP_RATES
            )
            config_kwargs = {"queue_capacity": args.queue_capacity}
            if args.window > 0:
                config_kwargs["coalesce_window_s"] = args.window
                config_kwargs["adaptive"] = None
            result = run_sweep(
                rates=rates,
                requests_per_rate=args.requests,
                seed=args.seed,
                config=LoadConfig(**config_kwargs),
            )
        except (SurfOSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return finish(result, args.json, artifact_label="sweep results")

    try:
        model = build_model(
            args.model,
            requests=args.requests,
            rate_hz=args.rate,
            seed=args.seed,
            trace=args.trace,
            period_s=args.period,
            depth=args.depth,
            flash_at_s=args.flash_at,
            flash_duration_s=args.flash_duration,
            multiplier=args.multiplier,
        )
        slo = SLOPolicy.parse(args.slo) if args.slo else None
        config_kwargs = {"queue_capacity": args.queue_capacity}
        if args.window > 0:
            # A fixed window replaces the adaptive controller.
            config_kwargs["coalesce_window_s"] = args.window
            config_kwargs["adaptive"] = None
        config = LoadConfig(**config_kwargs)
    except (SurfOSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.record_trace:
        write_trace(args.record_trace, model.times())
        print(f"arrival trace written to {args.record_trace}")
    harness = LoadHarness(config)
    result = harness.run(model, slo=slo, jsonl=args.jsonl)
    code = finish(result, args.json, artifact_label="load results")
    if args.jsonl:
        print(f"\nsim-only event log written to {args.jsonl}")
    return code


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SurfOS reproduction: experiments and tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and catalog summary").set_defaults(
        fn=_cmd_info
    )
    sub.add_parser("table1", help="regenerate Table 1").set_defaults(
        fn=_cmd_table1
    )
    sub.add_parser(
        "fig2", help="coverage-vs-localization heatmaps"
    ).set_defaults(fn=_cmd_fig2)
    fig4 = sub.add_parser("fig4", help="cost/size trade-off sweep")
    fig4.add_argument(
        "--quick", action="store_true", help="reduced sweep (~30 s)"
    )
    fig4.set_defaults(fn=_cmd_fig4)
    sub.add_parser("fig5", help="multitasking CDFs").set_defaults(fn=_cmd_fig5)
    sub.add_parser("fig6", help="LLM demand translation").set_defaults(
        fn=_cmd_fig6
    )

    translate = sub.add_parser(
        "translate", help="translate a demand into service calls"
    )
    translate.add_argument("text", help="natural-language demand")
    translate.set_defaults(fn=_cmd_translate)

    recommend = sub.add_parser(
        "recommend", help="recommend hardware designs for a request"
    )
    recommend.add_argument("text", help="natural-language hardware request")
    recommend.set_defaults(fn=_cmd_recommend)

    plan = sub.add_parser(
        "plan", help="plan a clean-slate deployment for the apartment"
    )
    plan.add_argument("--room", default="bedroom")
    plan.add_argument("--target-snr", type=float, default=20.0)
    plan.add_argument("--ghz", type=float, default=28.0)
    plan.add_argument(
        "--any-hardware",
        action="store_true",
        help="allow passive designs too",
    )
    plan.set_defaults(fn=_cmd_plan)

    trace = sub.add_parser(
        "trace",
        help="run one orchestrated pass and print its telemetry report",
    )
    trace.add_argument(
        "--report",
        metavar="FILE",
        help="render a previously exported JSON-lines file instead of running",
    )
    trace.add_argument(
        "--jsonl", metavar="FILE", help="export the event log as JSON lines"
    )
    trace.add_argument(
        "--rounds", type=int, default=2, help="block-coordinate rounds"
    )
    trace.add_argument(
        "--eval-backend",
        choices=("thread", "process"),
        default=None,
        help=(
            "bind a candidate-evaluation backend for the traced pass "
            "(bit-identical results; evaluator.* metrics land in the report)"
        ),
    )
    trace.add_argument(
        "--iterations", type=int, default=60, help="optimizer iteration budget"
    )
    trace.add_argument(
        "--adaptive-budget",
        action="store_true",
        help=(
            "enable drift-aware adaptive solve budgets and trace a second "
            "warm pass (solver.* stats land in --profile output)"
        ),
    )
    trace.add_argument(
        "--profile",
        type=int,
        nargs="?",
        const=10,
        default=None,
        metavar="N",
        help="also print the top-N telemetry spans by self-time (default 10)",
    )
    trace.set_defaults(fn=_cmd_trace)

    faults = sub.add_parser(
        "faults",
        help="degraded-mode recovery scenario (panels die mid-run)",
    )
    faults.add_argument(
        "--seed", type=int, default=0, help="fault-injection seed"
    )
    faults.add_argument(
        "--panels",
        type=int,
        default=10,
        metavar="N",
        help="elements per panel side (default 10)",
    )
    faults.add_argument(
        "--kill",
        nargs="+",
        default=["rs-2", "rs-4"],
        metavar="ID",
        help="panel ids to kill mid-run (default rs-2 rs-4)",
    )
    faults.add_argument(
        "--jsonl",
        metavar="FILE",
        help="export the sim-only (wall-clock-free) event log",
    )
    faults.add_argument(
        "--json", metavar="FILE", help="write the scenario summary as JSON"
    )
    faults.set_defaults(fn=_cmd_faults)

    pipeline = sub.add_parser(
        "pipeline",
        help="open-loop arrival benchmark: serial vs pipelined admission",
    )
    pipeline.add_argument(
        "--requests", type=int, default=10, help="requests in the trace"
    )
    pipeline.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="HZ",
        help="Poisson arrival rate; 0 = one burst (default)",
    )
    pipeline.add_argument(
        "--seed", type=int, default=0, help="arrival/placement seed"
    )
    pipeline.add_argument(
        "--json", metavar="FILE", help="write the comparison as JSON"
    )
    pipeline.add_argument(
        "--eval-backend",
        choices=("thread", "process"),
        default="thread",
        help="candidate-evaluation backend (bit-identical results)",
    )
    pipeline.set_defaults(fn=_cmd_pipeline)

    fleet = sub.add_parser(
        "fleet",
        help="multi-shard fleet scenario: quarantine spill + handoff",
    )
    fleet.add_argument(
        "--shards", type=int, default=3, help="environment shards (zones)"
    )
    fleet.add_argument(
        "--requests", type=int, default=12, help="requests in the trace"
    )
    fleet.add_argument(
        "--seed", type=int, default=0, help="workload/placement seed"
    )
    fleet.add_argument(
        "--strategy",
        choices=("zone", "least-loaded", "congestion"),
        default="congestion",
        help="placement strategy (default congestion-aware)",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="evaluation workers per shard (results identical at any N)",
    )
    fleet.add_argument(
        "--eval-backend",
        choices=("thread", "process"),
        default="thread",
        help="candidate-evaluation backend (bit-identical results)",
    )
    fleet.add_argument(
        "--jsonl",
        metavar="FILE",
        help="export the sim-only (wall-clock-free) fleet event log",
    )
    fleet.add_argument(
        "--json", metavar="FILE", help="write the scenario summary as JSON"
    )
    fleet.add_argument(
        "--scene",
        default="two-room",
        help="registered scene every shard stands up (see `mobility`)",
    )
    fleet.set_defaults(fn=_cmd_fleet)

    from .geometry.scenes import SCENE_NAMES

    mobility = sub.add_parser(
        "mobility",
        help="mobility & churn scenario with speculative leg prefetch",
    )
    mobility.add_argument(
        "--scene",
        choices=SCENE_NAMES,
        default="apartment",
        help="registered scene to run in",
    )
    mobility.add_argument(
        "--seed", type=int, default=0, help="motion/churn seed"
    )
    mobility.add_argument(
        "--steps", type=int, default=60, help="daemon cycles to run"
    )
    mobility.add_argument(
        "--dt", type=float, default=0.25, help="simulated seconds per cycle"
    )
    mobility.add_argument(
        "--clients", type=int, default=1, help="mobile endpoints on the scene loops"
    )
    mobility.add_argument(
        "--walkers", type=int, default=1, help="obstacle walkers on the scene loops"
    )
    mobility.add_argument(
        "--churn-rate",
        type=float,
        default=0.0,
        metavar="HZ",
        help="Poisson guest arrival rate (0 = pure motion)",
    )
    mobility.add_argument(
        "--no-prefetch",
        action="store_true",
        help="disable speculative leg pre-tracing",
    )
    mobility.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="channel-leg trace workers (results identical at any N)",
    )
    mobility.add_argument(
        "--panel-size", type=int, default=8, help="elements per surface side"
    )
    mobility.add_argument(
        "--adaptive-budget",
        action="store_true",
        help=(
            "drift-aware adaptive solve budgets with early stop "
            "(same-seed results stay byte-identical)"
        ),
    )
    mobility.add_argument(
        "--eval-backend",
        choices=("thread", "process"),
        default=None,
        help="candidate-evaluation backend (bit-identical results)",
    )
    mobility.add_argument(
        "--jsonl",
        metavar="FILE",
        help="export the sim-only (wall-clock-free) event log",
    )
    mobility.add_argument(
        "--json", metavar="FILE", help="write the scenario summary as JSON"
    )
    mobility.set_defaults(fn=_cmd_mobility)

    load = sub.add_parser(
        "load",
        help="trace-driven load harness: arrival models + SLO gate",
    )
    load.add_argument(
        "--model",
        choices=("poisson", "diurnal", "flash-crowd", "burst", "trace"),
        default="poisson",
        help="arrival model (default poisson)",
    )
    load.add_argument(
        "--requests", type=int, default=10_000, help="requests in the run"
    )
    load.add_argument(
        "--rate",
        type=float,
        default=20.0,
        metavar="HZ",
        help="mean arrival rate (default 20)",
    )
    load.add_argument(
        "--seed", type=int, default=0, help="arrival/class-mix seed"
    )
    load.add_argument(
        "--trace",
        metavar="FILE",
        help="JSONL arrival trace to replay (model=trace)",
    )
    load.add_argument(
        "--record-trace",
        metavar="FILE",
        help="write the model's arrival times as a JSONL trace first",
    )
    load.add_argument(
        "--period",
        type=float,
        default=None,
        metavar="S",
        help="diurnal: rate-profile period in seconds",
    )
    load.add_argument(
        "--depth",
        type=float,
        default=None,
        help="diurnal: modulation depth in [0, 1]",
    )
    load.add_argument(
        "--flash-at",
        type=float,
        default=None,
        metavar="S",
        help="flash-crowd: spike start time",
    )
    load.add_argument(
        "--flash-duration",
        type=float,
        default=None,
        metavar="S",
        help="flash-crowd: spike duration",
    )
    load.add_argument(
        "--multiplier",
        type=float,
        default=None,
        help="flash-crowd: rate multiplier during the spike",
    )
    load.add_argument(
        "--slo",
        metavar="SPEC",
        help=(
            "SLO policy, e.g. "
            "'interactive=0.2,normal=1.0,bulk=5.0,satisfaction=0.95,"
            "p99=2.0' — violations exit nonzero"
        ),
    )
    load.add_argument(
        "--queue-capacity",
        type=int,
        default=256,
        help="admission queue capacity (default 256)",
    )
    load.add_argument(
        "--window",
        type=float,
        default=0.0,
        metavar="S",
        help="fixed coalesce window; 0 = adaptive (default)",
    )
    load.add_argument(
        "--sweep",
        action="store_true",
        help=(
            "offered-load sweep: replay the seeded Poisson workload over "
            "an ascending rate ladder and report the saturation knee "
            "(observational; never gated)"
        ),
    )
    load.add_argument(
        "--sweep-rates",
        metavar="R1,R2,...",
        help="comma-separated ascending rates for --sweep (req/s)",
    )
    load.add_argument(
        "--json", metavar="FILE", help="write the load summary as JSON"
    )
    load.add_argument(
        "--jsonl",
        metavar="FILE",
        help="export the sim-only (wall-clock-free) event log",
    )
    load.set_defaults(fn=_cmd_load)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
