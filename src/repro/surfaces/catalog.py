"""The Table 1 hardware catalog plus generic experiment designs.

Each entry reproduces one row of the paper's Table 1 ("Diverse hardware
designs, transmissive (T) and reflective (R)") as a full
:class:`SurfaceSpec`.  Where the paper reports a whole-prototype dollar
figure, we derive a per-element cost from the prototype's published
element count (recorded in ``assumed_elements``); "/" (unreported) rows
get estimates flagged in the notes.

Two additional *generic* mmWave designs parameterize the Fig. 4 cost /
size sweep: a fully passive sheet (AutoMS-style economics) and an
element-wise programmable panel (mmWall/NR-Surface-style economics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.configuration import Granularity
from ..core.units import ghz
from .specs import OperationMode, SignalProperty, SurfaceSpec

_P = SignalProperty
_OM = OperationMode


@dataclass(frozen=True)
class CatalogEntry:
    """One published surface system.

    Attributes:
        spec: the derived machine-readable spec.
        venue: publication venue and year.
        table1_cost: the cost cell exactly as printed in Table 1
            ("/" where the paper reports none).
        assumed_elements: element count used to derive per-element cost.
    """

    spec: SurfaceSpec
    venue: str
    table1_cost: str
    assumed_elements: int

    @property
    def name(self) -> str:
        """Design name."""
        return self.spec.design


def _entry(
    design: str,
    band_ghz: Tuple[float, float],
    props: Sequence[SignalProperty],
    mode: OperationMode,
    reconfigurable: bool,
    venue: str,
    table1_cost: str,
    assumed_elements: int,
    total_cost_usd: Optional[float],
    granularity: Granularity = Granularity.ELEMENT,
    phase_bits: Optional[int] = None,
    control_delay_s: float = 1e-3,
    notes: str = "",
) -> CatalogEntry:
    if total_cost_usd is None:
        # Unreported ("/") — estimate from comparable prototypes.
        total_cost_usd = 200.0
        notes = (notes + " cost unreported in Table 1; estimated.").strip()
    spec = SurfaceSpec(
        design=design,
        band_hz=(ghz(band_ghz[0]), ghz(band_ghz[1])),
        properties=frozenset(props),
        operation_mode=mode,
        reconfigurable=reconfigurable,
        granularity=granularity if reconfigurable else Granularity.ELEMENT,
        phase_bits=phase_bits,
        control_delay_s=control_delay_s if reconfigurable else math.inf,
        cost_per_element_usd=total_cost_usd / assumed_elements,
        notes=notes,
    )
    return CatalogEntry(
        spec=spec,
        venue=venue,
        table1_cost=table1_cost,
        assumed_elements=assumed_elements,
    )


#: Table 1, in the paper's row order.
TABLE1: Tuple[CatalogEntry, ...] = (
    _entry(
        "LAIA", (2.4, 2.4), [_P.PHASE], _OM.TRANSMISSIVE, True,
        "NSDI '19", "/", 224, None, phase_bits=1,
        notes="Large array of inexpensive antennas; 2-state phase.",
    ),
    _entry(
        "RFocus", (2.4, 2.4), [_P.AMPLITUDE], _OM.TRANSFLECTIVE, True,
        "NSDI '20", "/", 3200, None, phase_bits=None,
        notes="On/off amplitude elements, 3200-element prototype.",
    ),
    _entry(
        "LLAMA", (2.4, 2.4), [_P.POLARIZATION], _OM.TRANSFLECTIVE, True,
        "NSDI '21", "900", 48, 900.0,
        notes="Programmable polarization rotation.",
    ),
    _entry(
        "LAVA", (2.4, 2.4), [_P.AMPLITUDE], _OM.TRANSMISSIVE, True,
        "SIGCOMM '21", "/", 224, None,
        notes="3D coverage for small IoT devices; links on/off.",
    ),
    _entry(
        "ScatterMIMO", (5.0, 5.0), [_P.PHASE], _OM.REFLECTIVE, True,
        "MobiCom '20", "450", 48, 450.0, phase_bits=2,
        notes="Smart surface adding virtual MIMO paths.",
    ),
    _entry(
        "RFlens", (5.0, 5.0), [_P.PHASE], _OM.TRANSMISSIVE, True,
        "MobiCom '21", "246", 100, 246.0, phase_bits=1,
        notes="Metasurface lens for IoT communication and sensing.",
    ),
    _entry(
        "Diffract", (5.0, 5.0), [_P.PHASE], _OM.TRANSMISSIVE, False,
        "MobiCom '23", "33", 64, 33.0,
        notes="Edge diffraction field programming; passive (fixed).",
    ),
    _entry(
        "Scrolls", (0.9, 6.0), [_P.FREQUENCY], _OM.REFLECTIVE, True,
        "MobiCom '23", "156", 240, 156.0, granularity=Granularity.ROW,
        control_delay_s=0.5,
        notes="Rolling flexible wideband surfaces; row-wise tuning.",
    ),
    _entry(
        "mmWall", (24.0, 24.0), [_P.PHASE], _OM.TRANSFLECTIVE, True,
        "NSDI '23", "~10K", 4000, 10_000.0,
        granularity=Granularity.COLUMN, phase_bits=None, control_delay_s=1e-5,
        notes="Steerable transflective metamaterial; column-wise.",
    ),
    _entry(
        "NR-Surface", (24.0, 24.0), [_P.PHASE], _OM.REFLECTIVE, True,
        "NSDI '24", "600", 269, 600.0,
        granularity=Granularity.COLUMN, phase_bits=1, control_delay_s=1e-4,
        notes="NextG-ready microwatt-reconfigurable; column-wise.",
    ),
    _entry(
        "PMSat", (20.0, 30.0), [_P.PHASE], _OM.TRANSMISSIVE, False,
        "MobiCom '23", "30", 1024, 30.0,
        notes="Passive metasurface for LEO satellite links.",
    ),
    _entry(
        "MilliMirror", (60.0, 60.0), [_P.PHASE], _OM.REFLECTIVE, False,
        "MobiCom '22", "15", 10_000, 15.0,
        notes="3D-printed passive reflecting surface.",
    ),
    _entry(
        "AutoMS", (60.0, 60.0), [_P.PHASE], _OM.REFLECTIVE, False,
        "MobiCom '24", "<2", 60_000, 2.0,
        notes="Automated low-cost passive metasurface service.",
    ),
)

CATALOG: Dict[str, CatalogEntry] = {e.name: e for e in TABLE1}


#: Generic passive mmWave sheet for the Fig. 4 sweeps: AutoMS-style
#: economics scaled to 28 GHz (zero power, fixed at fabrication,
#: fractions of a cent per element).
GENERIC_PASSIVE_28 = SurfaceSpec(
    design="generic-passive-28",
    band_hz=(ghz(27.0), ghz(29.0)),
    properties=frozenset([_P.PHASE]),
    operation_mode=_OM.REFLECTIVE,
    reconfigurable=False,
    control_delay_s=math.inf,
    cost_per_element_usd=0.002,
    max_stored_configurations=1,
    notes="Synthetic passive design for the cost/size trade-off sweep.",
)

#: Generic programmable mmWave panel: mmWall/NR-Surface-style economics
#: (> $2 per element), element-wise continuous phase, fast actuation.
GENERIC_PROGRAMMABLE_28 = SurfaceSpec(
    design="generic-programmable-28",
    band_hz=(ghz(27.0), ghz(29.0)),
    properties=frozenset([_P.PHASE]),
    operation_mode=_OM.REFLECTIVE,
    reconfigurable=True,
    granularity=Granularity.ELEMENT,
    phase_bits=2,
    control_delay_s=1e-4,
    cost_per_element_usd=2.5,
    max_stored_configurations=64,
    notes="Synthetic programmable design for the cost/size sweep.",
)

#: Column-wise variant used by the granularity ablation.
GENERIC_COLUMNWISE_28 = SurfaceSpec(
    design="generic-columnwise-28",
    band_hz=(ghz(27.0), ghz(29.0)),
    properties=frozenset([_P.PHASE]),
    operation_mode=_OM.REFLECTIVE,
    reconfigurable=True,
    granularity=Granularity.COLUMN,
    phase_bits=2,
    control_delay_s=1e-4,
    cost_per_element_usd=1.0,
    max_stored_configurations=64,
    notes="Column-wise control ablation design.",
)

GENERIC_DESIGNS: Dict[str, SurfaceSpec] = {
    s.design: s
    for s in (GENERIC_PASSIVE_28, GENERIC_PROGRAMMABLE_28, GENERIC_COLUMNWISE_28)
}


def get_design(name: str) -> SurfaceSpec:
    """Look up a design spec by name (Table 1 or generic)."""
    if name in CATALOG:
        return CATALOG[name].spec
    if name in GENERIC_DESIGNS:
        return GENERIC_DESIGNS[name]
    known = ", ".join(sorted(list(CATALOG) + list(GENERIC_DESIGNS)))
    raise KeyError(f"unknown surface design {name!r}; known: {known}")


def list_designs() -> List[str]:
    """All known design names."""
    return sorted(list(CATALOG) + list(GENERIC_DESIGNS))


def table1_rows() -> List[Tuple[str, str, str, str, str]]:
    """Table 1 rendered from the specs: design, band, mode, reconfig, cost."""
    return [entry.spec.summary_row() for entry in TABLE1]
