"""Surface hardware specifications.

The paper's hardware manager requires drivers to "explicitly capture
and expose key hardware parameters to the upper layer" (§3.1):
wideband frequency response, operation mode, control delay, control
granularity, plus the cost/size axes that drive the Fig. 4 trade-off
study.  :class:`SurfaceSpec` is that machine-readable datasheet.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..core.configuration import Granularity
from ..core.units import wavelength


class SignalProperty(enum.Enum):
    """Fundamental signal properties a surface element can alter."""

    PHASE = "phase"
    AMPLITUDE = "amplitude"
    POLARIZATION = "polarization"
    FREQUENCY = "frequency"


class OperationMode(enum.Enum):
    """Whether a surface reflects, transmits, or does both."""

    REFLECTIVE = "reflective"
    TRANSMISSIVE = "transmissive"
    TRANSFLECTIVE = "transflective"  # both, e.g. mmWall

    @property
    def reflects(self) -> bool:
        """True if the surface redirects energy back into its half-space."""
        return self in (OperationMode.REFLECTIVE, OperationMode.TRANSFLECTIVE)

    @property
    def transmits(self) -> bool:
        """True if the surface passes redirected energy through itself."""
        return self in (OperationMode.TRANSMISSIVE, OperationMode.TRANSFLECTIVE)


@dataclass(frozen=True)
class SurfaceSpec:
    """Machine-readable datasheet of one surface hardware design.

    Attributes:
        design: design name (e.g. ``"mmWall"``).
        band_hz: ``(low, high)`` operating band edges in Hz.
        properties: which signal properties the elements control.
        operation_mode: reflective / transmissive / transflective.
        reconfigurable: False for passive (one-time programmable).
        granularity: spatial control granularity when reconfigurable.
        phase_bits: phase-shifter resolution; ``None`` = continuous.
        control_delay_s: delay to update a remotely controlled surface;
            ``math.inf`` for passive hardware (the paper's "ROM").
        cost_per_element_usd: unit cost driving the Fig. 4b sweep.
        element_spacing_wavelengths: element pitch at band center.
        element_gain_dbi: meta-atom boresight gain.
        element_cos_exponent: meta-atom pattern envelope exponent.
        out_of_band_loss_db: penetration loss the panel inflicts on
            signals *outside* its band that must pass through it — the
            "unintended blocking" hazard of §2.1.
        max_stored_configurations: codebook capacity (1 for passive).
        notes: free-form provenance notes.
    """

    design: str
    band_hz: Tuple[float, float]
    properties: FrozenSet[SignalProperty]
    operation_mode: OperationMode
    reconfigurable: bool
    granularity: Granularity = Granularity.ELEMENT
    phase_bits: Optional[int] = None
    control_delay_s: float = field(default=1e-3)
    cost_per_element_usd: float = 1.0
    element_spacing_wavelengths: float = 0.5
    element_gain_dbi: float = 5.0
    element_cos_exponent: float = 1.0
    out_of_band_loss_db: float = 3.0
    max_stored_configurations: int = 8
    notes: str = ""

    def __post_init__(self) -> None:
        lo, hi = self.band_hz
        if not (0 < lo <= hi):
            raise ValueError(f"invalid band {self.band_hz} for {self.design}")
        if not self.properties:
            raise ValueError(f"{self.design}: must control >=1 signal property")
        if not self.reconfigurable and not math.isinf(self.control_delay_s):
            raise ValueError(
                f"{self.design}: passive surfaces have infinite control delay"
            )
        if self.phase_bits is not None and self.phase_bits < 1:
            raise ValueError(f"{self.design}: phase_bits must be >=1 or None")
        if self.cost_per_element_usd < 0:
            raise ValueError(f"{self.design}: negative cost")
        if self.max_stored_configurations < 1:
            raise ValueError(f"{self.design}: needs >=1 stored configuration")

    @property
    def center_frequency_hz(self) -> float:
        """Geometric center of the operating band."""
        lo, hi = self.band_hz
        return math.sqrt(lo * hi)

    @property
    def element_pitch_m(self) -> float:
        """Physical element pitch (m) at band center."""
        return self.element_spacing_wavelengths * wavelength(
            self.center_frequency_hz
        )

    @property
    def is_passive(self) -> bool:
        """Passive = one-time programmable at fabrication."""
        return not self.reconfigurable

    def supports(self, prop: SignalProperty) -> bool:
        """Whether the hardware controls a given signal property."""
        return prop in self.properties

    def in_band(self, frequency_hz: float) -> bool:
        """Whether a carrier lies in the operating band."""
        lo, hi = self.band_hz
        return lo <= frequency_hz <= hi

    def efficiency(self, frequency_hz: float) -> float:
        """Redirection amplitude efficiency at a carrier.

        The wideband frequency response of §3.1: unity in band, rolling
        off smoothly outside (one octave away the surface redirects
        essentially nothing).
        """
        lo, hi = self.band_hz
        if lo <= frequency_hz <= hi:
            return 1.0
        edge = lo if frequency_hz < lo else hi
        octaves = abs(math.log2(frequency_hz / edge))
        return max(0.0, 1.0 - min(octaves, 1.0)) ** 2

    def through_loss_db(self, frequency_hz: float) -> float:
        """Loss inflicted on *other* networks' signals passing through.

        In-band transmissive hardware is engineered to pass signal;
        everything else presents its out-of-band blocking loss —
        exactly the §2.1 hazard ("surfaces designed for 2.4 GHz may
        block 3 GHz cellular and 5 GHz Wi-Fi signals").
        """
        if self.in_band(frequency_hz) and self.operation_mode.transmits:
            return 1.0
        return self.out_of_band_loss_db

    def summary_row(self) -> Tuple[str, str, str, str, str]:
        """A Table-1-style row: design, band, control mode, reconfig, cost."""
        lo, hi = self.band_hz
        if lo == hi or hi / lo < 1.2:
            band = f"{lo / 1e9:g} GHz"
        else:
            band = f"{lo / 1e9:g}-{hi / 1e9:g} GHz"
        props = "/".join(sorted(p.value.capitalize() for p in self.properties))
        mode = {
            OperationMode.REFLECTIVE: "R",
            OperationMode.TRANSMISSIVE: "T",
            OperationMode.TRANSFLECTIVE: "T & R",
        }[self.operation_mode]
        if self.reconfigurable:
            suffix = {
                Granularity.ELEMENT: "",
                Granularity.COLUMN: " (column-wise)",
                Granularity.ROW: " (row-wise)",
                Granularity.GLOBAL: " (global)",
            }[self.granularity]
            reconf = "yes" + suffix
        else:
            reconf = "no"
        cost = f"{self.cost_per_element_usd:.4g} $/el"
        return (self.design, band, f"{props} {mode}", reconf, cost)
