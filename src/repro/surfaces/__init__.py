"""Surface hardware models: specs, panels, and the Table 1 catalog."""

from .catalog import (
    CATALOG,
    GENERIC_COLUMNWISE_28,
    GENERIC_DESIGNS,
    GENERIC_PASSIVE_28,
    GENERIC_PROGRAMMABLE_28,
    TABLE1,
    CatalogEntry,
    get_design,
    list_designs,
    table1_rows,
)
from .panel import SurfacePanel
from .specs import OperationMode, SignalProperty, SurfaceSpec

__all__ = [
    "CATALOG",
    "CatalogEntry",
    "GENERIC_COLUMNWISE_28",
    "GENERIC_DESIGNS",
    "GENERIC_PASSIVE_28",
    "GENERIC_PROGRAMMABLE_28",
    "OperationMode",
    "SignalProperty",
    "SurfacePanel",
    "SurfaceSpec",
    "TABLE1",
    "get_design",
    "list_designs",
    "table1_rows",
]
