"""A physical surface panel: spec + geometry + element lattice.

The panel is the *data plane* object: it owns the element positions and
the configuration currently actuating the passing waves.  Drivers (the
control plane) mutate it through the hardware manager; the channel
simulator reads element positions and the applied configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..core.configuration import Granularity, SurfaceConfiguration
from ..core.errors import ConfigurationError
from ..em.antenna import AntennaPattern
from ..geometry.vec import as_vec3, normalize
from .specs import OperationMode, SurfaceSpec


@dataclass
class SurfacePanel:
    """One mounted surface panel.

    Attributes:
        panel_id: unique id within the deployment.
        spec: the hardware design datasheet.
        rows: element rows (along the panel's vertical axis).
        cols: element columns (along the panel's horizontal axis).
        center: mounting position of the panel center.
        normal: outward unit normal (the side it serves).
        up: approximate vertical reference for the element lattice.
    """

    panel_id: str
    spec: SurfaceSpec
    rows: int
    cols: int
    center: np.ndarray
    normal: np.ndarray
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 1.0]))

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("panel needs at least a 1x1 lattice")
        self.center = as_vec3(self.center)
        self.normal = normalize(self.normal)
        self.up = normalize(self.up)
        if abs(float(np.dot(self.normal, self.up))) > 0.99:
            raise ConfigurationError("panel normal and up are degenerate")
        self._configuration = SurfaceConfiguration.zeros(
            self.rows, self.cols, name="fabrication-default"
        )
        self._positions_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        """Lattice shape ``(rows, cols)``."""
        return (self.rows, self.cols)

    @property
    def num_elements(self) -> int:
        """Total element count."""
        return self.rows * self.cols

    @property
    def element_pitch_m(self) -> float:
        """Element pitch from the spec (m)."""
        return self.spec.element_pitch_m

    @property
    def width_m(self) -> float:
        """Panel width (m), columns × pitch."""
        return self.cols * self.element_pitch_m

    @property
    def height_m(self) -> float:
        """Panel height (m), rows × pitch."""
        return self.rows * self.element_pitch_m

    @property
    def area_m2(self) -> float:
        """Panel area (m²)."""
        return self.width_m * self.height_m

    @property
    def cost_usd(self) -> float:
        """Hardware cost from the per-element cost model."""
        return self.num_elements * self.spec.cost_per_element_usd

    def plane_axes(self) -> Tuple[np.ndarray, np.ndarray]:
        """In-plane unit axes ``(u, v)``: u horizontal, v vertical."""
        u = np.cross(self.up, self.normal)
        u = u / np.linalg.norm(u)
        v = np.cross(self.normal, u)
        return u, v / np.linalg.norm(v)

    def element_positions(self) -> np.ndarray:
        """3-D positions of all elements, shape ``(rows*cols, 3)``.

        Row-major order matching :meth:`SurfaceConfiguration.flat_phases`:
        element ``(r, c)`` is at index ``r*cols + c``.
        """
        if self._positions_cache is None:
            u, v = self.plane_axes()
            pitch = self.element_pitch_m
            cs = (np.arange(self.cols) - (self.cols - 1) / 2.0) * pitch
            rs = (np.arange(self.rows) - (self.rows - 1) / 2.0) * pitch
            grid_r, grid_c = np.meshgrid(rs, cs, indexing="ij")
            self._positions_cache = (
                self.center[None, :]
                + grid_c.reshape(-1, 1) * u[None, :]
                + grid_r.reshape(-1, 1) * v[None, :]
            )
        return self._positions_cache

    def element_pattern(self) -> AntennaPattern:
        """The meta-atom radiation pattern from the spec."""
        front_only = self.spec.operation_mode is OperationMode.REFLECTIVE
        return AntennaPattern(
            peak_gain_dbi=self.spec.element_gain_dbi,
            cos_exponent=self.spec.element_cos_exponent,
            front_only=front_only,
        )

    def sees(self, point: np.ndarray) -> bool:
        """Whether a point lies in the half-space the panel serves.

        Reflective panels only interact with their front half-space;
        transmissive/transflective panels interact with both.
        """
        if self.spec.operation_mode is not OperationMode.REFLECTIVE:
            return True
        offset = as_vec3(point) - self.center
        return float(np.dot(offset, self.normal)) > 0.0

    # ------------------------------------------------------------------
    # configuration state (data plane)
    # ------------------------------------------------------------------

    @property
    def configuration(self) -> SurfaceConfiguration:
        """The configuration currently actuating the panel."""
        return self._configuration

    def feasible(self, config: SurfaceConfiguration) -> SurfaceConfiguration:
        """Project a configuration onto this hardware's feasible set.

        Applies the spec's control granularity tie and phase
        quantization so that upper layers can optimize element-wise and
        still get an honest prediction of what the hardware will do.
        """
        if config.shape != self.shape:
            raise ConfigurationError(
                f"configuration shape {config.shape} != panel shape {self.shape}"
            )
        out = config
        if self.spec.granularity is not Granularity.ELEMENT:
            out = out.tied(self.spec.granularity)
        if self.spec.phase_bits is not None:
            out = out.quantized(self.spec.phase_bits)
        return out

    def actuate(self, config: SurfaceConfiguration) -> SurfaceConfiguration:
        """Set the live configuration (after feasibility projection).

        This is the lowest-level write; capability checks (passive
        hardware, unsupported properties) belong to the driver layer.
        Returns the projected configuration actually applied.
        """
        projected = self.feasible(config)
        self._configuration = projected
        return projected

    def impair(self, config: SurfaceConfiguration) -> SurfaceConfiguration:
        """Set the live configuration *without* feasibility projection.

        Fault-injection backdoor: physical impairments (analog phase
        drift, dark elements) are not constrained by the control
        quantizer, so projecting them away would hide the fault from
        the channel model.  Only the fault layer should call this.
        """
        if config.shape != self.shape:
            raise ConfigurationError(
                f"configuration shape {config.shape} != panel shape {self.shape}"
            )
        self._configuration = config
        return config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SurfacePanel({self.panel_id!r}, {self.spec.design}, "
            f"{self.rows}x{self.cols}, area={self.area_m2:.3f} m^2)"
        )
