"""Streaming metric collectors for the load harness.

A 10⁶-request run cannot keep per-request records; every collector here
is O(1) per observation and O(buckets) in memory, built on
:class:`~repro.telemetry.StreamingHistogram` (fixed-bucket quantile
sketches: percentile error is bounded by one bucket width).

Collectors:

* :class:`LatencyCollector` — submit→served latency, overall and per
  :class:`~repro.pipeline.PriorityClass`.
* :class:`SatisfactionCollector` — served / rejected / unserved counts
  per class; ``rate`` is the fraction of submitted requests that were
  actually served.
* :class:`QueueDepthCollector` — queue depth sampled at every arrival.
* :class:`ReoptimizationCollector` — solve count, absorbed triggers,
  charged solve cost, chosen coalescing windows.

:class:`CollectorSet` bundles the four and fans events out; the harness
talks only to it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..pipeline.queue import PriorityClass
from ..telemetry import Telemetry
from ..telemetry.histogram import StreamingHistogram

__all__ = [
    "LatencyCollector",
    "SatisfactionCollector",
    "QueueDepthCollector",
    "ReoptimizationCollector",
    "CollectorSet",
]

#: Latency histogram grid: 1 ms buckets to ~8 s, overflow beyond.
LATENCY_BUCKET_S = 0.001
LATENCY_BUCKETS = 8192


def _class_label(pclass: PriorityClass) -> str:
    return pclass.name.lower()


class LatencyCollector:
    """Submit→served latency percentiles, overall and per class."""

    def __init__(
        self,
        bucket_width: float = LATENCY_BUCKET_S,
        buckets: int = LATENCY_BUCKETS,
    ):
        self.overall = StreamingHistogram(bucket_width, buckets)
        self.by_class: Dict[PriorityClass, StreamingHistogram] = {
            pclass: StreamingHistogram(bucket_width, buckets)
            for pclass in PriorityClass
        }

    def observe(self, pclass: PriorityClass, latency_s: float) -> None:
        self.overall.observe(latency_s)
        self.by_class[pclass].observe(latency_s)

    def p99(self, pclass: Optional[PriorityClass] = None) -> float:
        hist = self.overall if pclass is None else self.by_class[pclass]
        return hist.percentile(99.0)

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = dict(self.overall.as_dict("latency_s."))
        for pclass, hist in self.by_class.items():
            if hist.count:
                prefix = f"latency_s.{_class_label(pclass)}."
                out.update(hist.as_dict(prefix))
        return out


class SatisfactionCollector:
    """How many submitted requests actually got served.

    ``rate`` counts a request as satisfied only when it was admitted
    and served within the run horizon — rejections (backpressure) and
    requests still in flight at the end both count against it.
    """

    def __init__(self):
        self.submitted = 0
        self.rejected = 0
        self.served: Dict[PriorityClass, int] = {
            pclass: 0 for pclass in PriorityClass
        }

    def observe_submitted(self) -> None:
        self.submitted += 1

    def observe_rejected(self) -> None:
        self.rejected += 1

    def observe_served(self, pclass: PriorityClass) -> None:
        self.served[pclass] += 1

    @property
    def total_served(self) -> int:
        return sum(self.served.values())

    @property
    def rate(self) -> float:
        if not self.submitted:
            return 0.0
        return self.total_served / self.submitted

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "served": self.total_served,
            "satisfaction": round(self.rate, 6),
        }
        for pclass, count in self.served.items():
            if count:
                out[f"served.{_class_label(pclass)}"] = count
        return out


class QueueDepthCollector:
    """Queue depth sampled at every arrival (integer-bucket histogram)."""

    def __init__(self, max_depth: int = 4096):
        self.hist = StreamingHistogram(bucket_width=1.0, buckets=max_depth)

    def observe(self, depth: int) -> None:
        self.hist.observe(float(depth))

    def summary(self) -> Dict[str, object]:
        return dict(self.hist.as_dict("queue_depth."))


class ReoptimizationCollector:
    """Solve counts, absorbed triggers, charged cost, chosen windows."""

    def __init__(self):
        self.reoptimizations = 0
        self.triggers = 0
        self.solve_cost_s = 0.0
        self.window_sum_s = 0.0
        self.window_max_s = 0.0

    def observe_trigger(self) -> None:
        self.triggers += 1

    def observe_solve(
        self, coalesced: int, cost_s: float, window_s: float
    ) -> None:
        self.reoptimizations += 1
        self.solve_cost_s += cost_s
        self.window_sum_s += window_s
        self.window_max_s = max(self.window_max_s, window_s)

    @property
    def coalesce_ratio(self) -> float:
        if not self.reoptimizations:
            return 0.0
        return self.triggers / self.reoptimizations

    def summary(self) -> Dict[str, object]:
        mean_window = (
            self.window_sum_s / self.reoptimizations
            if self.reoptimizations
            else 0.0
        )
        return {
            "reoptimizations": self.reoptimizations,
            "triggers": self.triggers,
            "coalesce_ratio": round(self.coalesce_ratio, 3),
            "solve_cost_s": round(self.solve_cost_s, 6),
            "mean_window_s": round(mean_window, 6),
            "max_window_s": round(self.window_max_s, 6),
        }


class CollectorSet:
    """The harness-facing bundle: one call site per event kind.

    When bound to a :class:`~repro.telemetry.Telemetry`, the headline
    events are mirrored as ``load.*`` counters/histograms so sim-only
    JSONL exports carry them (deterministically — only sim-clock values
    are recorded).
    """

    def __init__(self, telemetry: Optional[Telemetry] = None):
        self.latency = LatencyCollector()
        self.satisfaction = SatisfactionCollector()
        self.queue_depth = QueueDepthCollector()
        self.reoptimization = ReoptimizationCollector()
        self.telemetry = telemetry or Telemetry(enabled=False)

    def on_submitted(self, queue_depth: int) -> None:
        self.satisfaction.observe_submitted()
        self.queue_depth.observe(queue_depth)
        self.telemetry.counter("load.submitted")

    def on_rejected(self) -> None:
        self.satisfaction.observe_rejected()
        self.telemetry.counter("load.rejected")

    def on_trigger(self) -> None:
        self.reoptimization.observe_trigger()
        self.telemetry.counter("load.triggers")

    def on_solve(self, coalesced: int, cost_s: float, window_s: float) -> None:
        self.reoptimization.observe_solve(coalesced, cost_s, window_s)
        self.telemetry.counter("load.reoptimizations")

    def on_served(self, pclass: PriorityClass, latency_s: float) -> None:
        self.satisfaction.observe_served(pclass)
        self.latency.observe(pclass, latency_s)
        self.telemetry.observe("load.latency_s", latency_s)

    def summary(self) -> Dict[str, object]:
        """All collectors' numbers as one flat dict."""
        out: Dict[str, object] = {}
        out.update(self.satisfaction.summary())
        out.update(self.latency.summary())
        out.update(self.queue_depth.summary())
        out.update(self.reoptimization.summary())
        return out
