"""Offered-load sweeps: find the latency-vs-rate saturation knee.

One :class:`LoadHarness` run answers "does this rate meet the SLO?";
a sweep answers the capacity-planning question instead: *at what
offered rate does the control plane saturate?*  :func:`run_sweep`
replays the same seeded Poisson workload at each rate in an ascending
ladder — a fresh harness and model per point, so points are fully
independent and individually reproducible — and reports the **knee**:
the first rate whose p99 latency exceeds ``knee_factor`` times the
lowest-rate baseline p99.  Below the knee, latency is dominated by the
coalescing window and solve cost; above it, queueing delay compounds
and p99 grows superlinearly with rate.

The sweep is observational, not gated: ``gate_failures()`` is always
empty.  CI records the JSON summary as an artifact so capacity drift
is visible across commits without flaking the build on a tuning
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.tables import render_table
from ..core.errors import ServiceError
from ..experiments.result import ExperimentResultBase
from .harness import LoadConfig, LoadHarness
from .models import PoissonArrivals

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "DEFAULT_SWEEP_RATES"]

#: Default offered-rate ladder (req/s) — spans comfortably-below to
#: well-past saturation for the default cost model.
DEFAULT_SWEEP_RATES = (5.0, 10.0, 20.0, 40.0, 80.0, 160.0)


@dataclass(frozen=True)
class SweepPoint:
    """Measured outcome of one offered rate in the ladder."""

    rate_hz: float
    p50_s: float
    p99_s: float
    satisfaction: float
    throughput_rps: float

    def summary(self) -> Dict[str, object]:
        return {
            "rate_hz": self.rate_hz,
            "p50_s": round(self.p50_s, 6),
            "p99_s": round(self.p99_s, 6),
            "satisfaction": round(self.satisfaction, 6),
            "throughput_rps": round(self.throughput_rps, 4),
        }


@dataclass
class SweepResult(ExperimentResultBase):
    """Outcome of one offered-load sweep (ungated, observational)."""

    points: List[SweepPoint]
    requests_per_rate: int
    seed: int
    knee_factor: float
    #: First rate whose p99 exceeds ``knee_factor`` x the baseline p99,
    #: or None when the ladder never saturates.
    knee_rate_hz: Optional[float]

    @property
    def baseline_p99_s(self) -> float:
        return self.points[0].p99_s if self.points else 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "sweep.requests_per_rate": self.requests_per_rate,
            "sweep.seed": self.seed,
            "sweep.knee_factor": self.knee_factor,
            "sweep.baseline_p99_s": round(self.baseline_p99_s, 6),
            "sweep.knee_rate_hz": self.knee_rate_hz,
            "sweep.points": [point.summary() for point in self.points],
        }

    def gate_failures(self) -> List[str]:
        # Observational by design: the knee is recorded, never gated.
        return []

    def render(self) -> str:
        rows: List[Tuple[str, ...]] = []
        for point in self.points:
            marker = (
                " <- knee"
                if self.knee_rate_hz is not None
                and point.rate_hz == self.knee_rate_hz
                else ""
            )
            rows.append(
                (
                    f"{point.rate_hz:g}",
                    f"{point.p50_s:.4f}",
                    f"{point.p99_s:.4f}{marker}",
                    f"{point.satisfaction:.4f}",
                    f"{point.throughput_rps:.2f}",
                )
            )
        table = render_table(
            ("rate (req/s)", "p50 (s)", "p99 (s)", "satisfaction", "served rps"),
            rows,
            title=(
                f"Offered-load sweep: {self.requests_per_rate} req/rate "
                f"(seed {self.seed})"
            ),
        )
        if self.knee_rate_hz is not None:
            verdict = (
                f"saturation knee at {self.knee_rate_hz:g} req/s "
                f"(p99 > {self.knee_factor:g}x baseline "
                f"{self.baseline_p99_s:.4f}s)"
            )
        else:
            verdict = (
                f"no saturation knee up to {self.points[-1].rate_hz:g} req/s "
                f"(p99 stayed within {self.knee_factor:g}x baseline)"
            )
        return f"{table}\n{verdict}"


def run_sweep(
    rates: Sequence[float] = DEFAULT_SWEEP_RATES,
    requests_per_rate: int = 2000,
    seed: int = 0,
    config: Optional[LoadConfig] = None,
    knee_factor: float = 2.0,
) -> SweepResult:
    """Sweep offered Poisson load over ``rates``; locate the knee.

    Each rate gets a fresh :class:`LoadHarness` (and telemetry) over
    the same ``seed``, so every point is independently reproducible and
    the sweep as a whole is a pure function of its arguments.
    """
    ladder = [float(r) for r in rates]
    if not ladder:
        raise ServiceError("sweep needs at least one rate")
    if any(r <= 0 for r in ladder):
        raise ServiceError("sweep rates must be positive")
    if ladder != sorted(ladder):
        raise ServiceError("sweep rates must be ascending")
    if knee_factor <= 1.0:
        raise ServiceError("knee_factor must exceed 1")

    points: List[SweepPoint] = []
    for rate in ladder:
        harness = LoadHarness(config)
        model = PoissonArrivals(requests_per_rate, rate_hz=rate, seed=seed)
        outcome = harness.run(model)
        latency = outcome.collectors.latency.overall
        points.append(
            SweepPoint(
                rate_hz=rate,
                p50_s=latency.percentile(50.0),
                p99_s=latency.percentile(99.0),
                satisfaction=outcome.collectors.satisfaction.rate,
                throughput_rps=outcome.throughput_rps,
            )
        )

    baseline = points[0].p99_s
    knee: Optional[float] = None
    for point in points[1:]:
        if point.p99_s > knee_factor * baseline:
            knee = point.rate_hz
            break
    return SweepResult(
        points=points,
        requests_per_rate=requests_per_rate,
        seed=seed,
        knee_factor=knee_factor,
        knee_rate_hz=knee,
    )
