"""The trace-driven load harness: arrival stream → modeled control plane.

Replaying 10⁵–10⁶ requests through the *real* pipeline is impossible in
CI — every joint solve costs real optimizer wall time.  The harness
instead drives a **modeled control plane** that reuses the exact control
logic under test — the same :class:`~repro.pipeline.AdaptiveCoalescer`,
the same :class:`~repro.pipeline.PriorityClass` taxonomy, the same
bounded-queue / batch-admission / coalesced-solve discipline as
:class:`~repro.pipeline.RequestPipeline` — but replaces the optimizer
with a deterministic cost model::

    solve_cost = base_solve_cost_s + per_task_cost_s * active_tasks

Admitted requests hold a task for ``hold_s`` simulated seconds, so
sustained load grows the active set and solves get slower under
pressure, exactly the feedback loop the coalescer is tuned against.
Everything is a pure function of (model, config, seed): two runs emit
byte-identical sim-only telemetry, which CI diffs.

The event loop is lazily merged: arrival timestamps stream from the
:class:`~repro.load.models.ArrivalModel` one at a time against a heap
of simulator events (window closes, solve completions, task
departures) — constant memory regardless of trace length.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..core.errors import ServiceError
from ..experiments.result import ExperimentResultBase
from ..pipeline.coalesce import AdaptiveCoalesceConfig, AdaptiveCoalescer
from ..pipeline.pipeline import WINDOW_CLOSE_EPS_S
from ..pipeline.queue import PriorityClass
from ..telemetry import Telemetry
from .collectors import CollectorSet
from .models import ArrivalModel
from .slo import SLOPolicy, SLOReport

__all__ = ["LoadConfig", "LoadHarness", "LoadResult", "DEFAULT_CLASS_MIX"]

#: Default priority-class mix (interactive, normal, bulk) of generated
#: requests — drawn deterministically from the seeded stream.
DEFAULT_CLASS_MIX = (0.3, 0.5, 0.2)

#: Random class draws per chunk (mirrors models.CHUNK).
_CHUNK = 4096


@dataclass(frozen=True)
class LoadConfig:
    """Tuning for one :class:`LoadHarness` run.

    Attributes:
        queue_capacity: bounded admission queue; arrivals beyond it are
            rejected (counted against satisfaction).
        max_batch: requests admitted per batch.
        coalesce_window_s: fixed coalescing window, used only when
            ``adaptive`` is None.
        adaptive: adaptive-coalescing controller config (the default —
            the harness exists to exercise it).
        base_solve_cost_s: modeled solve cost floor.
        per_task_cost_s: modeled marginal solve cost per active task.
        settle_s: modeled hardware settle charged to request latency
            after each solve.
        hold_s: how long an admitted request's task stays active (its
            departure shrinks later solves).
        class_mix: probability of (interactive, normal, bulk) per
            generated request.
    """

    queue_capacity: int = 256
    max_batch: int = 32
    coalesce_window_s: float = 0.0
    adaptive: Optional[AdaptiveCoalesceConfig] = field(
        default_factory=AdaptiveCoalesceConfig
    )
    base_solve_cost_s: float = 0.02
    per_task_cost_s: float = 0.0005
    settle_s: float = 0.004
    hold_s: float = 10.0
    class_mix: Tuple[float, float, float] = DEFAULT_CLASS_MIX

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be at least 1")
        if self.max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if self.coalesce_window_s < 0:
            raise ServiceError("coalesce_window_s must be non-negative")
        if self.base_solve_cost_s < 0 or self.per_task_cost_s < 0:
            raise ServiceError("solve costs must be non-negative")
        if self.settle_s < 0 or self.hold_s < 0:
            raise ServiceError("settle_s/hold_s must be non-negative")
        if len(self.class_mix) != 3 or any(w < 0 for w in self.class_mix):
            raise ServiceError("class_mix must be three non-negative weights")
        if not sum(self.class_mix) > 0:
            raise ServiceError("class_mix must have positive total weight")

    def describe(self) -> Dict[str, object]:
        out = {
            "queue_capacity": self.queue_capacity,
            "max_batch": self.max_batch,
            "base_solve_cost_s": self.base_solve_cost_s,
            "per_task_cost_s": self.per_task_cost_s,
            "settle_s": self.settle_s,
            "hold_s": self.hold_s,
        }
        if self.adaptive is not None:
            out["coalescing"] = "adaptive"
            out["adaptive_max_window_s"] = self.adaptive.max_window_s
        else:
            out["coalescing"] = "fixed"
            out["coalesce_window_s"] = self.coalesce_window_s
        return out


@dataclass
class LoadResult(ExperimentResultBase):
    """Outcome of one load run (implements the experiment protocol)."""

    model: Dict[str, object]
    config: Dict[str, object]
    collectors: CollectorSet
    slo_report: Optional[SLOReport]
    span_s: float
    wall_s: float  # host wall time; never serialized (nondeterministic)

    @property
    def throughput_rps(self) -> float:
        served = self.collectors.satisfaction.total_served
        if self.span_s <= 0:
            return 0.0
        return served / self.span_s

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        out.update({f"model.{k}": v for k, v in self.model.items()})
        out.update({f"config.{k}": v for k, v in self.config.items()})
        out.update(self.collectors.summary())
        out["span_s"] = round(self.span_s, 6)
        out["throughput_rps"] = round(self.throughput_rps, 4)
        if self.slo_report is not None:
            out.update(
                {
                    f"slo.{k}": v
                    for k, v in self.slo_report.policy.describe().items()
                }
            )
            out["slo.ok"] = self.slo_report.ok
            out["slo.violations"] = list(self.slo_report.violations)
        return out

    def gate_failures(self) -> List[str]:
        if self.slo_report is None:
            return []
        return list(self.slo_report.violations)

    def render(self) -> str:
        sat = self.collectors.satisfaction
        lat = self.collectors.latency
        reopt = self.collectors.reoptimization
        rows = [
            (
                "overall",
                str(lat.overall.count),
                f"{lat.overall.percentile(50.0):.4f}",
                f"{lat.overall.percentile(99.0):.4f}",
                f"{lat.overall.percentile(99.9):.4f}",
            )
        ]
        for pclass in PriorityClass:
            hist = lat.by_class[pclass]
            if not hist.count:
                continue
            rows.append(
                (
                    pclass.name.lower(),
                    str(hist.count),
                    f"{hist.percentile(50.0):.4f}",
                    f"{hist.percentile(99.0):.4f}",
                    f"{hist.percentile(99.9):.4f}",
                )
            )
        model_name = self.model.get("model", "?")
        table = render_table(
            ("class", "served", "p50 (s)", "p99 (s)", "p999 (s)"),
            rows,
            title=(
                f"Load run: {model_name} x{self.model.get('requests', '?')} "
                f"(seed {self.model.get('seed', '?')})"
            ),
        )
        lines = [
            table,
            (
                f"submitted {sat.submitted}, served {sat.total_served}, "
                f"rejected {sat.rejected} "
                f"(satisfaction {sat.rate:.4f})"
            ),
            (
                f"throughput {self.throughput_rps:.2f} req/s over "
                f"{self.span_s:.1f} sim-s; "
                f"{reopt.reoptimizations} solves, coalesce ratio "
                f"{reopt.coalesce_ratio:.2f}, mean window "
                f"{reopt.window_sum_s / reopt.reoptimizations:.4f}s"
                if reopt.reoptimizations
                else f"throughput {self.throughput_rps:.2f} req/s; no solves"
            ),
            f"harness wall time {self.wall_s:.2f}s",
        ]
        if self.slo_report is not None:
            lines.append(self.slo_report.render())
        return "\n".join(lines)


class _ModeledRequest:
    """One in-flight request in the modeled control plane."""

    __slots__ = ("arrived_at", "pclass")

    def __init__(self, arrived_at: float, pclass: PriorityClass):
        self.arrived_at = arrived_at
        self.pclass = pclass


class LoadHarness:
    """Drives an arrival model through the modeled control plane."""

    def __init__(
        self,
        config: Optional[LoadConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.config = config or LoadConfig()
        self.telemetry = telemetry or Telemetry()
        self.collectors = CollectorSet(self.telemetry)

    # -- request generation ----------------------------------------------

    def _classes(self, seed: int) -> Iterator[PriorityClass]:
        """Deterministic per-request priority classes (chunked draws)."""
        rng = np.random.default_rng(seed + 0x10AD)
        weights = np.asarray(self.config.class_mix, dtype=float)
        weights = weights / weights.sum()
        members = tuple(PriorityClass)
        while True:
            for pick in rng.choice(len(members), size=_CHUNK, p=weights):
                yield members[int(pick)]

    # -- the event loop --------------------------------------------------

    def run(
        self,
        model: ArrivalModel,
        slo: Optional[SLOPolicy] = None,
        jsonl: Optional[str] = None,
    ) -> LoadResult:
        """Replay the model's arrivals; returns the gated result.

        The loop merges the lazy arrival stream against a heap of
        simulator events; at no point is the full trace in memory.
        """
        cfg = self.config
        started_wall = time.perf_counter()
        coalescer = (
            AdaptiveCoalescer(cfg.adaptive) if cfg.adaptive is not None else None
        )

        queue: List[_ModeledRequest] = []
        admitted: List[_ModeledRequest] = []
        events: List[Tuple[float, int, str, float]] = []
        seq = itertools.count()
        active_tasks = 0
        busy_until = 0.0
        pending_first_at: Optional[float] = None
        pending_triggers = 0
        first_arrival: Optional[float] = None
        last_served_at = 0.0

        def window_at(now: float) -> float:
            if coalescer is not None:
                return coalescer.window_s(now)
            return cfg.coalesce_window_s

        def push(at: float, kind: str, payload: float = 0.0) -> None:
            heapq.heappush(events, (at, next(seq), kind, payload))

        def note_trigger(now: float) -> None:
            nonlocal pending_first_at, pending_triggers
            pending_triggers += 1
            if pending_first_at is None:
                pending_first_at = now
            if coalescer is not None:
                coalescer.observe_trigger(now)
            self.collectors.on_trigger()
            push(now + window_at(now), "window")

        def admit(now: float) -> None:
            """Batch-admit everything queued (admission is not gated on
            the solver — only solves are)."""
            while queue:
                batch = queue[: cfg.max_batch]
                del queue[: len(batch)]
                admitted.extend(batch)
                note_trigger(now)

        def maybe_solve(now: float) -> None:
            nonlocal pending_first_at, pending_triggers
            nonlocal active_tasks, busy_until, last_served_at
            if pending_first_at is None:
                return
            window = window_at(now)
            if now - pending_first_at < window - WINDOW_CLOSE_EPS_S:
                # Window still open — a check will land at its close.
                push(pending_first_at + window, "window")
                return
            if now < busy_until:
                # Solver busy; re-check the moment it frees.
                push(busy_until, "window")
                return
            coalesced = pending_triggers
            pending_first_at = None
            pending_triggers = 0
            if not admitted:
                return
            batch = list(admitted)
            admitted.clear()
            active_tasks += len(batch)
            cost = (
                cfg.base_solve_cost_s + cfg.per_task_cost_s * active_tasks
            )
            busy_until = now + cost
            served_at = busy_until + cfg.settle_s
            last_served_at = max(last_served_at, served_at)
            if coalescer is not None:
                coalescer.observe_solve_cost(cost)
            self.collectors.on_solve(coalesced, cost, window)
            for request in batch:
                self.collectors.on_served(
                    request.pclass, served_at - request.arrived_at
                )
            push(served_at + cfg.hold_s, "depart", float(len(batch)))
            # Arrivals that queued during the solve get admitted the
            # moment the solver frees (the real pipeline's next tick).
            push(busy_until, "resume")

        def handle(now: float, kind: str, payload: float) -> None:
            nonlocal active_tasks
            if kind == "depart":
                active_tasks -= int(payload)
            elif kind == "resume":
                if queue:
                    admit(now)
                maybe_solve(now)
            elif kind == "window":
                maybe_solve(now)

        with self.telemetry.span("load-run", model=model.name):
            arrivals = model.times()
            classes = self._classes(model.seed)
            next_arrival = next(arrivals, None)
            while next_arrival is not None or events:
                if next_arrival is not None and (
                    not events or next_arrival <= events[0][0]
                ):
                    now = next_arrival
                    if first_arrival is None:
                        first_arrival = now
                    pclass = next(classes)
                    if len(queue) >= cfg.queue_capacity:
                        self.collectors.on_submitted(len(queue))
                        self.collectors.on_rejected()
                    else:
                        queue.append(_ModeledRequest(now, pclass))
                        self.collectors.on_submitted(len(queue))
                        if now >= busy_until:
                            admit(now)
                            maybe_solve(now)
                    next_arrival = next(arrivals, None)
                else:
                    at, _, kind, payload = heapq.heappop(events)
                    # Drain-only tail: departures after the last serve
                    # don't matter once nothing is queued or pending.
                    handle(at, kind, payload)

        wall_s = time.perf_counter() - started_wall
        span = (
            last_served_at - first_arrival
            if first_arrival is not None and last_served_at > 0
            else 0.0
        )
        self.telemetry.gauge("load.span_s", round(span, 9))
        report = slo.evaluate(self.collectors) if slo is not None else None
        if jsonl:
            self.telemetry.export_jsonl(jsonl, sim_only=True)
        return LoadResult(
            model=model.describe(),
            config=cfg.describe(),
            collectors=self.collectors,
            slo_report=report,
            span_s=span,
            wall_s=wall_s,
        )
