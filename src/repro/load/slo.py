"""Service-level objectives for load runs: bounds, evaluation, gating.

An :class:`SLOPolicy` is a set of per-priority-class p99 latency bounds
plus a satisfaction floor (minimum fraction of submitted requests that
must be served).  The harness evaluates the policy against its
collectors and the CLI turns the verdict into a process exit code — a
missed SLO fails CI, which is the whole point of a load gate.

Policies parse from a compact CLI spec::

    interactive=0.2,normal=1.0,bulk=5.0,satisfaction=0.95,p99=2.0

``interactive``/``normal``/``bulk`` bound that class's p99 latency in
seconds, ``p99`` bounds the overall p99, and ``satisfaction`` sets the
floor (a fraction in [0, 1]).  Any subset of terms is valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import ServiceError
from ..pipeline.queue import PriorityClass
from .collectors import CollectorSet

__all__ = ["SLOPolicy", "SLOReport"]


@dataclass(frozen=True)
class SLOPolicy:
    """Latency bounds per priority class + a satisfaction floor.

    Attributes:
        class_p99_s: max p99 submit→served latency (seconds) per
            priority class; classes absent from the dict are unbounded.
        overall_p99_s: max p99 across all classes (None = unbounded).
        satisfaction_floor: minimum served/submitted fraction.
    """

    class_p99_s: Dict[PriorityClass, float] = field(default_factory=dict)
    overall_p99_s: Optional[float] = None
    satisfaction_floor: float = 0.0

    def __post_init__(self) -> None:
        for pclass, bound in self.class_p99_s.items():
            if bound <= 0:
                raise ServiceError(
                    f"p99 bound for {pclass.name} must be positive"
                )
        if self.overall_p99_s is not None and self.overall_p99_s <= 0:
            raise ServiceError("overall p99 bound must be positive")
        if not 0.0 <= self.satisfaction_floor <= 1.0:
            raise ServiceError("satisfaction_floor must be in [0, 1]")

    @classmethod
    def parse(cls, spec: str) -> "SLOPolicy":
        """Build a policy from the compact CLI spec (see module doc)."""
        class_bounds: Dict[PriorityClass, float] = {}
        overall: Optional[float] = None
        floor = 0.0
        class_names = {p.name.lower(): p for p in PriorityClass}
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            if "=" not in term:
                raise ServiceError(
                    f"bad SLO term {term!r} (expected key=value)"
                )
            key, _, raw = term.partition("=")
            key = key.strip().lower()
            try:
                value = float(raw)
            except ValueError as exc:
                raise ServiceError(
                    f"bad SLO value in {term!r}: {raw!r}"
                ) from exc
            if key in class_names:
                class_bounds[class_names[key]] = value
            elif key == "p99":
                overall = value
            elif key == "satisfaction":
                floor = value
            else:
                raise ServiceError(
                    f"unknown SLO key {key!r} (use "
                    f"{sorted(class_names)}, 'p99', or 'satisfaction')"
                )
        return cls(
            class_p99_s=class_bounds,
            overall_p99_s=overall,
            satisfaction_floor=floor,
        )

    def evaluate(self, collectors: CollectorSet) -> "SLOReport":
        """Check every bound against the collected metrics."""
        violations: List[str] = []
        satisfaction = collectors.satisfaction.rate
        if satisfaction < self.satisfaction_floor:
            violations.append(
                f"satisfaction {satisfaction:.4f} below floor "
                f"{self.satisfaction_floor:.4f} "
                f"({collectors.satisfaction.total_served}/"
                f"{collectors.satisfaction.submitted} served)"
            )
        if self.overall_p99_s is not None:
            p99 = collectors.latency.p99()
            if p99 > self.overall_p99_s:
                violations.append(
                    f"overall p99 latency {p99:.4f}s exceeds bound "
                    f"{self.overall_p99_s:.4f}s"
                )
        for pclass, bound in sorted(self.class_p99_s.items()):
            hist = collectors.latency.by_class[pclass]
            if not hist.count:
                continue  # no traffic in this class — nothing to bound
            p99 = hist.percentile(99.0)
            if p99 > bound:
                violations.append(
                    f"{pclass.name.lower()} p99 latency {p99:.4f}s "
                    f"exceeds bound {bound:.4f}s"
                )
        return SLOReport(policy=self, violations=violations)

    def describe(self) -> Dict[str, object]:
        """Flat dict of the configured bounds (JSON artifacts)."""
        out: Dict[str, object] = {
            "satisfaction_floor": self.satisfaction_floor
        }
        if self.overall_p99_s is not None:
            out["p99_s"] = self.overall_p99_s
        for pclass, bound in sorted(self.class_p99_s.items()):
            out[f"p99_s.{pclass.name.lower()}"] = bound
        return out


@dataclass
class SLOReport:
    """The verdict of one policy evaluation."""

    policy: SLOPolicy
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.ok:
            return "SLO: all objectives met"
        lines = ["SLO: VIOLATED"]
        lines.extend(f"  - {v}" for v in self.violations)
        return "\n".join(lines)
