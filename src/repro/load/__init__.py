"""repro.load — trace-driven load harness with SLO gating.

The workload/measurement layer of the control plane: pluggable seeded
:class:`ArrivalModel` streams (Poisson, diurnal, flash-crowd, trace
replay, burst), O(1)-per-event streaming :mod:`collectors
<repro.load.collectors>`, :class:`SLOPolicy` gates, and the
:class:`LoadHarness` that replays 10⁵–10⁶ requests through a modeled
control plane sharing the real pipeline's coalescing and priority
machinery.  :func:`run_sweep` ladders the offered rate to locate the
latency-vs-rate saturation knee (observational, never gated).  See
DESIGN.md §"Workloads, collectors, and SLO gates".
"""

from .collectors import (
    CollectorSet,
    LatencyCollector,
    QueueDepthCollector,
    ReoptimizationCollector,
    SatisfactionCollector,
)
from .harness import DEFAULT_CLASS_MIX, LoadConfig, LoadHarness, LoadResult
from .models import (
    MODEL_NAMES,
    ArrivalModel,
    BurstArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceReplay,
    build_model,
    read_trace,
    write_trace,
)
from .slo import SLOPolicy, SLOReport
from .sweep import DEFAULT_SWEEP_RATES, SweepPoint, SweepResult, run_sweep

__all__ = [
    "ArrivalModel",
    "BurstArrivals",
    "CollectorSet",
    "DEFAULT_CLASS_MIX",
    "DEFAULT_SWEEP_RATES",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "LatencyCollector",
    "LoadConfig",
    "LoadHarness",
    "LoadResult",
    "MODEL_NAMES",
    "PoissonArrivals",
    "QueueDepthCollector",
    "ReoptimizationCollector",
    "SatisfactionCollector",
    "SLOPolicy",
    "SLOReport",
    "SweepPoint",
    "SweepResult",
    "TraceReplay",
    "build_model",
    "read_trace",
    "write_trace",
]
