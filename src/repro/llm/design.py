"""Design-request parsing: language → design-database queries (§5).

"Based on the user input, LLMs can locate an appropriate design from a
surface design database."  This module parses a natural-language
hardware request into a :class:`DesignQuery` and answers it from the
catalog — the deterministic counterpart of the intent translator, for
the design stage instead of the service stage.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..autodesign.designdb import DesignQuery, find_design, select_designs
from ..core.errors import TranslationError
from ..surfaces.specs import SignalProperty, SurfaceSpec

_FREQ_RE = re.compile(r"(\d+(?:\.\d+)?)\s*(ghz|mhz)", re.I)
_COST_RE = re.compile(
    r"(?:under|below|less than|at most|budget of)\s*\$\s*(\d+(?:\.\d+)?)"
    r"\s*(?:per|/)\s*element",
    re.I,
)

_PROPERTY_WORDS = {
    "phase": SignalProperty.PHASE,
    "amplitude": SignalProperty.AMPLITUDE,
    "on/off": SignalProperty.AMPLITUDE,
    "polarization": SignalProperty.POLARIZATION,
    "polarisation": SignalProperty.POLARIZATION,
    "frequency-selective": SignalProperty.FREQUENCY,
    "wideband tuning": SignalProperty.FREQUENCY,
}


def parse_design_request(text: str) -> DesignQuery:
    """Parse a hardware request sentence into a design query.

    Understands carriers ("a surface for 60 GHz"), reconfigurability
    ("passive", "programmable", "steerable"), unit-cost bounds ("under
    $1 per element"), and control modalities ("phase", "amplitude", …).
    """
    if not text.strip():
        raise TranslationError("empty design request")
    lowered = text.lower()
    freq_match = _FREQ_RE.search(lowered)
    if not freq_match:
        raise TranslationError(
            "design request names no operating frequency (e.g. '60 GHz')"
        )
    unit = 1e9 if freq_match.group(2).lower() == "ghz" else 1e6
    frequency_hz = float(freq_match.group(1)) * unit

    reconfigurable: Optional[bool] = None
    if re.search(r"\bpassive\b|zero[- ]power|printed", lowered):
        reconfigurable = False
    elif re.search(r"programmable|reconfigur|steerable|dynamic", lowered):
        reconfigurable = True

    cost_match = _COST_RE.search(lowered)
    max_cost = float(cost_match.group(1)) if cost_match else float("inf")

    properties: Tuple[SignalProperty, ...] = tuple(
        {
            prop
            for word, prop in _PROPERTY_WORDS.items()
            if word in lowered
        }
    ) or (SignalProperty.PHASE,)

    return DesignQuery(
        frequency_hz=frequency_hz,
        reconfigurable=reconfigurable,
        max_cost_per_element_usd=max_cost,
        properties=properties,
    )


def recommend_designs(text: str, limit: int = 3) -> List[SurfaceSpec]:
    """End to end: request sentence → ranked designs (adapted if needed)."""
    query = parse_design_request(text)
    matches = select_designs(query)
    if matches:
        return matches[:limit]
    return [find_design(query)]
