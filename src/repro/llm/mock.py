"""A deterministic, offline stand-in for the paper's GPT-4o.

The paper's Fig. 6 demonstrates an LLM mapping natural-language demands
to SurfOS service calls.  This mock reproduces that behavior with an
explicit rule engine: it reads the *same prompt* the real model would
receive (context + available functions + user input), matches intent
keywords, and emits Python-style call lines restricted to the functions
the prompt actually offered.  Substituting a hosted model is a one-line
change via the :class:`~repro.llm.client.LLMClient` protocol; the
parsing, validation, and dispatch around it are identical either way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class IntentRule:
    """One keyword-triggered translation rule.

    Attributes:
        keywords: any-match triggers (lowercase substrings).
        calls: templates emitted on trigger; ``{device}`` and ``{room}``
            are filled from the user input when extractable.
        description: what the rule represents (for diagnostics).
    """

    keywords: Tuple[str, ...]
    calls: Tuple[str, ...]
    description: str = ""
    device_hint: str = ""


#: The mock's "knowledge": application archetypes → service calls, the
#: same mappings the paper's Fig. 6 shows GPT-4o producing.
DEFAULT_RULES: Tuple[IntentRule, ...] = (
    IntentRule(
        keywords=("vr", "virtual reality", "gaming", "game"),
        calls=(
            "enhance_link('{device}', snr=30.0, latency=10.0)",
            "enable_sensing('{room}', type='tracking', duration=3600)",
            "optimize_coverage('{room}', median_snr=25)",
        ),
        description="VR gaming: high throughput, low latency, tracking",
    ),
    IntentRule(
        keywords=("meeting", "video call", "conference", "zoom"),
        calls=("enhance_link('{device}', snr=20.0, latency=50.0)",),
        description="Online meeting: reliable mid-rate link",
        device_hint="laptop",
    ),
    IntentRule(
        keywords=("charge", "charging", "battery", "power"),
        calls=("init_powering('{device}', duration=3600)",),
        description="Wireless charging",
    ),
    IntentRule(
        keywords=("movie", "stream", "video", "watch"),
        calls=("enhance_link('{device}', snr=22.0, latency=100.0)",),
        description="Video streaming: smooth high-rate link",
    ),
    IntentRule(
        keywords=("track", "motion", "presence", "sensing", "monitor my"),
        calls=("enable_sensing('{room}', type='tracking', duration=3600)",),
        description="Ambient sensing",
    ),
    IntentRule(
        keywords=("secure", "security", "sensitive", "private", "confidential"),
        calls=("protect_link('{device}')",),
        description="Security protection for sensitive transmission",
    ),
    IntentRule(
        keywords=("coverage", "signal", "dead zone", "wifi is bad", "slow internet"),
        calls=("optimize_coverage('{room}', median_snr=25)",),
        description="Coverage complaint",
    ),
)

_DEVICE_WORDS = (
    "vr_headset", "headset", "laptop", "phone", "tablet", "tv",
    "console", "camera", "sensor",
)

_ROOM_WORDS = (
    "living room", "living", "bedroom", "kitchen", "office",
    "meeting_room", "meeting room", "this room", "room",
)

_ROOM_CANONICAL = {
    "living room": "living",
    "this room": "room_id",
    "room": "room_id",
    "meeting room": "meeting_room",
}


@dataclass
class MockLLM:
    """Deterministic rule-based 'language model' for intent translation.

    Also answers datasheet-extraction prompts (see
    :mod:`repro.llm.datasheet`) by echoing structured fields it finds —
    mirroring how PROSPER-style pipelines use LLMs to pull protocol
    specifications out of documents.
    """

    rules: Tuple[IntentRule, ...] = DEFAULT_RULES
    default_device: str = "phone"
    default_room: str = "room_id"

    def complete(self, prompt: str) -> str:
        """Complete an intent-translation or extraction prompt."""
        if "User Input:" in prompt:
            return self._complete_intent(prompt)
        return ""

    # ------------------------------------------------------------------

    def _available_functions(self, prompt: str) -> List[str]:
        """Function names offered in the prompt's tool list."""
        return re.findall(r"- (\w+)\(", prompt)

    def _user_input(self, prompt: str) -> str:
        match = re.search(r"User Input:\s*(.+)", prompt)
        return match.group(1).strip() if match else ""

    def _extract_device(self, text: str) -> str:
        lowered = text.lower()
        if "vr" in lowered and (
            "headset" in lowered or "gaming" in lowered or "game" in lowered
        ):
            return "VR_headset"
        for word in _DEVICE_WORDS:
            if word in lowered:
                return word
        return self.default_device

    def _extract_room(self, text: str) -> str:
        lowered = text.lower()
        for word in _ROOM_WORDS:
            if word in lowered:
                return _ROOM_CANONICAL.get(word, word)
        return self.default_room

    def _complete_intent(self, prompt: str) -> str:
        available = set(self._available_functions(prompt))
        text = self._user_input(prompt)
        lowered = text.lower()
        device = self._extract_device(text)
        room = self._extract_room(text)
        lines: List[str] = []
        for rule in self.rules:
            if not any(k in lowered for k in rule.keywords):
                continue
            # A rule's archetypal device (e.g. meetings happen on
            # laptops) wins unless the user explicitly named one for it
            # ("meeting on my phone").
            rule_device = device
            if rule.device_hint:
                trigger = next(k for k in rule.keywords if k in lowered)
                explicit = re.search(
                    trigger + r"\s+(?:on|with|using)\s+(?:my\s+)?(\w+)",
                    lowered,
                )
                if explicit and explicit.group(1) in _DEVICE_WORDS:
                    rule_device = explicit.group(1)
                else:
                    rule_device = rule.device_hint
            for template in rule.calls:
                call = template.format(device=rule_device, room=room)
                name = call.split("(", 1)[0]
                if available and name not in available:
                    continue
                if call not in lines:
                    lines.append(call)
        return "\n".join(lines)
