"""Hardware driver generation from datasheets (§3.4).

"LLMs can assist by parsing and summarizing long text, such as
datasheets or research papers, to generate surface hardware
specifications ... On that basis, LLMs may further synthesize the
driver code based on the specifications generated."

This module implements that pipeline offline: a tolerant datasheet
parser extracts a :class:`SurfaceSpec` from free-form vendor text, and
a code generator emits a ready-to-exec driver class bound to that spec.
The extraction rules stand in for the language model (the repository
has no network access); the pipeline shape — text → spec → generated
source → loaded driver — is exactly the paper's.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Optional, Tuple

from ..core.configuration import Granularity
from ..core.errors import TranslationError
from ..surfaces.specs import OperationMode, SignalProperty, SurfaceSpec

_FREQ_UNITS = {"ghz": 1e9, "mhz": 1e6, "khz": 1e3, "hz": 1.0}
_TIME_UNITS = {
    "ns": 1e-9,
    "nanosecond": 1e-9,
    "us": 1e-6,
    "microsecond": 1e-6,
    "µs": 1e-6,
    "ms": 1e-3,
    "millisecond": 1e-3,
    "s": 1.0,
    "second": 1.0,
}


def _find_band(text: str) -> Tuple[float, float]:
    lowered = text.lower()
    # "59.0 - 61.0 GHz" or "2.4 GHz"
    range_match = re.search(
        r"(\d+(?:\.\d+)?)\s*(?:ghz|mhz)?\s*[-–to]+\s*(\d+(?:\.\d+)?)\s*(ghz|mhz)",
        lowered,
    )
    if range_match:
        unit = _FREQ_UNITS[range_match.group(3)]
        return float(range_match.group(1)) * unit, float(
            range_match.group(2)
        ) * unit
    single = re.search(r"(\d+(?:\.\d+)?)\s*(ghz|mhz)", lowered)
    if single:
        center = float(single.group(1)) * _FREQ_UNITS[single.group(2)]
        return 0.96 * center, 1.04 * center
    raise TranslationError("datasheet: no operating frequency found")


def _find_properties(text: str):
    lowered = text.lower()
    props = set()
    if re.search(r"\bphase\b", lowered):
        props.add(SignalProperty.PHASE)
    if re.search(r"\bamplitude\b|\bon[/-]?off\b", lowered):
        props.add(SignalProperty.AMPLITUDE)
    if "polarization" in lowered or "polarisation" in lowered:
        props.add(SignalProperty.POLARIZATION)
    if re.search(r"frequency[- ]selective|resonan(t|ce) tuning", lowered):
        props.add(SignalProperty.FREQUENCY)
    if not props:
        raise TranslationError("datasheet: no signal control modality found")
    return frozenset(props)


def _find_mode(text: str) -> OperationMode:
    lowered = text.lower()
    reflective = bool(re.search(r"\breflect", lowered))
    transmissive = bool(re.search(r"\btransmissive|\btransmit(s)? through", lowered))
    if reflective and transmissive:
        return OperationMode.TRANSFLECTIVE
    if transmissive:
        return OperationMode.TRANSMISSIVE
    return OperationMode.REFLECTIVE


def _find_reconfigurable(text: str) -> bool:
    lowered = text.lower()
    if re.search(r"\bpassive\b|one[- ]time|fixed at fabrication", lowered):
        return False
    return bool(
        re.search(r"reconfigur|programmable|control latency|switching", lowered)
    )


def _find_granularity(text: str) -> Granularity:
    lowered = text.lower()
    if "column" in lowered:
        return Granularity.COLUMN
    if "row" in lowered:
        return Granularity.ROW
    if re.search(r"global|whole[- ]panel", lowered):
        return Granularity.GLOBAL
    return Granularity.ELEMENT


def _find_control_delay(text: str) -> Optional[float]:
    lowered = text.lower()
    match = re.search(
        r"(?:control |switching |reconfiguration )?laten\w*[:\s]+"
        r"(\d+(?:\.\d+)?)\s*(ns|us|µs|ms|s)\b",
        lowered,
    )
    if not match:
        match = re.search(
            r"(\d+(?:\.\d+)?)\s*(ns|us|µs|ms|s)\s+(?:control|switching|update)",
            lowered,
        )
    if match:
        return float(match.group(1)) * _TIME_UNITS[match.group(2)]
    return None


def _find_phase_bits(text: str) -> Optional[int]:
    match = re.search(r"(\d+)[- ]bit", text.lower())
    return int(match.group(1)) if match else None


def _find_cost(text: str) -> Optional[float]:
    lowered = text.lower()
    match = re.search(
        r"\$\s*(\d+(?:\.\d+)?)\s*(?:per|/)\s*element", lowered
    )
    if match:
        return float(match.group(1))
    match = re.search(r"unit cost[:\s]+\$\s*(\d+(?:\.\d+)?)", lowered)
    if match:
        return float(match.group(1))
    return None


def _find_name(text: str) -> str:
    match = re.search(r"(?:model|product|design)[:\s]+([^\n]+)", text, re.I)
    if match:
        return match.group(1).strip()
    return "generated-surface"


def parse_datasheet(text: str) -> SurfaceSpec:
    """Extract a machine-readable spec from free-form datasheet text."""
    if not text.strip():
        raise TranslationError("empty datasheet")
    reconfigurable = _find_reconfigurable(text)
    delay = _find_control_delay(text)
    if not reconfigurable:
        delay = math.inf
    elif delay is None:
        delay = 1e-3  # conservative default for programmable hardware
    cost = _find_cost(text)
    return SurfaceSpec(
        design=_find_name(text),
        band_hz=_find_band(text),
        properties=_find_properties(text),
        operation_mode=_find_mode(text),
        reconfigurable=reconfigurable,
        granularity=_find_granularity(text) if reconfigurable else Granularity.ELEMENT,
        phase_bits=_find_phase_bits(text),
        control_delay_s=delay,
        cost_per_element_usd=cost if cost is not None else 1.0,
        notes="generated from datasheet",
    )


_DRIVER_TEMPLATE = '''"""Auto-generated driver for {design!r}.

Generated by repro.llm.datasheet from the vendor datasheet; do not edit
by hand — regenerate from the source document instead.
"""

from repro.drivers import (
    AmplitudeDriver,
    PassivePhaseDriver,
    PolarizationDriver,
    ProgrammablePhaseDriver,
)


class {class_name}({base}):
    """{summary}"""

    DESIGN = {design!r}
    CONTROL_DELAY_S = {delay}
    RECONFIGURABLE = {reconfigurable!r}
'''


def _base_driver(spec: SurfaceSpec) -> str:
    if SignalProperty.PHASE in spec.properties:
        return "PassivePhaseDriver" if spec.is_passive else "ProgrammablePhaseDriver"
    if SignalProperty.AMPLITUDE in spec.properties:
        return "AmplitudeDriver"
    if SignalProperty.POLARIZATION in spec.properties:
        return "PolarizationDriver"
    raise TranslationError(
        f"cannot generate a driver for modalities "
        f"{sorted(p.value for p in spec.properties)}"
    )


def _class_name(design: str) -> str:
    words = re.split(r"[^0-9a-zA-Z]+", design)
    # Upper-case only the first letter, preserving interior case
    # ("AW-60R" → "AW60R", not "Aw60r").
    name = "".join(w[:1].upper() + w[1:] for w in words if w)
    if not name or name[0].isdigit():
        name = "Surface" + name
    return name + "Driver"


def generate_driver_source(spec: SurfaceSpec) -> str:
    """Emit Python source for a driver class bound to a spec."""
    lo, hi = spec.band_hz
    summary = (
        f"{spec.design}: {lo / 1e9:g}-{hi / 1e9:g} GHz "
        f"{spec.operation_mode.value} surface, "
        f"{'passive' if spec.is_passive else 'programmable'}."
    )
    delay = (
        'float("inf")'
        if math.isinf(spec.control_delay_s)
        else repr(spec.control_delay_s)
    )
    return _DRIVER_TEMPLATE.format(
        design=spec.design,
        class_name=_class_name(spec.design),
        base=_base_driver(spec),
        summary=summary,
        delay=delay,
        reconfigurable=spec.reconfigurable,
    )


def load_driver_class(source: str):
    """Exec generated driver source and return the driver class.

    The namespace is seeded only with builtins and the generated code's
    explicit imports resolve through the normal import system; the
    source comes from :func:`generate_driver_source`, not from model
    output, so this is code we authored executing code we templated.
    """
    module_name = "repro.llm._generated"
    namespace: Dict[str, object] = {"__name__": module_name}
    exec(compile(source, "<generated-driver>", "exec"), namespace)
    classes = [
        obj
        for name, obj in namespace.items()
        if isinstance(obj, type)
        and name.endswith("Driver")
        and obj.__module__ == module_name  # skip the imported bases
    ]
    if len(classes) != 1:
        raise TranslationError(
            f"generated source defined {len(classes)} driver classes"
        )
    return classes[0]


def driver_from_datasheet(text: str):
    """End-to-end: datasheet text → (spec, driver class)."""
    spec = parse_datasheet(text)
    source = generate_driver_source(spec)
    return spec, load_driver_class(source)


#: Sample vendor datasheets used by tests and the Fig. 6-adjacent demo.
SAMPLE_DATASHEETS: Dict[str, str] = {
    "acmewave-60r": (
        "Model: AcmeWave AW-60R\n"
        "A reflective metasurface panel for 60 GHz WLAN backhaul.\n"
        "Operating frequency: 59.0 - 61.0 GHz\n"
        "Signal control: phase, 2-bit quantized per element\n"
        "Reconfiguration: element-wise, control latency: 200 us\n"
        "Unit cost: $2.80 per element\n"
    ),
    "budget-sheet-28": (
        "Model: BudgetSheet BS-28\n"
        "Fully passive printed reflectarray, fixed at fabrication.\n"
        "Operating frequency: 27.5 - 28.5 GHz\n"
        "Signal control: phase (printed pattern)\n"
        "Unit cost: $0.01 per element\n"
    ),
    "iris-amp-24": (
        "Product: IRIS-AMP 2.4\n"
        "Transmissive on/off amplitude surface for 2.4 GHz IoT links.\n"
        "Operating frequency: 2.4 GHz\n"
        "Signal control: amplitude (on/off switching), latency: 5 ms\n"
        "Unit cost: $0.90 per element\n"
    ),
}
