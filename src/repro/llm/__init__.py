"""LLM automation layer: intent translation and driver generation."""

from .client import LLMClient
from .design import parse_design_request, recommend_designs
from .datasheet import (
    SAMPLE_DATASHEETS,
    driver_from_datasheet,
    generate_driver_source,
    load_driver_class,
    parse_datasheet,
)
from .intent import IntentTranslator, build_prompt, dispatch_calls, parse_calls
from .mock import DEFAULT_RULES, IntentRule, MockLLM

__all__ = [
    "DEFAULT_RULES",
    "IntentRule",
    "IntentTranslator",
    "LLMClient",
    "MockLLM",
    "SAMPLE_DATASHEETS",
    "build_prompt",
    "dispatch_calls",
    "driver_from_datasheet",
    "generate_driver_source",
    "load_driver_class",
    "parse_calls",
    "parse_datasheet",
    "parse_design_request",
    "recommend_designs",
]
