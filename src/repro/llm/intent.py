"""User demand translation: natural language → validated service calls.

Reproduces the paper's Fig. 6 workflow: build a system prompt that
presents the SurfOS service APIs as callable Python functions, send the
user's natural-language demand, and parse the completion into
:class:`~repro.broker.calls.ServiceCall` objects.

Parsing is deliberately paranoid — the completion is parsed with
``ast`` (never executed), restricted to the whitelisted function names,
and every argument is type-checked by :class:`ServiceCall` — because a
language model's output is untrusted input to the control plane.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..broker.calls import SERVICE_SIGNATURES, ServiceCall
from ..core.errors import TranslationError
from .client import LLMClient

#: Signatures advertised in the prompt, matching the paper's figure.
_PROMPT_SIGNATURES = {
    "enhance_link": "enhance_link(client_id, snr=..., latency=...)",
    "optimize_coverage": "optimize_coverage(room_id, median_snr=...)",
    "enable_sensing": "enable_sensing(room_id, type=..., duration=...)",
    "init_powering": "init_powering(client_id, duration=...)",
    "protect_link": "protect_link(client_id)",
}

#: Positional-parameter names per function, for parsing Fig. 6 style
#: calls like ``enhance_link('VR_headset', snr=30.0)``.
_POSITIONAL = {
    "enhance_link": ["client_id"],
    "optimize_coverage": ["room_id"],
    "enable_sensing": ["room_id"],
    "init_powering": ["client_id"],
    "protect_link": ["client_id"],
}


def build_prompt(
    user_input: str, functions: Optional[Sequence[str]] = None
) -> str:
    """The Fig. 6 system prompt: context, tool list, user input."""
    names = list(functions) if functions else sorted(_PROMPT_SIGNATURES)
    unknown = set(names) - set(_PROMPT_SIGNATURES)
    if unknown:
        raise TranslationError(f"unknown functions for prompt: {sorted(unknown)}")
    lines = [
        "Context: You are a programmer who writes code to control "
        "metasurfaces to meet user demands. Respond only with python "
        "function calls, one per line. You can call the following "
        "python functions:",
    ]
    lines.extend(f"- {_PROMPT_SIGNATURES[name]}" for name in names)
    lines.append("")
    lines.append(f"User Input: {user_input}")
    return "\n".join(lines)


def _literal(node: ast.expr) -> object:
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError) as exc:
        raise TranslationError(
            f"non-literal argument in generated call: {ast.dump(node)}"
        ) from exc


def parse_calls(completion: str) -> List[ServiceCall]:
    """Parse an LLM completion into validated service calls.

    Unknown function names, non-literal arguments, and signature
    violations all raise :class:`TranslationError`; nothing is executed.
    Non-call lines (explanatory comments) are skipped.
    """
    calls: List[ServiceCall] = []
    for raw_line in completion.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tree = ast.parse(line, mode="eval")
        except SyntaxError:
            continue  # prose the model added around the calls
        node = tree.body
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Name
        ):
            continue
        name = node.func.id
        if name not in SERVICE_SIGNATURES:
            raise TranslationError(f"generated call to unknown function {name!r}")
        positional = _POSITIONAL[name]
        if len(node.args) > len(positional):
            raise TranslationError(
                f"{name}: too many positional arguments in generated call"
            )
        arguments: Dict[str, object] = {}
        for param, arg in zip(positional, node.args):
            arguments[param] = _literal(arg)
        for kw in node.keywords:
            if kw.arg is None:
                raise TranslationError(f"{name}: **kwargs not allowed")
            arguments[kw.arg] = _literal(kw.value)
        calls.append(ServiceCall(function=name, arguments=arguments))
    return calls


@dataclass
class IntentTranslator:
    """Translate user demands through any :class:`LLMClient`."""

    client: LLMClient
    functions: Optional[Sequence[str]] = None

    def translate(self, user_input: str) -> List[ServiceCall]:
        """Natural language → validated service calls."""
        if not user_input.strip():
            raise TranslationError("empty user input")
        prompt = build_prompt(user_input, self.functions)
        completion = self.client.complete(prompt)
        return parse_calls(completion)


#: Fallback eavesdropper offset for protect_link calls that name no
#: location: a plausible over-the-shoulder spot near the device.
_DEFAULT_EVE_OFFSET = (1.0, -0.7, 0.0)


def dispatch_calls(
    calls: Sequence[ServiceCall], orchestrator
) -> List[object]:
    """Execute validated calls against a surface orchestrator.

    Returns the created :class:`ServiceTask` objects, in call order.
    """
    tasks = []
    for call in calls:
        args = dict(call.arguments)
        if call.function == "enhance_link":
            tasks.append(
                orchestrator.enhance_link(
                    args["client_id"],
                    snr=args.get("snr"),
                    latency=args.get("latency"),
                    priority=int(args.get("priority", 6)),
                )
            )
        elif call.function == "optimize_coverage":
            tasks.append(
                orchestrator.optimize_coverage(
                    args["room_id"],
                    median_snr=args.get("median_snr"),
                    priority=int(args.get("priority", 4)),
                )
            )
        elif call.function == "enable_sensing":
            # Fig. 6 completions spell the kwarg ``type=`` (kept verbatim
            # from the paper); the orchestrator API takes ``mode=``.
            tasks.append(
                orchestrator.enable_sensing(
                    args["room_id"],
                    mode=args.get("mode", args.get("type", "tracking")),
                    duration=args.get("duration", 3600.0),
                    priority=int(args.get("priority", 5)),
                )
            )
        elif call.function == "init_powering":
            tasks.append(
                orchestrator.init_powering(
                    args["client_id"],
                    duration=args.get("duration", 3600.0),
                    priority=int(args.get("priority", 3)),
                )
            )
        elif call.function == "protect_link":
            eve = args.get("eavesdropper_position")
            if eve is None:
                client = orchestrator.hardware.client(args["client_id"])
                eve = tuple(
                    float(c) + o
                    for c, o in zip(client.position, _DEFAULT_EVE_OFFSET)
                )
            tasks.append(
                orchestrator.protect_link(
                    args["client_id"],
                    eavesdropper_position=eve,
                    priority=int(args.get("priority", 7)),
                    nulling_weight=float(args.get("nulling_weight", 1.0)),
                )
            )
        else:  # pragma: no cover - ServiceCall already validates names
            raise TranslationError(f"unroutable call {call.function!r}")
    return tasks
