"""The LLM client protocol.

SurfOS uses LLMs "as an external tool" (§3.4); everything above this
protocol is model-agnostic.  The repository ships a deterministic
offline implementation (:class:`~repro.llm.mock.MockLLM`); a production
deployment would drop in a client backed by a hosted model with the
same one-method surface.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class LLMClient(Protocol):
    """Anything that completes a prompt into text."""

    def complete(self, prompt: str) -> str:
        """Return the model's completion for a prompt."""
        ...
