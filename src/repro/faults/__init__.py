"""repro.faults — deterministic fault injection for the control plane.

Public API (stable):

* :class:`FaultInjector` — seeded, time-driven injection engine.
* Fault specs: :class:`ElementFailure`, :class:`PanelDeath`,
  :class:`PhaseDrift`, :class:`ControlLinkFault`.
* :class:`InjectedFault` — activation records for telemetry/tests.

Attach an injector to a deployment via
:meth:`HardwareManager.attach_faults` (or the ``fault_injector``
argument of :class:`~repro.core.kernel.SurfOS`); with none attached the
stack's behavior is bit-identical to the fault-free build.
"""

from .injector import FaultInjector
from .models import (
    ControlLinkFault,
    ElementFailure,
    FaultSpec,
    InjectedFault,
    PanelDeath,
    PhaseDrift,
)

__all__ = [
    "ControlLinkFault",
    "ElementFailure",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PanelDeath",
    "PhaseDrift",
]
