"""The seeded fault injector: turns fault specs into hardware state.

One :class:`FaultInjector` is attached to the hardware manager
(:meth:`~repro.hwmgr.manager.HardwareManager.attach_faults`) and ticked
from the runtime clock.  It owns three kinds of state:

* **Element impairment** — dead/stuck element masks and cumulative
  phase-drift offsets per surface, applied to the panels' live
  configurations through :meth:`corrupt`.
* **Control-link behavior** — per-attempt drop/timeout/lag decisions
  consumed by the manager's retry loop (:meth:`link_attempt`).
* **An activation schedule** — time-driven specs that arm when the
  simulated clock passes ``at_time`` (:meth:`advance`).

Determinism is load-bearing: every random draw comes from a per-surface,
per-channel stream derived from ``(seed, crc32(surface_id), channel)``,
so two runs with the same seed and the same call sequence produce
bit-identical failures, retry schedules, and recovery behavior.  With
no injector attached the rest of the stack takes no fault code path at
all.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..core.configuration import SurfaceConfiguration
from ..core.errors import HardwareTimeoutError, TransientHardwareError
from ..surfaces.panel import SurfacePanel
from ..telemetry import Telemetry
from .models import (
    ControlLinkFault,
    ElementFailure,
    FaultSpec,
    InjectedFault,
    PanelDeath,
    PhaseDrift,
)

# RNG sub-stream ids, one per decision channel.
_CH_ELEMENTS = 0
_CH_DRIFT = 1
_CH_LINK = 2


class FaultInjector:
    """Deterministic, time-driven fault injection for one deployment.

    Args:
        seed: root seed for every per-surface random stream.
        telemetry: where ``faults.injected`` accounting goes; the
            hardware manager rebinds this to its own instance on
            attach.
    """

    def __init__(self, seed: int = 0, telemetry: Optional[Telemetry] = None):
        self.seed = int(seed)
        self.telemetry = telemetry or Telemetry(enabled=False)
        self._pending: List[FaultSpec] = []
        self._dead: Set[str] = set()
        self._dead_elements: Dict[str, np.ndarray] = {}
        self._stuck: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._drift_specs: Dict[str, PhaseDrift] = {}
        self._drift: Dict[str, np.ndarray] = {}
        self._links: Dict[str, ControlLinkFault] = {}
        self._streams: Dict[Tuple[str, int], np.random.Generator] = {}
        self._now = 0.0
        self._history: List[InjectedFault] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(self, spec: FaultSpec) -> FaultSpec:
        """Arm a fault spec; it activates when the clock passes its time."""
        self._pending.append(spec)
        self._pending.sort(key=lambda s: s.at_time)
        return spec

    def kill_panel(self, surface_id: str, at_time: float = 0.0) -> FaultSpec:
        """Schedule a whole-panel death."""
        return self.schedule(PanelDeath(surface_id, at_time))

    def fail_elements(
        self,
        surface_id: str,
        fraction: float,
        at_time: float = 0.0,
        mode: str = "dead",
    ) -> FaultSpec:
        """Schedule a random element-subset failure."""
        return self.schedule(
            ElementFailure(surface_id, at_time, fraction=fraction, mode=mode)
        )

    def drift_phases(
        self,
        surface_id: str,
        sigma_rad_per_sqrt_s: float = 0.05,
        at_time: float = 0.0,
    ) -> FaultSpec:
        """Schedule analog phase drift."""
        return self.schedule(
            PhaseDrift(
                surface_id, at_time, sigma_rad_per_sqrt_s=sigma_rad_per_sqrt_s
            )
        )

    def lossy_link(
        self,
        surface_id: str,
        drop_probability: float = 0.2,
        timeout_probability: float = 0.0,
        extra_delay_s: float = 0.0,
        timeout_s: float = 0.1,
        at_time: float = 0.0,
        until: float = math.inf,
    ) -> FaultSpec:
        """Schedule a lossy/laggy control link."""
        return self.schedule(
            ControlLinkFault(
                surface_id,
                at_time,
                drop_probability=drop_probability,
                timeout_probability=timeout_probability,
                extra_delay_s=extra_delay_s,
                timeout_s=timeout_s,
                until=until,
            )
        )

    # ------------------------------------------------------------------
    # deterministic randomness
    # ------------------------------------------------------------------

    def _stream(self, surface_id: str, channel: int) -> np.random.Generator:
        key = (surface_id, channel)
        rng = self._streams.get(key)
        if rng is None:
            token = zlib.crc32(surface_id.encode("utf-8"))
            rng = np.random.default_rng([self.seed, token, channel])
            self._streams[key] = rng
        return rng

    # ------------------------------------------------------------------
    # clock tick
    # ------------------------------------------------------------------

    def advance(
        self, now: float, panels: Mapping[str, SurfacePanel]
    ) -> List[InjectedFault]:
        """Activate due faults and accumulate drift up to ``now``.

        ``panels`` supplies lattice shapes (for element masks) and the
        live phases stuck elements freeze at.  Returns the faults that
        activated during this tick; drift accumulation alone reports
        nothing.
        """
        activated: List[InjectedFault] = []
        still_pending: List[FaultSpec] = []
        for spec in self._pending:
            if spec.at_time > now:
                still_pending.append(spec)
                continue
            event = self._activate(spec, panels)
            if event is not None:
                activated.append(event)
        self._pending = still_pending

        for sid, spec in self._drift_specs.items():
            dt = now - max(self._now, spec.at_time)
            if dt <= 0.0 or sid not in self._drift:
                continue
            rng = self._stream(sid, _CH_DRIFT)
            self._drift[sid] += rng.normal(
                0.0,
                spec.sigma_rad_per_sqrt_s * math.sqrt(dt),
                size=self._drift[sid].shape,
            )

        self._now = max(self._now, now)
        if activated:
            self.telemetry.counter("faults.injected", len(activated))
            for event in activated:
                self.telemetry.event(
                    "fault.injected",
                    kind=event.kind,
                    surface=event.surface_id,
                    detail=event.detail,
                )
        self._history.extend(activated)
        return activated

    def _activate(
        self, spec: FaultSpec, panels: Mapping[str, SurfacePanel]
    ) -> Optional[InjectedFault]:
        sid = spec.surface_id
        if isinstance(spec, PanelDeath):
            self._dead.add(sid)
            return InjectedFault(spec.kind, sid, spec.at_time, "all elements dark")
        if isinstance(spec, ControlLinkFault):
            self._links[sid] = spec
            return InjectedFault(
                spec.kind,
                sid,
                spec.at_time,
                f"drop={spec.drop_probability:g} "
                f"timeout={spec.timeout_probability:g}",
            )
        panel = panels.get(sid)
        if panel is None:
            # Unknown surface: drop the spec silently (the deployment
            # may legitimately not include it).
            return None
        if isinstance(spec, ElementFailure):
            n = panel.num_elements
            count = max(1, int(round(spec.fraction * n)))
            rng = self._stream(sid, _CH_ELEMENTS)
            indices = rng.choice(n, size=min(count, n), replace=False)
            mask = np.zeros(n, dtype=bool)
            mask[indices] = True
            if spec.mode == "dead":
                merged = self._dead_elements.get(sid)
                self._dead_elements[sid] = (
                    mask if merged is None else (merged | mask)
                )
            else:
                frozen = panel.configuration.flat_phases()[mask].copy()
                self._stuck[sid] = (mask, frozen)
            return InjectedFault(
                spec.kind,
                sid,
                spec.at_time,
                f"{int(mask.sum())}/{n} elements {spec.mode}",
            )
        if isinstance(spec, PhaseDrift):
            self._drift_specs[sid] = spec
            self._drift.setdefault(
                sid, np.zeros(panel.num_elements, dtype=float)
            )
            return InjectedFault(
                spec.kind,
                sid,
                spec.at_time,
                f"sigma={spec.sigma_rad_per_sqrt_s:g} rad/sqrt(s)",
            )
        raise TypeError(f"unknown fault spec {type(spec).__name__}")

    # ------------------------------------------------------------------
    # control-link behavior (consumed by the manager's retry loop)
    # ------------------------------------------------------------------

    def link_attempt(self, surface_id: str, now: float) -> float:
        """Decide one control-plane attempt's fate.

        Returns the extra link latency on success; raises
        :class:`TransientHardwareError` on a drop or
        :class:`HardwareTimeoutError` (carrying ``timeout_s``) on a
        timeout.
        """
        spec = self._links.get(surface_id)
        if spec is None or now < spec.at_time or now >= spec.until:
            return 0.0
        u = float(self._stream(surface_id, _CH_LINK).random())
        if u < spec.drop_probability:
            raise TransientHardwareError(
                f"{surface_id}: control link dropped the write"
            )
        if u < spec.drop_probability + spec.timeout_probability:
            exc = HardwareTimeoutError(
                f"{surface_id}: control link timed out after "
                f"{spec.timeout_s:g}s"
            )
            exc.timeout_s = spec.timeout_s
            raise exc
        return spec.extra_delay_s

    # ------------------------------------------------------------------
    # data-plane corruption
    # ------------------------------------------------------------------

    def impaired_surfaces(self) -> List[str]:
        """Surfaces whose element-level state is currently impaired."""
        impaired = (
            self._dead
            | set(self._dead_elements)
            | set(self._stuck)
            | set(self._drift)
        )
        return sorted(impaired)

    def is_dead(self, surface_id: str) -> bool:
        """Whether a whole panel has died."""
        return surface_id in self._dead

    def element_failure_fraction(self, surface_id: str) -> float:
        """Fraction of a surface's elements dead or stuck (0 when clean)."""
        if surface_id in self._dead:
            return 1.0
        failed = None
        dead = self._dead_elements.get(surface_id)
        if dead is not None:
            failed = dead.copy()
        stuck = self._stuck.get(surface_id)
        if stuck is not None:
            failed = stuck[0] if failed is None else (failed | stuck[0])
        if failed is None:
            return 0.0
        return float(failed.mean())

    def corrupt(
        self, surface_id: str, config: SurfaceConfiguration
    ) -> SurfaceConfiguration:
        """Apply the surface's current impairments to a configuration.

        Idempotent with respect to the *intended* configuration: always
        corrupt the clean intent, never an already-corrupted output
        (drift would double-apply).
        """
        phases = config.phases.copy()
        amplitudes = config.amplitudes.copy()
        flat_phases = phases.reshape(-1)
        flat_amplitudes = amplitudes.reshape(-1)
        if surface_id in self._dead:
            flat_amplitudes[:] = 0.0
        else:
            dead = self._dead_elements.get(surface_id)
            if dead is not None:
                flat_amplitudes[dead] = 0.0
            stuck = self._stuck.get(surface_id)
            if stuck is not None:
                mask, frozen = stuck
                flat_phases[mask] = frozen
            drift = self._drift.get(surface_id)
            if drift is not None:
                flat_phases += drift
        return SurfaceConfiguration(
            phases=phases,
            amplitudes=amplitudes,
            name=f"{config.name}+faults" if config.name else "faulted",
            frequency_hz=config.frequency_hz,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def history(self) -> List[InjectedFault]:
        """Every fault activated so far, in activation order."""
        return list(self._history)

    def pending_count(self) -> int:
        """Scheduled faults not yet activated."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, {len(self._pending)} pending, "
            f"{len(self._history)} activated, {len(self._dead)} dead panels)"
        )
