"""Deterministic fault models for programmable-surface deployments.

The models capture the failure classes that dominate real metasurface
deployments (Saeed et al., *Workload Characterization of Programmable
Metasurfaces*): element-level failures on cheap panels, whole-panel
death, analog phase drift, and a lossy/laggy control channel between
the hardware manager and the panels' microcontrollers.

Every model is a frozen spec — *what* fails, *when*, and *how hard* —
with no randomness of its own.  The :class:`~repro.faults.FaultInjector`
turns specs into element masks, drift offsets, and link outcomes using
seeded, per-surface RNG streams, so the same seed always produces the
same failures at the same times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSpec:
    """Base fault spec: which surface, starting when.

    Attributes:
        surface_id: the afflicted surface.
        at_time: simulated time the fault activates (seconds).
    """

    surface_id: str
    at_time: float = 0.0

    @property
    def kind(self) -> str:
        """Short machine-readable fault-class name."""
        return type(self).__name__


@dataclass(frozen=True)
class ElementFailure(FaultSpec):
    """A random subset of elements fails at ``at_time``.

    Attributes:
        fraction: fraction of elements afflicted, in (0, 1].
        mode: ``"dead"`` — elements stop re-radiating (amplitude 0) —
            or ``"stuck"`` — elements freeze at the phase they held
            when the fault hit (a stuck varactor/PIN bias line).
    """

    fraction: float = 0.05
    mode: str = "dead"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {self.fraction}")
        if self.mode not in ("dead", "stuck"):
            raise ValueError(f"mode must be 'dead' or 'stuck', got {self.mode!r}")


@dataclass(frozen=True)
class PanelDeath(FaultSpec):
    """The whole panel dies at ``at_time``: every element goes dark.

    Models power loss or a bricked controller; the sheet is still
    physically mounted but scatters nothing coherently (amplitude 0).
    """


@dataclass(frozen=True)
class PhaseDrift(FaultSpec):
    """Analog phase drift: a per-element random walk from ``at_time``.

    Element phases accumulate zero-mean Gaussian steps with standard
    deviation ``sigma_rad_per_sqrt_s * sqrt(dt)`` per advance of ``dt``
    simulated seconds — thermal drift on cheap varactor panels.
    """

    sigma_rad_per_sqrt_s: float = 0.05

    def __post_init__(self) -> None:
        if self.sigma_rad_per_sqrt_s <= 0.0:
            raise ValueError("sigma_rad_per_sqrt_s must be positive")


@dataclass(frozen=True)
class ControlLinkFault(FaultSpec):
    """A lossy/laggy control link to one surface from ``at_time``.

    Each control-plane attempt independently (but deterministically,
    per seed) either succeeds after ``extra_delay_s`` of link lag,
    drops (raising :class:`~repro.core.errors.TransientHardwareError`),
    or times out (raising
    :class:`~repro.core.errors.HardwareTimeoutError` after
    ``timeout_s``).

    Attributes:
        drop_probability: chance an attempt is dropped outright.
        timeout_probability: chance an attempt times out instead.
        extra_delay_s: added latency on *successful* attempts.
        timeout_s: simulated time burned by a timed-out attempt.
        until: deactivation time (defaults to forever).
    """

    drop_probability: float = 0.2
    timeout_probability: float = 0.0
    extra_delay_s: float = 0.0
    timeout_s: float = 0.1
    until: float = math.inf

    def __post_init__(self) -> None:
        total = self.drop_probability + self.timeout_probability
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must lie in [0, 1]")
        if not 0.0 <= self.timeout_probability <= 1.0:
            raise ValueError("timeout_probability must lie in [0, 1]")
        if total > 1.0:
            raise ValueError("drop + timeout probability exceeds 1")
        if self.extra_delay_s < 0.0 or self.timeout_s < 0.0:
            raise ValueError("link delays must be non-negative")
        if self.until <= self.at_time:
            raise ValueError("link fault must end after it starts")


@dataclass(frozen=True)
class InjectedFault:
    """One fault activation, as reported by the injector.

    Attributes:
        kind: fault-class name (``"PanelDeath"``, …).
        surface_id: the afflicted surface.
        time: simulated activation time.
        detail: human-readable specifics (elements hit, sigma, …).
    """

    kind: str
    surface_id: str
    time: float
    detail: str = ""
