"""Table 1 — diverse hardware designs, regenerated from the catalog."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.tables import render_table
from ..surfaces.catalog import TABLE1


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table 1."""

    headers: Tuple[str, ...]
    rows: List[Tuple[str, str, str, str, str, str]]

    def render(self) -> str:
        """Print-ready table."""
        return render_table(
            self.headers,
            self.rows,
            title="Table 1: Diverse hardware designs (regenerated)",
        )


def run() -> Table1Result:
    """Regenerate Table 1 from the machine-readable catalog."""
    headers = (
        "Surface System",
        "Freq Band",
        "Signal Control Mode",
        "Re-configurable",
        "Cost (per element)",
        "Table-1 cost cell",
    )
    rows = []
    for entry in TABLE1:
        design, band, mode, reconf, cost = entry.spec.summary_row()
        rows.append((design, band, mode, reconf, cost, entry.table1_cost))
    return Table1Result(headers=headers, rows=rows)
