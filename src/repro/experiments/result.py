"""One result contract for every experiment the CLI can run.

``pipeline``, ``fleet``, ``faults``, and ``load`` each used to hand-roll
their own JSON writing and pass/fail plumbing in :mod:`repro.cli`.  They
now share one small contract:

* :class:`ExperimentResult` — the protocol: ``summary()`` (flat,
  JSON-able dict), ``render()`` (human-readable report),
  ``gate_failures()`` (list of human-readable regression-gate
  violations; empty = pass).
* :class:`ExperimentResultBase` — mixin supplying ``to_json()`` and
  ``gate()`` (exit code) on top of the three protocol methods.
* :func:`finish` — the one CLI epilogue: print the rendering, write the
  ``--json`` artifact when asked, print ``FAIL:`` lines to stderr, and
  return the process exit code.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class ExperimentResult(Protocol):
    """What every gateable experiment result can do."""

    def summary(self) -> Dict[str, object]:
        """Flat JSON-able dict of the headline numbers."""
        ...

    def render(self) -> str:
        """Human-readable report (what the CLI prints)."""
        ...

    def gate_failures(self) -> List[str]:
        """Regression-gate violations; empty means the gate passes."""
        ...


class ExperimentResultBase:
    """Mixin: ``to_json()``/``gate()`` derived from the protocol methods.

    Subclasses implement ``summary()``, ``render()``, and
    ``gate_failures()``; the mixin standardises serialization and the
    exit-code convention (0 = every gate held, 1 = at least one
    violation).
    """

    def gate_failures(self) -> List[str]:
        return []

    def to_json(self) -> str:
        """The summary as deterministic (sorted-key) JSON."""
        return json.dumps(self.summary(), indent=2, sort_keys=True)

    def gate(self) -> int:
        """Process exit code: 0 when every regression gate holds."""
        return 1 if self.gate_failures() else 0


def finish(
    result: ExperimentResult,
    json_path: Optional[str] = None,
    artifact_label: str = "results",
) -> int:
    """Shared CLI epilogue: render, export, gate, exit code.

    Prints ``result.render()``, writes the sorted-key JSON summary to
    ``json_path`` when given, reports each gate violation as a
    ``FAIL: ...`` line on stderr, and returns the exit code.
    """
    print(result.render())
    if json_path:
        with open(json_path, "w") as fh:
            json.dump(result.summary(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n{artifact_label} written to {json_path}")
    failures = result.gate_failures()
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0
