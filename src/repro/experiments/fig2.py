"""Figure 2 — a coverage-maximizing configuration disrupts localization.

Reproduces the paper's motivating example: one surface extends mmWave
coverage from the AP into the target room; the configuration that
maximizes coverage produces a *good* RSS heatmap and a *bad*
localization-error heatmap over the same space, because the
configuration scrambles the spatial structure the (surface-unaware)
localization algorithm relies on (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analysis.heatmap import Heatmap
from ..orchestrator.optimizers import Adam, Optimizer, panel_projection
from ..services import connectivity, sensing
from .scenario import ApartmentScenario, CARRIER_HZ, build_scenario

#: Panel used for the motivating example (bedroom relay site).
PANEL_SIZE = 24

#: Error cap: nothing is "more lost" than the room diagonal.
ERROR_CAP_M = 5.0


@dataclass
class Fig2Result:
    """Both heatmaps plus summary statistics."""

    rss_heatmap: Heatmap
    localization_heatmap: Heatmap
    median_rss_dbm: float
    median_error_m: float
    reference_error_m: float  # same panel, spatial-info-preserving config

    def render(self) -> str:
        """Both heatmaps as text."""
        parts = [
            self.rss_heatmap.render(title="(a) Coverage heatmap (dBm)"),
            "",
            self.localization_heatmap.render(
                title="(b) Localization error heatmap (m)"
            ),
            "",
            (
                f"median RSS {self.median_rss_dbm:.1f} dBm | median "
                f"localization error {self.median_error_m:.2f} m "
                f"(vs {self.reference_error_m:.2f} m for a localization-"
                "friendly configuration of the same panel)"
            ),
        ]
        return "\n".join(parts)


def run(
    scenario: Optional[ApartmentScenario] = None,
    optimizer: Optional[Optimizer] = None,
    panel_size: int = PANEL_SIZE,
    seed: int = 0,
) -> Fig2Result:
    """Optimize for coverage only, then evaluate both services."""
    scenario = scenario or build_scenario(grid_spacing_m=0.5)
    optimizer = optimizer or Adam(max_iterations=150, learning_rate=0.2)
    panel = scenario.relay_panel(panel_size)
    points = scenario.bedroom_grid()
    model = scenario.simulator.build(scenario.ap_node(), points, [panel])
    rng = np.random.default_rng(seed)

    # Coverage-only optimization (the paper's premise).
    form = model.linear_form(panel.panel_id, {})
    coverage = connectivity.coverage_objective(form, budget=scenario.budget)
    result = optimizer.optimize(
        coverage,
        rng.uniform(0, 2 * np.pi, coverage.dim),
        projection=panel_projection(panel),
    )
    x = np.exp(1j * result.phases)
    configs = {panel.panel_id: x}

    rss = connectivity.rss_map_dbm(model, configs, scenario.budget)

    estimator = sensing.AoAEstimator(
        panel,
        sensing.surface_illumination(model, panel.panel_id),
        sensing.AngleGrid.uniform(count=61),
        CARRIER_HZ,
    )
    errors = sensing.measure_localization_errors(
        model,
        panel.panel_id,
        configs,
        estimator,
        scenario.budget,
        rng=rng,
        cap_m=ERROR_CAP_M,
    )

    # Reference: the same panel configured to preserve spatial structure
    # (conjugate of the AP illumination) — what sensing wishes it had.
    reference_x = np.exp(-1j * np.angle(estimator.illumination))
    reference_errors = sensing.measure_localization_errors(
        model,
        panel.panel_id,
        {panel.panel_id: reference_x},
        estimator,
        scenario.budget,
        rng=rng,
        cap_m=ERROR_CAP_M,
    )

    return Fig2Result(
        rss_heatmap=Heatmap(points, rss),
        localization_heatmap=Heatmap(points, errors),
        median_rss_dbm=float(np.median(rss)),
        median_error_m=float(np.median(errors)),
        reference_error_m=float(np.median(reference_errors)),
    )
