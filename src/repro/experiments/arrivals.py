"""Open-loop arrival benchmark: serial admission vs the request pipeline.

Requests arrive by a seeded Poisson process (or as one burst) and the
same workload runs through two control-plane disciplines:

* **serial** — the pre-pipeline behaviour: every demand is registered
  and immediately followed by its own full joint reoptimization.  A
  busy-server queue model charges each request the measured solve wall
  time plus hardware settle; with ``N`` requests the optimizer solves
  ``N`` times over a growing task set (quadratic total work).
* **pipelined** — demands queue in a
  :class:`~repro.pipeline.RequestPipeline`; each tick batch-admits a
  drained batch and the coalescing window collapses the admission
  triggers into one joint solve.  ``charge_compute=True`` maps the
  measured solve wall time onto the sim clock, so the sim-clock
  latencies include real compute cost.

Reported per mode: sim-clock p50/p99 submit→served latency, throughput
(served requests per simulated second), and solver counts.  The
benchmark suite asserts the pipelined mode clears 2x serial throughput
at a 10-request burst.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.tables import render_table
from ..broker.calls import reset_request_counter
from ..broker.demands import ApplicationDemand
from ..core.kernel import SurfOS
from ..geometry.floorplans import apartment_sites, two_room_apartment
from ..hwmgr.devices import AccessPoint, ClientDevice
from ..orchestrator.optimizers import Optimizer, RandomSearch
from ..orchestrator.tasks import reset_task_counter
from ..pipeline import (
    AdaptiveCoalesceConfig,
    EvaluationConfig,
    PipelineConfig,
)
from ..surfaces.catalog import GENERIC_PROGRAMMABLE_28
from ..surfaces.panel import SurfacePanel
from .result import ExperimentResultBase
from .scenario import CARRIER_HZ

#: Elements per panel side.  Large enough that solve compute dominates
#: the pipeline's tick/window overhead — the regime the coalescing
#: speedup claim is about — while staying CI-fast (~2 s total).
PANEL_SIZE = 16

#: Default optimizer budget per solve (see PANEL_SIZE).
SOLVE_ITERATIONS = 100

#: Cap on the adaptive coalescing window (and the fixed window / tick
#: step of the legacy fixed-grid mode, kept for comparison runs).
COALESCE_WINDOW_S = 0.1
TICK_DT_S = 0.1

#: Application archetypes cycled across arriving clients.
_APP_CYCLE = ("video_streaming", "online_meeting", "file_transfer")

#: Per-archetype demand parameters (throughput Mb/s, latency ms, priority).
_APP_PARAMS = {
    "video_streaming": (25.0, None, 6),
    "online_meeting": (4.0, 150.0, 7),
    "file_transfer": (200.0, None, 3),
}


@dataclass
class ModeResult:
    """One discipline's outcome over the arrival trace."""

    mode: str
    served: int
    latencies_s: List[float] = field(default_factory=list)
    reoptimizations: int = 0
    span_s: float = 0.0          # first arrival → last served (sim)
    wall_s: float = 0.0          # real compute spent in solves

    @property
    def throughput_rps(self) -> float:
        """Served requests per simulated second."""
        if self.span_s <= 0:
            return 0.0
        return self.served / self.span_s

    def percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_latency_s(self) -> float:
        return self.percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        return {
            "mode": self.mode,
            "served": self.served,
            "throughput_rps": round(self.throughput_rps, 4),
            "p50_latency_s": round(self.p50_latency_s, 6),
            "p99_latency_s": round(self.p99_latency_s, 6),
            "reoptimizations": self.reoptimizations,
            "span_s": round(self.span_s, 6),
            "wall_s": round(self.wall_s, 6),
        }


@dataclass
class ArrivalSweepResult(ExperimentResultBase):
    """Serial vs pipelined over one arrival trace."""

    serial: ModeResult
    pipelined: ModeResult
    requests: int
    rate_hz: float
    seed: int
    coalesce_ratio: float = 0.0

    @property
    def speedup(self) -> float:
        """Pipelined over serial throughput."""
        if self.serial.throughput_rps <= 0:
            return float("inf")
        return self.pipelined.throughput_rps / self.serial.throughput_rps

    def summary(self) -> Dict[str, object]:
        """Flat form for JSON artifacts and the CI gate."""
        return {
            "requests": self.requests,
            "rate_hz": self.rate_hz,
            "seed": self.seed,
            "speedup": round(self.speedup, 3),
            "coalesce_ratio": round(self.coalesce_ratio, 3),
            "serial": self.serial.summary(),
            "pipelined": self.pipelined.summary(),
        }

    def gate_failures(self) -> List[str]:
        """Pipelining must never make tail latency worse than serial."""
        if self.pipelined.p99_latency_s <= self.serial.p99_latency_s:
            return []
        return [
            f"pipelined p99 {self.pipelined.p99_latency_s:.3f}s exceeds "
            f"serial p99 {self.serial.p99_latency_s:.3f}s"
        ]

    def render(self) -> str:
        """Human-readable comparison table."""
        rows = []
        for mode in (self.serial, self.pipelined):
            rows.append(
                (
                    mode.mode,
                    f"{mode.throughput_rps:.2f}",
                    f"{mode.p50_latency_s:.3f}",
                    f"{mode.p99_latency_s:.3f}",
                    str(mode.reoptimizations),
                )
            )
        arrival = (
            "burst" if self.rate_hz <= 0 else f"Poisson {self.rate_hz:g}/s"
        )
        table = render_table(
            ("mode", "req/s", "p50 (s)", "p99 (s)", "solves"),
            rows,
            title=(
                f"Open-loop arrivals: {self.requests} requests, {arrival} "
                f"(seed {self.seed})"
            ),
        )
        return (
            f"{table}\n"
            f"throughput speedup: {self.speedup:.2f}x; "
            f"coalesce ratio: {self.coalesce_ratio:.2f} triggers/solve"
        )


def arrival_times(
    requests: int, rate_hz: float, seed: int = 0
) -> np.ndarray:
    """Seeded Poisson arrival times; ``rate_hz <= 0`` means one burst.

    Thin wrapper over the :mod:`repro.load` arrival models, so the
    benchmark and the load harness replay the exact same streams.
    """
    from ..load.models import BurstArrivals, PoissonArrivals

    if rate_hz <= 0:
        model = BurstArrivals(requests, seed=seed)
    else:
        model = PoissonArrivals(requests, rate_hz=rate_hz, seed=seed)
    return np.fromiter(model.times(), dtype=float, count=requests)


def _demands(requests: int) -> List[ApplicationDemand]:
    out = []
    for i in range(requests):
        app = _APP_CYCLE[i % len(_APP_CYCLE)]
        throughput, latency, priority = _APP_PARAMS[app]
        out.append(
            ApplicationDemand(
                app_name=app,
                client_id=f"cl-{i}",
                room_id="bedroom",
                throughput_mbps=throughput,
                latency_ms=latency,
                priority=priority,
            )
        )
    return out


def build_system(
    requests: int,
    seed: int = 0,
    panel_size: int = PANEL_SIZE,
    optimizer: Optional[Optimizer] = None,
) -> SurfOS:
    """The apartment with one programmable panel and ``requests`` clients.

    Module-level task/request counters are reset so serial and
    pipelined runs see identical ids — the determinism tests diff the
    two runs' telemetry exports byte for byte.
    """
    reset_task_counter()
    reset_request_counter()
    env = two_room_apartment()
    sites = apartment_sites()
    system = SurfOS(
        env,
        frequency_hz=CARRIER_HZ,
        optimizer=optimizer or RandomSearch(
            max_iterations=SOLVE_ITERATIONS, seed=seed
        ),
        grid_spacing_m=1.0,
    )
    system.add_access_point(
        AccessPoint(
            "ap", sites.ap_position, 4, CARRIER_HZ, boresight=(1.0, 0.3, 0.0)
        )
    )
    system.add_surface(
        SurfacePanel(
            "rs-1",
            GENERIC_PROGRAMMABLE_28,
            panel_size,
            panel_size,
            sites.single_surface_center,
            sites.single_surface_normal,
        )
    )
    rng = np.random.default_rng(seed + 1)
    for i in range(requests):
        position = (
            float(rng.uniform(5.2, 8.0)),
            float(rng.uniform(0.8, 3.4)),
            1.0,
        )
        system.add_client(ClientDevice(f"cl-{i}", position))
    return system.boot(observe_room="bedroom")


def run_serial(
    requests: int = 10,
    rate_hz: float = 0.0,
    seed: int = 0,
    panel_size: int = PANEL_SIZE,
    optimizer: Optional[Optimizer] = None,
    backend: str = "thread",
) -> ModeResult:
    """The pre-pipeline discipline: one full solve per arriving demand.

    A busy-server model: each request starts when both it has arrived
    and the previous solve finished; its service time is the measured
    solve wall time plus the hardware settle the push paid.

    The same evaluation backend the pipelined discipline uses is bound
    here too, so the comparison isolates the control-plane discipline
    (per-request solves vs batched, coalesced solves) rather than
    mixing in evaluator differences.
    """
    from ..pipeline import build_evaluator

    system = build_system(
        requests, seed=seed, panel_size=panel_size, optimizer=optimizer
    )
    evaluator = build_evaluator(
        EvaluationConfig(backend=backend, parallelism=2)
    )
    evaluator.bind_telemetry(system.telemetry)
    system.orchestrator.optimizer.bind_evaluator(evaluator)
    arrivals = arrival_times(requests, rate_hz, seed=seed)
    result = ModeResult(mode="serial", served=0)
    free_at = 0.0
    last_done = 0.0
    try:
        for arrival, demand in zip(arrivals, _demands(requests)):
            start = max(float(arrival), free_at)
            system.broker.register_application(demand)
            began = time.perf_counter()
            reopt = system.orchestrator.reoptimize(now=start)
            wall = time.perf_counter() - began
            result.wall_s += wall
            result.reoptimizations += 1
            done = start + wall + reopt.settle_s
            result.latencies_s.append(done - float(arrival))
            result.served += 1
            free_at = done
            last_done = done
    finally:
        system.orchestrator.optimizer.unbind_evaluator()
        evaluator.close()
    result.span_s = last_done - float(arrivals[0])
    return result


def run_pipelined(
    requests: int = 10,
    rate_hz: float = 0.0,
    seed: int = 0,
    panel_size: int = PANEL_SIZE,
    optimizer: Optional[Optimizer] = None,
    config: Optional[PipelineConfig] = None,
    dt: Optional[float] = None,
    horizon_s: float = 600.0,
    backend: str = "thread",
):
    """The pipelined discipline over the same trace; returns the pipeline.

    Submissions are scheduled on the sim clock at their arrival times.
    By default the pipeline runs **event-driven**
    (:meth:`~repro.pipeline.RequestPipeline.pump`) under **adaptive
    coalescing**: a lone steady-state request is admitted and solved at
    its exact arrival instant (zero window), while bursts still
    coalesce into joint solves.  Pass ``dt`` to force the legacy
    fixed-grid tick loop instead.
    """
    system = build_system(
        requests, seed=seed, panel_size=panel_size, optimizer=optimizer
    )
    config = config or PipelineConfig(
        adaptive=AdaptiveCoalesceConfig(max_window_s=COALESCE_WINDOW_S),
        charge_compute=True,
        evaluation=EvaluationConfig(backend=backend, parallelism=2),
    )
    pipeline = system.attach_pipeline(config)
    demands = _demands(requests)
    for arrival, demand in zip(
        arrival_times(requests, rate_hz, seed=seed), demands
    ):
        pipeline.clock.schedule(
            float(arrival), lambda d=demand: pipeline.submit(d)
        )
    if dt is None:
        pipeline.pump(horizon_s)
    else:
        while pipeline.clock.now < horizon_s:
            pipeline.clock.advance(dt)
            pipeline.tick()
            settled = pipeline.stats.rejected + len(pipeline.stats.latencies)
            if settled >= requests and not pipeline.queue.depth:
                break
    return pipeline


def run(
    requests: int = 10,
    rate_hz: float = 0.0,
    seed: int = 0,
    panel_size: int = PANEL_SIZE,
    config: Optional[PipelineConfig] = None,
    dt: Optional[float] = None,
    backend: str = "thread",
) -> ArrivalSweepResult:
    """Both disciplines over one seeded trace; the benchmark entry point."""
    serial = run_serial(
        requests,
        rate_hz=rate_hz,
        seed=seed,
        panel_size=panel_size,
        backend=backend,
    )
    pipeline = run_pipelined(
        requests,
        rate_hz=rate_hz,
        seed=seed,
        panel_size=panel_size,
        config=config,
        dt=dt,
        backend=backend,
    )
    stats = pipeline.stats
    arrivals = arrival_times(requests, rate_hz, seed=seed)
    served_ats = [
        h.served_at
        for h in pipeline._handles
        if h.served_at is not None
    ]
    span = (max(served_ats) - float(arrivals[0])) if served_ats else 0.0
    pipelined = ModeResult(
        mode="pipelined",
        served=len(stats.latencies),
        latencies_s=list(stats.latencies),
        reoptimizations=stats.reoptimizations,
        span_s=span,
        wall_s=0.0,
    )
    pipeline.close()
    return ArrivalSweepResult(
        serial=serial,
        pipelined=pipelined,
        requests=requests,
        rate_hz=rate_hz,
        seed=seed,
        coalesce_ratio=stats.coalesce_ratio,
    )
