"""Figure 5 — multitasking for joint localization and coverage.

The paper's §4 multitasking study: optimize one shared surface
configuration for (i) coverage only, (ii) localization only, and
(iii) both jointly ("we minimize the sum of localization loss and
coverage loss"), then compare CDFs of localization error and SNR across
locations in the target room.

Expected shape: the joint configuration tracks each specialist closely
on its own metric — "a single surface configuration can effectively
multitask with little performance loss" — while each specialist is
clearly worse on the *other* metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analysis.cdf import EmpiricalCDF, cdf_table, summarize
from ..analysis.tables import render_table
from ..orchestrator.objectives import JointObjective
from ..orchestrator.optimizers import Adam, Optimizer
from ..services import connectivity, sensing
from ..surfaces.catalog import GENERIC_PASSIVE_28
from .scenario import ApartmentScenario, CARRIER_HZ, build_scenario

#: The paper studies a passive surface here; 28 elements per side keeps
#: the sensing aperture meaningful.
PANEL_SIZE = 28

#: Localization errors are reported over the paper's 0–2 m axis.
ERROR_CAP_M = 2.0

#: Relative weight of the localization loss in the joint objective;
#: 0.3 keeps the multitask SNR within ~2 dB of the coverage specialist
#: while matching the localization specialist's error CDF (see the
#: joint-weight ablation bench).
JOINT_LOCALIZATION_WEIGHT = 0.3


@dataclass
class Fig5Result:
    """CDFs per configuration and metric."""

    error_cdfs: Dict[str, EmpiricalCDF]
    snr_cdfs: Dict[str, EmpiricalCDF]

    def render(self) -> str:
        """Percentile summaries plus CDF tables for both metrics."""
        parts = []
        err_summary = summarize(self.error_cdfs)
        snr_summary = summarize(self.snr_cdfs)
        rows = [
            (
                name,
                f"{err_summary[name]['p50']:.2f}",
                f"{err_summary[name]['p90']:.2f}",
                f"{snr_summary[name]['p50']:.1f}",
                f"{snr_summary[name]['p10']:.1f}",
            )
            for name in self.error_cdfs
        ]
        parts.append(
            render_table(
                (
                    "configuration",
                    "median loc err (m)",
                    "p90 loc err (m)",
                    "median SNR (dB)",
                    "p10 SNR (dB)",
                ),
                rows,
                title="Figure 5: multitasking for joint localization + coverage",
            )
        )
        err_xs = np.linspace(0.0, ERROR_CAP_M, 9)
        parts.append("\nCDF over locations — localization error (m):")
        parts.append(
            render_table(
                ["error (m)"] + list(self.error_cdfs),
                cdf_table(self.error_cdfs, err_xs),
            )
        )
        all_snr = np.concatenate([c.samples for c in self.snr_cdfs.values()])
        snr_xs = np.linspace(all_snr.min(), all_snr.max(), 9)
        parts.append("\nCDF over locations — SNR (dB):")
        parts.append(
            render_table(
                ["SNR (dB)"] + list(self.snr_cdfs),
                cdf_table(self.snr_cdfs, snr_xs, value_format="{:.1f}"),
            )
        )
        return "\n".join(parts)


def run(
    scenario: Optional[ApartmentScenario] = None,
    optimizer: Optional[Optimizer] = None,
    panel_size: int = PANEL_SIZE,
    joint_weight: float = JOINT_LOCALIZATION_WEIGHT,
    seed: int = 0,
) -> Fig5Result:
    """Optimize the three configurations and evaluate both metrics."""
    scenario = scenario or build_scenario(grid_spacing_m=0.5)
    optimizer = optimizer or Adam(max_iterations=200, learning_rate=0.2)
    panel = scenario.relay_panel(panel_size, spec=GENERIC_PASSIVE_28)
    points = scenario.bedroom_grid()
    model = scenario.simulator.build(scenario.ap_node(), points, [panel])
    rng = np.random.default_rng(seed)

    form = model.linear_form(panel.panel_id, {})
    coverage = connectivity.coverage_objective(form, budget=scenario.budget)
    estimator = sensing.AoAEstimator(
        panel,
        sensing.surface_illumination(model, panel.panel_id),
        sensing.AngleGrid.uniform(count=61),
        CARRIER_HZ,
    )
    localization = sensing.localization_objective(
        model, panel.panel_id, estimator, budget=scenario.budget
    )
    joint = JointObjective([(coverage, 1.0), (localization, joint_weight)])

    x0 = rng.uniform(0, 2 * np.pi, coverage.dim)
    configs = {
        "Coverage Opt": optimizer.optimize(coverage, x0.copy()).phases,
        "Localization Opt": optimizer.optimize(localization, x0.copy()).phases,
        "Multi-tasking": optimizer.optimize(joint, x0.copy()).phases,
    }

    error_cdfs: Dict[str, EmpiricalCDF] = {}
    snr_cdfs: Dict[str, EmpiricalCDF] = {}
    for name, phases in configs.items():
        x = np.exp(1j * phases)
        snrs = connectivity.snr_map_db(
            model, {panel.panel_id: x}, scenario.budget
        )
        errors = sensing.measure_localization_errors(
            model,
            panel.panel_id,
            {panel.panel_id: x},
            estimator,
            scenario.budget,
            rng=np.random.default_rng(seed + 1),
            trials=3,
            cap_m=ERROR_CAP_M,
        )
        snr_cdfs[name] = EmpiricalCDF(snrs)
        error_cdfs[name] = EmpiricalCDF(errors)

    return Fig5Result(error_cdfs=error_cdfs, snr_cdfs=snr_cdfs)
