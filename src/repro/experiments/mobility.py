"""Mobility & churn scenarios with speculative leg prefetch.

Continuous-motion endpoints (waypoint walkers crossing doorways),
obstacle walkers, and Poisson arrival/departure churn drive the real
daemon → pipeline → orchestrator loop on any registered scene
(``two-room``, ``apartment``, the two-storey ``office``).  Every step
the driver optionally *pre-traces* the channel legs for where the
mobility models will be next:

1. :meth:`~repro.runtime.dynamics.EnvironmentDynamics.peek_clients`
   runs each model's ``peek(dt)`` — the exact arithmetic of the real
   next step on a copy, so predictions are bit-identical to where the
   endpoints actually move;
2. the predicted per-task point blocks are concatenated in
   ``active_contexts()`` order (exactly how ``reoptimize`` will
   assemble them) and handed to
   :meth:`~repro.channel.simulator.ChannelSimulator.prefetch`, warming
   the ``direct``/``surface_to_points`` legs in the leg LRU off the
   reaction path.

Prefetching only warms a cache keyed by the exact float bytes of the
point set, so outputs are bit-identical with it on, off, or cold — the
determinism gates below diff a per-step median-SNR trace to prove it.
``benchmarks/test_bench_mobility.py`` turns the same driver into the
``BENCH_mobility.json`` artifact (prefetch-on vs -off vs cold wall
reaction latency).
"""

from __future__ import annotations

import hashlib
import time
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.tables import render_table
from ..broker.calls import reset_request_counter
from ..core.kernel import SurfOS
from ..geometry.vec import as_vec3
from ..hwmgr.devices import ClientDevice
from ..mobility import RandomWalk, WaypointWalker, churn_schedule
from ..orchestrator.optimizers import RandomSearch
from ..orchestrator.solvebudget import SolveBudgetConfig
from ..orchestrator.tasks import reset_task_counter
from ..pipeline import AdaptiveCoalesceConfig, EvaluationConfig, PipelineConfig
from ..runtime.dynamics import Walker
from ..services.connectivity import snr_map_db
from ..telemetry import Telemetry
from .result import ExperimentResultBase

#: Optimizer budget per joint solve — small enough for CI, large
#: enough that reaction wall time is dominated by solve + channel work.
SOLVE_ITERATIONS = 24

#: Link-SNR target asked of every mobile client's task.
_LINK_SNR_DB = 20.0

#: Drift band for ``adaptive_budget`` runs, calibrated on the bench
#: workload: settled re-solves probe below ~0.5% drift (the residual
#: from neighbouring panels' freshly pushed configs) and earn the floor
#: budget; genuine motion probes 2–40% and earns the full ceiling.
_DRIFT_LOW = 5e-3
_DRIFT_HIGH = 5e-2


def _solve_budget_config(config: "MobilityConfig") -> SolveBudgetConfig:
    """The drift-aware budget profile for one mobility run."""
    return SolveBudgetConfig(
        enabled=True,
        floor=max(2, config.solve_iterations // 12),
        drift_low=_DRIFT_LOW,
        drift_high=_DRIFT_HIGH,
    )


@dataclass(frozen=True)
class MobilityConfig:
    """One mobility scenario run.

    Attributes:
        scene: registered scene name (``repro.geometry.scenes``).
        seed: master seed (walker speeds, churn schedule, spawns).
        steps: daemon cycles to run.
        dt_s: simulated seconds per cycle.
        clients: mobile endpoints walking the scene's client loops.
        walkers: obstacle walkers on the scene's walker loops.
        churn_rate_hz: Poisson arrival rate of transient guest clients
            (0 disables churn — the pure-motion regime).
        churn_lifetime_s: mean guest dwell time.
        churn_max_live: cap on simultaneously live guests.
        prefetch: speculatively pre-trace predicted legs each step.
        panel_size: elements per surface side.
        grid_spacing_m: coverage/observation grid pitch.
        channel_workers: thread-pool size for leg tracing (results are
            bit-identical at any count).
        leg_cache_size: override for the simulator's leg LRU bound
            (``None`` keeps the default; ``0`` disables leg caching —
            the "cold" baseline).
        measure_wall: record wall-clock reaction times (kept out of
            the summary; the bench reads them off the result).
        adaptive_budget: drift-aware adaptive solve budgets + solution
            memory + optimizer early-stop (off = fixed budgets,
            byte-identical to the pre-feature control plane).
        eval_backend: pipeline evaluation backend override (``thread``
            or ``process``, parallelism 2); ``None`` keeps the default
            serial evaluation.  Bit-identical either way.
        client_pause_s: dwell seconds at each client waypoint (0 keeps
            the legacy always-moving endpoints).  Dwells create
            quiescent reactions where the objective goes static — the
            regime adaptive budgets harvest.
        search_scale: RandomSearch initial perturbation scale.
        search_decay: RandomSearch scale decay on failed iterations —
            lower values converge (and so plateau) within the budget.
        early_stop_eps: relative-improvement early-stop threshold used
            when ``adaptive_budget`` is on (``None`` disables the
            stop; budgets still apply).
        early_stop_patience: consecutive stalled iterations before the
            early stop fires.
    """

    scene: str = "apartment"
    seed: int = 0
    steps: int = 60
    dt_s: float = 0.25
    clients: int = 1
    walkers: int = 1
    churn_rate_hz: float = 0.0
    churn_lifetime_s: float = 8.0
    churn_max_live: int = 3
    prefetch: bool = True
    panel_size: int = 8
    solve_iterations: int = SOLVE_ITERATIONS
    grid_spacing_m: float = 1.0
    channel_workers: int = 0
    leg_cache_size: Optional[int] = None
    measure_wall: bool = False
    adaptive_budget: bool = False
    eval_backend: Optional[str] = None
    client_pause_s: float = 0.0
    search_scale: float = 1.0
    search_decay: float = 0.9
    early_stop_eps: Optional[float] = 1e-3
    early_stop_patience: int = 2


@dataclass
class MobilityResult(ExperimentResultBase):
    """Outcome of one mobility scenario run."""

    config: MobilityConfig
    reactions: int = 0
    reaction_p50_s: float = 0.0
    reaction_p95_s: float = 0.0
    triggers: Dict[str, int] = field(default_factory=dict)
    legs_prefetched: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    legs_retraced: int = 0
    leg_cache_full_purges: int = 0
    churn_arrivals: int = 0
    churn_departures: int = 0
    reoptimize_failures: int = 0
    median_snr_db: float = 0.0
    snr_digest: str = ""
    #: Per-step median observed SNR (the deterministic functional
    #: output the bit-identity gates diff).  Not summarized.
    snr_trace: List[float] = field(default_factory=list, repr=False)
    #: Wall-clock seconds of each daemon step that fired a reaction
    #: (only with ``measure_wall``); nondeterministic, bench-only.
    wall_reaction_s: List[float] = field(default_factory=list, repr=False)
    #: Wall-clock seconds of each fired reaction's *optimize* phase
    #: (only with ``measure_wall``); nondeterministic, bench-only.
    wall_solve_s: List[float] = field(default_factory=list, repr=False)
    #: Adaptive solve-budget totals over the run (``solver.*``
    #: counters; all zero when ``adaptive_budget`` is off).
    solver_budgeted_iterations: int = 0
    solver_used_iterations: int = 0
    solver_warm_hits: int = 0
    solver_early_stops: int = 0

    @property
    def prefetch_hit_rate(self) -> float:
        """Hits over resolved (hit or wasted) prefetched legs."""
        resolved = self.prefetch_hits + self.prefetch_wasted
        if resolved <= 0:
            return 0.0
        return self.prefetch_hits / resolved

    def summary(self) -> Dict[str, object]:
        cfg = self.config
        return {
            "scene": cfg.scene,
            "seed": cfg.seed,
            "steps": cfg.steps,
            "dt_s": cfg.dt_s,
            "clients": cfg.clients,
            "walkers": cfg.walkers,
            "churn_rate_hz": cfg.churn_rate_hz,
            "prefetch": cfg.prefetch,
            "channel_workers": cfg.channel_workers,
            "reactions": self.reactions,
            "reaction_p50_s": round(self.reaction_p50_s, 6),
            "reaction_p95_s": round(self.reaction_p95_s, 6),
            "triggers": dict(sorted(self.triggers.items())),
            "legs_prefetched": self.legs_prefetched,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_wasted": self.prefetch_wasted,
            "prefetch_hit_rate": round(self.prefetch_hit_rate, 4),
            "legs_retraced": self.legs_retraced,
            "leg_cache_full_purges": self.leg_cache_full_purges,
            "churn_arrivals": self.churn_arrivals,
            "churn_departures": self.churn_departures,
            "reoptimize_failures": self.reoptimize_failures,
            "median_snr_db": round(self.median_snr_db, 6),
            "snr_digest": self.snr_digest,
            "adaptive_budget": cfg.adaptive_budget,
            "solver_budgeted_iterations": self.solver_budgeted_iterations,
            "solver_used_iterations": self.solver_used_iterations,
            "solver_warm_hits": self.solver_warm_hits,
            "solver_early_stops": self.solver_early_stops,
        }

    def gate_failures(self) -> List[str]:
        failures = []
        if self.reactions <= 0:
            failures.append("no reactions fired over the run")
        if self.reoptimize_failures:
            failures.append(
                f"{self.reoptimize_failures} reoptimizations failed"
            )
        if self.config.churn_rate_hz <= 0 and self.leg_cache_full_purges:
            failures.append(
                "pure-motion run full-purged the leg cache "
                f"{self.leg_cache_full_purges}x (attribution regression)"
            )
        if (
            self.config.prefetch
            and self.config.churn_rate_hz <= 0
            and self.config.leg_cache_size != 0
            and self.prefetch_hit_rate < 0.5
        ):
            failures.append(
                f"prefetch hit rate {self.prefetch_hit_rate:.2f} below 0.5"
            )
        return failures

    def render(self) -> str:
        cfg = self.config
        rows = [
            ("reactions", str(self.reactions)),
            ("reaction p50 (sim s)", f"{self.reaction_p50_s:.3f}"),
            ("reaction p95 (sim s)", f"{self.reaction_p95_s:.3f}"),
            (
                "triggers",
                ", ".join(
                    f"{k}:{v}" for k, v in sorted(self.triggers.items())
                )
                or "-",
            ),
            (
                "prefetch legs (hit/wasted)",
                f"{self.legs_prefetched} "
                f"({self.prefetch_hits}/{self.prefetch_wasted})",
            ),
            ("prefetch hit rate", f"{self.prefetch_hit_rate:.2f}"),
            ("legs retraced", str(self.legs_retraced)),
            ("leg-cache full purges", str(self.leg_cache_full_purges)),
            (
                "churn (arrive/depart)",
                f"{self.churn_arrivals}/{self.churn_departures}",
            ),
            ("median SNR (dB)", f"{self.median_snr_db:.2f}"),
        ]
        if cfg.adaptive_budget:
            rows.append(
                (
                    "solver iters (used/budgeted)",
                    f"{self.solver_used_iterations}"
                    f"/{self.solver_budgeted_iterations}",
                )
            )
            rows.append(
                (
                    "solver warm hits / early stops",
                    f"{self.solver_warm_hits}/{self.solver_early_stops}",
                )
            )
        mode = "prefetch on" if cfg.prefetch else "prefetch off"
        if cfg.leg_cache_size == 0:
            mode = "cold (no leg cache)"
        return render_table(
            ("metric", "value"),
            rows,
            title=(
                f"Mobility: scene={cfg.scene} steps={cfg.steps} "
                f"clients={cfg.clients} walkers={cfg.walkers} "
                f"churn={cfg.churn_rate_hz:g}/s [{mode}] (seed {cfg.seed})"
            ),
        )


def _guest_seed(seed: int, client_id: str) -> int:
    """Id-derived seed: stable across arrival order and worker counts."""
    return seed * 7919 + zlib.crc32(client_id.encode("utf-8"))


class _ChurnDriver:
    """Registers guest arrivals/departures on the daemon clock."""

    def __init__(self, system: SurfOS, config: MobilityConfig):
        self.system = system
        self.config = config
        self.scene = system.scene
        self.arrivals = 0
        self.departures = 0
        self._tasks: Dict[str, List[str]] = {}
        events = churn_schedule(
            config.churn_rate_hz,
            horizon_s=config.steps * config.dt_s,
            seed=config.seed + 101,
            lifetime_s=config.churn_lifetime_s,
            max_live=config.churn_max_live,
            prefix="guest",
        )
        clock = system.daemon.clock
        for event in events:
            handler = (
                self._arrive if event.kind == "arrive" else self._depart
            )
            clock.schedule(event.at, lambda e=event, h=handler: h(e.client_id))

    def _arrive(self, client_id: str) -> None:
        rng = np.random.default_rng(
            _guest_seed(self.config.seed, client_id)
        )
        position = tuple(map(float, self.scene.spawn_position(rng)))
        client = self.system.add_client(ClientDevice(client_id, position))
        task = self.system.orchestrator.enhance_link(
            client_id, snr=_LINK_SNR_DB, priority=5
        )
        self._tasks[client_id] = [task.task_id]
        self.system.dynamics.attach_client(
            client,
            RandomWalk(
                position,
                self.scene.spawn_lo,
                self.scene.spawn_hi,
                speed_mps=0.8,
                seed=_guest_seed(self.config.seed, client_id) + 1,
            ),
        )
        self.arrivals += 1

    def _depart(self, client_id: str) -> None:
        for task_id in self._tasks.pop(client_id, []):
            try:
                self.system.orchestrator.complete_task(task_id)
            except Exception:
                pass  # already reaped (e.g. expired)
        self.system.dynamics.detach_client(client_id)
        self.system.hardware.unregister_client(client_id)
        self.departures += 1


def build_system(
    config: MobilityConfig, telemetry: Optional[Telemetry] = None
) -> SurfOS:
    """Stand up the scenario's booted system + pipeline + mobility."""
    reset_task_counter()
    reset_request_counter()
    system = SurfOS.from_scene(
        config.scene,
        panel_size=config.panel_size,
        optimizer=RandomSearch(
            max_iterations=config.solve_iterations,
            seed=config.seed,
            initial_scale=config.search_scale,
            decay=config.search_decay,
            early_stop_eps=(
                config.early_stop_eps if config.adaptive_budget else None
            ),
            early_stop_patience=config.early_stop_patience,
        ),
        grid_spacing_m=config.grid_spacing_m,
        telemetry=telemetry,
        channel_workers=config.channel_workers,
        solve_budget=(
            _solve_budget_config(config) if config.adaptive_budget else None
        ),
    )
    if config.leg_cache_size is not None:
        system.orchestrator.simulator.leg_cache_size = config.leg_cache_size
    pipeline_kwargs = {"adaptive": AdaptiveCoalesceConfig()}
    if config.eval_backend:
        pipeline_kwargs["evaluation"] = EvaluationConfig(
            backend=config.eval_backend, parallelism=2
        )
    system.attach_pipeline(PipelineConfig(**pipeline_kwargs))
    scene = system.scene
    if config.walkers and not scene.walker_loops:
        raise ValueError(f"scene {scene.name!r} defines no walker loops")
    if config.clients and not scene.client_loops:
        raise ValueError(f"scene {scene.name!r} defines no client loops")
    for j in range(config.walkers):
        loop = scene.walker_loops[j % len(scene.walker_loops)]
        # People dwell: pausing at each waypoint leaves the environment
        # untouched for those steps (dynamics skips unchanged walkers),
        # so prefetched direct legs survive through the dwell.
        system.dynamics.add_walker(
            Walker(
                f"walker-{j}",
                model=WaypointWalker(
                    loop, speed_mps=0.9 + 0.15 * j, pauses=2.0
                ),
            )
        )
    for i in range(config.clients):
        loop = scene.client_loops[i % len(scene.client_loops)]
        client_id = f"mc{i}"
        client = system.add_client(
            ClientDevice(client_id, tuple(map(float, loop[0])))
        )
        system.dynamics.attach_client(
            client,
            WaypointWalker(
                loop,
                speed_mps=1.0 + 0.1 * i,
                pauses=config.client_pause_s or None,
            ),
        )
    system.orchestrator.optimize_coverage(scene.observe_room)
    for i in range(config.clients):
        system.orchestrator.enhance_link(f"mc{i}", snr=_LINK_SNR_DB)
    return system


def _predicted_points(system: SurfOS, dt: float) -> Optional[np.ndarray]:
    """The point set the *next* reoptimization will build with.

    Mirrors ``reoptimize``'s assembly exactly: per-task point blocks in
    ``active_contexts()`` order, with each mobile client's block
    replaced by its model's bit-exact ``peek(dt)`` prediction.
    """
    predictions = system.dynamics.peek_clients(dt)
    blocks = []
    for ctx in system.orchestrator.active_contexts():
        client_id = ctx.task.goal.get("client")
        if client_id is not None and client_id in predictions:
            blocks.append(as_vec3(predictions[client_id])[None, :])
        else:
            blocks.append(ctx.points)
    if not blocks:
        return None
    return np.concatenate(blocks, axis=0)


def run(
    config: MobilityConfig = MobilityConfig(),
    jsonl: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> MobilityResult:
    """Run one mobility scenario end to end."""
    telemetry = telemetry or Telemetry()
    system = build_system(config, telemetry=telemetry)
    orchestrator = system.orchestrator
    simulator = orchestrator.simulator
    daemon = system.daemon
    churn = (
        _ChurnDriver(system, config) if config.churn_rate_hz > 0 else None
    )
    # Converge the starting placement so the run measures *reactions*.
    orchestrator.reoptimize(now=0.0)
    observe_points = daemon._points()
    panels = orchestrator.hardware.panels()
    result = MobilityResult(config=config)
    try:
        for _ in range(config.steps):
            if config.prefetch and simulator.leg_cache_size > 0:
                predicted = _predicted_points(system, config.dt_s)
                if predicted is not None:
                    simulator.prefetch(
                        orchestrator.ap.node(), predicted, panels
                    )
            start = time.perf_counter() if config.measure_wall else 0.0
            record = daemon.step(config.dt_s)
            if config.measure_wall and record is not None:
                result.wall_reaction_s.append(time.perf_counter() - start)
                result.wall_solve_s.append(record.wall_solve_s)
            # Deterministic functional output: the observed-grid median
            # SNR under the live configurations.  This re-uses the
            # model the daemon's own observe() just built (cache hit)
            # rather than calling observe() again, which would feed the
            # monitor duplicate samples and skew anomaly detection.
            model = simulator.build(
                orchestrator.ap.node(), observe_points, panels
            )
            snrs = snr_map_db(
                model, orchestrator._live_coefficients(), orchestrator.budget
            )
            result.snr_trace.append(float(np.median(snrs)))
    finally:
        system.pipeline.close()
    latencies = [r.reaction_latency_s for r in daemon.reactions]
    result.reactions = len(latencies)
    if latencies:
        arr = np.asarray(latencies)
        result.reaction_p50_s = float(np.percentile(arr, 50.0))
        result.reaction_p95_s = float(np.percentile(arr, 95.0))
    result.triggers = dict(Counter(r.trigger for r in daemon.reactions))
    prefetched, hits, wasted = simulator.prefetch_stats
    result.legs_prefetched = prefetched
    result.prefetch_hits = hits
    result.prefetch_wasted = wasted
    result.legs_retraced = int(simulator.leg_cache_stats[1])
    result.leg_cache_full_purges = int(
        telemetry.get_counter("channel.leg_cache_full_purges")
    )
    if churn is not None:
        result.churn_arrivals = churn.arrivals
        result.churn_departures = churn.departures
    result.reoptimize_failures = daemon.reoptimize_failures
    result.solver_budgeted_iterations = int(
        telemetry.get_counter("solver.budget_iterations")
    )
    result.solver_used_iterations = int(
        telemetry.get_counter("solver.used_iterations")
    )
    result.solver_warm_hits = int(telemetry.get_counter("solver.warm_hits"))
    result.solver_early_stops = int(
        telemetry.get_counter("solver.early_stops")
    )
    if result.snr_trace:
        result.median_snr_db = result.snr_trace[-1]
    result.snr_digest = hashlib.sha1(
        np.asarray(result.snr_trace, dtype=float).tobytes()
    ).hexdigest()
    if jsonl:
        telemetry.export_jsonl(jsonl, sim_only=True)
    return result
