"""Figure 6 — LLM calling surface services from natural language.

Reproduces the paper's demonstration: a language model (here the
deterministic offline :class:`MockLLM`; swap in a hosted model via the
:class:`LLMClient` protocol) receives a system prompt advertising the
SurfOS service APIs plus a user's natural-language demand, and responds
with validated service calls.  The two inputs shown in the paper's
figure are reproduced verbatim, plus additional scenarios covering the
remaining services.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..broker.calls import ServiceCall
from ..llm.client import LLMClient
from ..llm.intent import IntentTranslator
from ..llm.mock import MockLLM
from ..analysis.tables import render_table

#: The paper's Figure 6 rows: user input → expected calls.
PAPER_CASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "I want to start VR gaming in this room.",
        (
            "enhance_link('VR_headset', snr=30.0, latency=10.0)",
            "enable_sensing('room_id', type='tracking', duration=3600)",
            "optimize_coverage('room_id', median_snr=25)",
        ),
    ),
    (
        "I want to have an online meeting while charging my phone.",
        (
            "enhance_link('laptop', snr=20.0, latency=50.0)",
            "init_powering('phone', duration=3600)",
        ),
    ),
)

#: Additional demands exercising the rest of the service surface.
EXTRA_CASES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "Please track motion in the bedroom.",
        ("enable_sensing('bedroom', type='tracking', duration=3600)",),
    ),
    (
        "I need to send sensitive documents from my laptop.",
        ("protect_link('laptop')",),
    ),
    (
        "The wifi is bad in the office.",
        ("optimize_coverage('office', median_snr=25)",),
    ),
)


@dataclass
class Fig6Case:
    """One translated demand."""

    user_input: str
    expected: Tuple[str, ...]
    produced: List[ServiceCall]

    @property
    def produced_rendered(self) -> List[str]:
        """Calls as Python source lines."""
        return [c.render() for c in self.produced]

    @property
    def matches(self) -> bool:
        """Whether every expected call was produced."""
        produced = set(self.produced_rendered)
        return all(e in produced for e in self.expected)


@dataclass
class Fig6Result:
    """All translated cases."""

    cases: List[Fig6Case]

    @property
    def all_match(self) -> bool:
        """Whether every case produced its expected calls."""
        return all(c.matches for c in self.cases)

    def render(self) -> str:
        """Input/output transcript, Figure-6 style."""
        parts = ["Figure 6: LLM calling surface services", ""]
        for case in self.cases:
            parts.append(f"User Input: {case.user_input}")
            for line in case.produced_rendered:
                parts.append(f"  {line}")
            parts.append(f"  [matches expected: {case.matches}]")
            parts.append("")
        return "\n".join(parts)


def run(
    client: Optional[LLMClient] = None,
    include_extra: bool = True,
) -> Fig6Result:
    """Translate the paper's demands (and extras) to service calls."""
    translator = IntentTranslator(client or MockLLM())
    cases = []
    all_cases = PAPER_CASES + (EXTRA_CASES if include_extra else ())
    for user_input, expected in all_cases:
        produced = translator.translate(user_input)
        cases.append(
            Fig6Case(user_input=user_input, expected=expected, produced=produced)
        )
    return Fig6Result(cases=cases)
