"""The canonical §4 evaluation scenario: the two-room apartment.

Every experiment shares this deployment: an AP on the living-room wall,
the concrete partition with a doorway, and the three pre-determined
surface sites (passive backhaul, programmable steering, single-surface
relay).  Centralizing it keeps the per-figure modules about the
*experiment*, not the setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..channel.nodes import RadioNode
from ..channel.simulator import ChannelSimulator
from ..core.units import ghz
from ..em.noise import LinkBudget
from ..geometry.environment import Environment
from ..geometry.floorplans import ApartmentSites, apartment_sites, two_room_apartment
from ..hwmgr.devices import AccessPoint
from ..surfaces.catalog import GENERIC_PASSIVE_28, GENERIC_PROGRAMMABLE_28
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SurfaceSpec

#: Carrier used throughout §4: mmWave coverage extension at 28 GHz.
CARRIER_HZ = ghz(28.0)

#: AP antennas in the evaluation deployment.
AP_ANTENNAS = 4


@dataclass
class ApartmentScenario:
    """One ready-to-use apartment deployment.

    Attributes:
        env: the two-room environment.
        sites: canonical mounting sites.
        ap: the access point (array + budget).
        simulator: channel simulator bound to the environment.
        grid_spacing_m: evaluation-grid pitch in the target room.
    """

    env: Environment
    sites: ApartmentSites
    ap: AccessPoint
    simulator: ChannelSimulator
    grid_spacing_m: float = 0.7

    @property
    def budget(self) -> LinkBudget:
        """The AP's link budget."""
        return self.ap.budget

    def ap_node(self) -> RadioNode:
        """The AP as the channel simulator sees it."""
        return self.ap.node()

    def bedroom_grid(self, z: float = 1.0) -> np.ndarray:
        """Evaluation points across the target room."""
        return self.env.room("bedroom").grid(self.grid_spacing_m, z=z)

    # ------------------------------------------------------------------
    # panel factories at the canonical sites
    # ------------------------------------------------------------------

    def passive_panel(
        self, rows: int, cols: Optional[int] = None, panel_id: str = "passive"
    ) -> SurfacePanel:
        """A passive sheet at the living-room backhaul site."""
        return SurfacePanel(
            panel_id,
            GENERIC_PASSIVE_28,
            rows,
            cols if cols is not None else rows,
            self.sites.passive_center,
            self.sites.passive_normal,
        )

    def programmable_panel(
        self, rows: int, cols: Optional[int] = None, panel_id: str = "prog"
    ) -> SurfacePanel:
        """A programmable panel at the bedroom steering site."""
        return SurfacePanel(
            panel_id,
            GENERIC_PROGRAMMABLE_28,
            rows,
            cols if cols is not None else rows,
            self.sites.programmable_center,
            self.sites.programmable_normal,
        )

    def relay_panel(
        self,
        rows: int,
        cols: Optional[int] = None,
        spec: SurfaceSpec = GENERIC_PROGRAMMABLE_28,
        panel_id: str = "relay",
    ) -> SurfacePanel:
        """A panel at the single-surface relay site (Figs. 2 and 5)."""
        return SurfacePanel(
            panel_id,
            spec,
            rows,
            cols if cols is not None else rows,
            self.sites.single_surface_center,
            self.sites.single_surface_normal,
        )


def build_scenario(
    grid_spacing_m: float = 0.7,
    tx_power_dbm: float = 20.0,
    bandwidth_hz: float = 400e6,
) -> ApartmentScenario:
    """Construct the canonical evaluation scenario."""
    env = two_room_apartment()
    sites = apartment_sites()
    ap = AccessPoint(
        "ap",
        sites.ap_position,
        AP_ANTENNAS,
        CARRIER_HZ,
        boresight=(1.0, 0.3, 0.0),
        budget=LinkBudget(
            tx_power_dbm=tx_power_dbm, bandwidth_hz=bandwidth_hz
        ),
    )
    simulator = ChannelSimulator(env, CARRIER_HZ)
    return ApartmentScenario(
        env=env,
        sites=sites,
        ap=ap,
        simulator=simulator,
        grid_spacing_m=grid_spacing_m,
    )
