"""Degraded-mode recovery: two of five panels die mid-run.

The robustness scenario behind the fault-injection subsystem: the
apartment's bedroom is covered by *five* programmable panels sharing a
coverage task.  At ``FAULT_TIME_S`` a seeded
:class:`~repro.faults.FaultInjector` kills two of them (power loss /
bricked controllers).  The SurfOS daemon sees the degradation as a
:class:`~repro.runtime.SurfaceDegraded` event and re-optimizes the
three survivors around the dead sheets — which stay in the channel
model (they are still mounted) but scatter nothing.

Expected shape: coverage drops when the panels die, then recovers to
within :data:`RECOVERY_BOUND_DB` of the pre-fault median SNR, with zero
unhandled exceptions along the way.  The whole run is deterministic per
seed, so CI runs it twice and diffs the telemetry exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..core.kernel import SurfOS
from ..faults import FaultInjector
from ..geometry.floorplans import apartment_sites, two_room_apartment
from ..hwmgr.devices import AccessPoint
from ..orchestrator.optimizers import Adam, Optimizer
from ..surfaces.catalog import GENERIC_PROGRAMMABLE_28
from ..surfaces.panel import SurfacePanel
from .result import ExperimentResultBase
from .scenario import CARRIER_HZ

#: Panels in the bedroom array.
PANEL_COUNT = 5

#: Elements per panel side (small keeps the scenario CI-fast).
PANEL_SIZE = 10

#: Simulated time the two panels die (seconds).
FAULT_TIME_S = 1.0

#: Which panels die mid-run.
DEFAULT_KILL: Tuple[str, ...] = ("rs-2", "rs-4")

#: The stated recovery bound: after re-optimizing around the dead
#: panels, the bedroom's median SNR must sit within this many dB of its
#: pre-fault value.  Losing 2/5 of the aperture caps coherent gain at
#: 20·log10(3/5) ≈ −4.4 dB in the fully-coherent limit; re-optimizing
#: the three survivors keeps the *median* loss inside 4 dB.
RECOVERY_BOUND_DB = 4.0

#: Mounting sites: three panels on the bedroom's north wall, two on the
#: east wall, all facing into the room (the canonical programmable and
#: single-surface sites plus offsets along the same walls).
_NORTH_XS = (5.8, 6.6, 7.4)
_EAST_YS = (2.6, 1.4)


def panel_sites() -> List[Tuple[str, Tuple[float, float, float], Tuple[float, float, float]]]:
    """The five ``(panel_id, center, normal)`` mounting sites."""
    sites = []
    for i, x in enumerate(_NORTH_XS):
        sites.append(((f"rs-{i + 1}"), (x, 3.98, 1.8), (0.0, -1.0, 0.0)))
    for j, y in enumerate(_EAST_YS):
        sites.append(((f"rs-{len(_NORTH_XS) + j + 1}"), (8.48, y, 1.8), (-1.0, 0.0, 0.0)))
    return sites


@dataclass
class DegradationResult(ExperimentResultBase):
    """Outcome of one degraded-mode recovery run.

    Attributes:
        pre_fault_median_snr_db: bedroom median SNR before the fault.
        degraded_median_snr_db: median SNR right after the panels died,
            before the daemon's re-optimization went live.
        recovered_median_snr_db: median SNR after recovery.
        killed: ids of the panels that died.
        fault_time_s: simulated time the fault hit.
        reaction_latency_s: detection → configurations-live latency of
            the recovery reaction (simulated seconds).
        recovery_bound_db: the stated bound the recovery is judged by.
        reoptimize_failures: daemon re-optimizations that failed (must
            be zero — the degraded-mode guarantee).
        faults_injected: fault activations recorded by the injector.
        seed: the run's root seed.
    """

    pre_fault_median_snr_db: float
    degraded_median_snr_db: float
    recovered_median_snr_db: float
    killed: Tuple[str, ...]
    fault_time_s: float
    reaction_latency_s: float
    recovery_bound_db: float
    reoptimize_failures: int
    faults_injected: int
    seed: int

    @property
    def recovery_gap_db(self) -> float:
        """How far below the pre-fault median the recovered median sits."""
        return self.pre_fault_median_snr_db - self.recovered_median_snr_db

    @property
    def recovered_within_bound(self) -> bool:
        """Whether recovery met the stated bound."""
        return self.recovery_gap_db <= self.recovery_bound_db

    def summary(self) -> Dict[str, object]:
        """Flat form for JSON artifacts and the CI gate."""
        return {
            "seed": self.seed,
            "killed": list(self.killed),
            "fault_time_s": round(self.fault_time_s, 6),
            "pre_fault_median_snr_db": round(
                self.pre_fault_median_snr_db, 4
            ),
            "degraded_median_snr_db": round(self.degraded_median_snr_db, 4),
            "recovered_median_snr_db": round(
                self.recovered_median_snr_db, 4
            ),
            "recovery_gap_db": round(self.recovery_gap_db, 4),
            "recovery_bound_db": self.recovery_bound_db,
            "reaction_latency_s": round(self.reaction_latency_s, 6),
            "reoptimize_failures": self.reoptimize_failures,
            "faults_injected": self.faults_injected,
            "recovered_within_bound": self.recovered_within_bound,
        }

    def gate_failures(self) -> List[str]:
        """Recovery must land within bound with zero failed solves."""
        failures = []
        if not self.recovered_within_bound:
            failures.append(
                f"recovery gap {self.recovery_gap_db:.1f} dB exceeds "
                f"bound {self.recovery_bound_db:.1f} dB"
            )
        if self.reoptimize_failures:
            failures.append(
                f"{self.reoptimize_failures} reoptimize failures during "
                f"recovery (degraded-mode guarantee requires zero)"
            )
        return failures

    def render(self) -> str:
        """Human-readable run summary."""
        rows = [
            ("pre-fault", f"{self.pre_fault_median_snr_db:.1f}", "5/5 panels"),
            (
                "degraded",
                f"{self.degraded_median_snr_db:.1f}",
                f"{', '.join(self.killed)} dead",
            ),
            (
                "recovered",
                f"{self.recovered_median_snr_db:.1f}",
                f"gap {self.recovery_gap_db:.1f} dB "
                f"(bound {self.recovery_bound_db:.1f})",
            ),
        ]
        table = render_table(
            ("phase", "median SNR (dB)", "notes"),
            rows,
            title=(
                f"Degraded-mode recovery: {len(self.killed)}/{PANEL_COUNT} "
                f"panels die at t={self.fault_time_s:g}s (seed {self.seed})"
            ),
        )
        verdict = "within bound" if self.recovered_within_bound else "OUT OF BOUND"
        return (
            f"{table}\n"
            f"reaction latency: {self.reaction_latency_s:.3f} s (simulated); "
            f"faults injected: {self.faults_injected}; "
            f"reoptimize failures: {self.reoptimize_failures}; "
            f"recovery {verdict}"
        )


def build_system(
    seed: int = 0,
    panel_size: int = PANEL_SIZE,
    optimizer: Optional[Optimizer] = None,
) -> SurfOS:
    """The five-panel apartment deployment with a fault injector attached."""
    env = two_room_apartment()
    sites = apartment_sites()
    system = SurfOS(
        env,
        frequency_hz=CARRIER_HZ,
        optimizer=optimizer or Adam(max_iterations=60),
        grid_spacing_m=1.0,
        fault_injector=FaultInjector(seed=seed),
    )
    system.add_access_point(
        AccessPoint(
            "ap", sites.ap_position, 4, CARRIER_HZ, boresight=(1.0, 0.3, 0.0)
        )
    )
    for panel_id, center, normal in panel_sites():
        system.add_surface(
            SurfacePanel(
                panel_id,
                GENERIC_PROGRAMMABLE_28,
                panel_size,
                panel_size,
                np.array(center),
                np.array(normal),
            )
        )
    return system.boot(observe_room="bedroom")


def run(
    seed: int = 0,
    fault_time_s: float = FAULT_TIME_S,
    kill: Sequence[str] = DEFAULT_KILL,
    panel_size: int = PANEL_SIZE,
    steps: int = 6,
    dt: float = 0.5,
    recovery_bound_db: float = RECOVERY_BOUND_DB,
    optimizer: Optional[Optimizer] = None,
    system: Optional[SurfOS] = None,
) -> DegradationResult:
    """Kill ``kill`` mid-run and measure the daemon's recovery."""
    system = system or build_system(
        seed=seed, panel_size=panel_size, optimizer=optimizer
    )
    injector = system.hardware.faults
    for panel_id in kill:
        injector.kill_panel(panel_id, at_time=fault_time_s)

    system.orchestrator.optimize_coverage("bedroom")
    system.reoptimize()
    pre_fault = float(np.median(system.daemon.observe()))

    degraded = pre_fault
    recovered = pre_fault
    reaction_latency_s = 0.0
    for _ in range(steps):
        record = system.daemon.step(dt=dt)
        if record is not None and record.trigger == "surface-degraded":
            degraded = record.median_snr_before_db
            recovered = record.median_snr_after_db
            reaction_latency_s = record.reaction_latency_s
    if system.daemon.clock.now <= fault_time_s:
        raise ValueError(
            f"run too short: {steps} steps of {dt}s never reached the "
            f"fault at t={fault_time_s}s"
        )

    return DegradationResult(
        pre_fault_median_snr_db=pre_fault,
        degraded_median_snr_db=degraded,
        recovered_median_snr_db=recovered,
        killed=tuple(kill),
        fault_time_s=fault_time_s,
        reaction_latency_s=reaction_latency_s,
        recovery_bound_db=recovery_bound_db,
        reoptimize_failures=system.daemon.reoptimize_failures,
        faults_injected=len(injector.history),
        seed=seed,
    )
