"""Fleet scenario: three zones, one global broker, a roaming client.

A three-shard fleet (zones ``z1``/``z2``/``z3``) serves a seeded
workload of application demands whose client ids carry zone tags
(``"z2:cl-4"``).  Mid-run the scenario exercises the two fleet-level
control paths the single-environment stack cannot express:

* **Quarantine + spill** — one shard is quarantined partway through;
  requests that would have landed there spill to fallback shards, and
  the SLO gate asserts no interactive (latency-sensitive) request is
  dropped.
* **Roaming handoff** — one client "walks" from its home zone to a
  neighbour; its application is handed off between shards without
  losing service (``fleet.rebalanced``).

Everything runs on the shared sim clock with seeded arrivals, so the
same seed produces byte-identical sim-only telemetry exports at any
evaluation worker count — the CLI ``fleet`` command and the
``fleet-smoke`` CI job diff exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..analysis.tables import render_table
from ..broker.calls import reset_request_counter
from ..broker.demands import ApplicationDemand
from ..broker.handle import HandleStatus, ServiceHandle
from ..fleet import (
    CongestionAware,
    FleetBroker,
    LeastLoaded,
    PlacementStrategy,
    ShardSpec,
    StaticZoneMap,
)
from ..orchestrator.tasks import reset_task_counter
from .result import ExperimentResultBase

#: Elements per panel side — small: three full SurfOS stacks boot here.
PANEL_SIZE = 6

#: Default fleet size (zones z1..zN).
SHARDS = 3

#: Application archetypes cycled across arriving clients.  Cloud gaming
#: carries a sub-20 ms bound, so it classes INTERACTIVE in the shard
#: queues — the SLO gate tracks exactly these requests.
_APP_CYCLE = ("video_streaming", "cloud_gaming", "file_transfer")

#: Per-archetype demand parameters (throughput Mb/s, latency ms, priority).
_APP_PARAMS = {
    "video_streaming": (25.0, None, 6),
    "cloud_gaming": (30.0, 10.0, 8),
    "file_transfer": (120.0, None, 3),
}

#: Mean gap between arrivals on the sim clock (seconds).
_ARRIVAL_GAP_S = 0.25

#: Tick step of the fleet engine.
_TICK_DT_S = 0.1


def make_strategy(name: str, shards: int) -> PlacementStrategy:
    """Build a placement strategy by CLI name."""
    if name == "zone":
        zones = {f"z{i}": f"z{i}" for i in range(1, shards + 1)}
        return StaticZoneMap(zones)
    if name == "least-loaded":
        return LeastLoaded()
    if name == "congestion":
        return CongestionAware()
    raise ValueError(
        f"unknown strategy {name!r} (zone, least-loaded, congestion)"
    )


def build_fleet(
    shards: int = SHARDS,
    seed: int = 0,
    strategy: str = "congestion",
    panel_size: int = PANEL_SIZE,
    queue_capacity: int = 64,
    parallelism: int = 1,
    backend: str = "thread",
    scene: str = "two-room",
) -> FleetBroker:
    """A seeded N-shard fleet with reset id counters (determinism)."""
    reset_task_counter()
    reset_request_counter()
    specs = [
        ShardSpec(
            shard_id=f"z{i}",
            zone=f"z{i}",
            seed=seed + i,
            panel_size=panel_size,
            queue_capacity=queue_capacity,
            scene=scene,
        )
        for i in range(1, shards + 1)
    ]
    return FleetBroker(
        specs,
        strategy=make_strategy(strategy, shards),
        parallelism=parallelism,
        backend=backend,
    )


def _demands(
    requests: int, shards: int, seed: int
) -> List[ApplicationDemand]:
    """Seeded workload: each request homed to a seeded zone."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(requests):
        app = _APP_CYCLE[i % len(_APP_CYCLE)]
        throughput, latency, priority = _APP_PARAMS[app]
        zone = int(rng.integers(1, shards + 1))
        out.append(
            ApplicationDemand(
                app_name=app,
                client_id=f"z{zone}:cl-{i}",
                room_id="bedroom",
                throughput_mbps=throughput,
                latency_ms=latency,
                priority=priority,
            )
        )
    return out


@dataclass
class FleetResult(ExperimentResultBase):
    """Outcome of one fleet scenario run."""

    shards: int
    requests: int
    seed: int
    strategy: str
    #: Final handle status value per request key, in submission order.
    statuses: Dict[str, str] = field(default_factory=dict)
    #: Shard id each request landed on ("" = rejected at fleet level).
    placements: Dict[str, str] = field(default_factory=dict)
    routed: int = 0
    spilled: int = 0
    rejected: int = 0
    rebalanced: int = 0
    interactive_total: int = 0
    interactive_served: int = 0
    quarantined_shard: str = ""
    handoff_key: str = ""

    @property
    def served(self) -> int:
        """Requests that reached RUNNING (or completed)."""
        return sum(
            1
            for status in self.statuses.values()
            if status in ("running", "completed")
        )

    @property
    def slo_met(self) -> bool:
        """The gate: every interactive request was served, none dropped."""
        return self.interactive_served == self.interactive_total

    def gate_failures(self) -> List[str]:
        """Quarantine spill must never drop interactive requests."""
        if self.slo_met:
            return []
        return [
            f"interactive SLO missed ({self.interactive_served}/"
            f"{self.interactive_total} served)"
        ]

    def summary(self) -> Dict[str, object]:
        """Flat form for JSON artifacts and the CI gate."""
        return {
            "shards": self.shards,
            "requests": self.requests,
            "seed": self.seed,
            "strategy": self.strategy,
            "served": self.served,
            "routed": self.routed,
            "spilled": self.spilled,
            "rejected": self.rejected,
            "rebalanced": self.rebalanced,
            "interactive_total": self.interactive_total,
            "interactive_served": self.interactive_served,
            "slo_met": self.slo_met,
            "quarantined_shard": self.quarantined_shard,
        }

    def render(self) -> str:
        """Human-readable per-shard placement table plus the gate line."""
        per_shard: Dict[str, int] = {}
        for shard_id in self.placements.values():
            if shard_id:
                per_shard[shard_id] = per_shard.get(shard_id, 0) + 1
        rows = [
            (
                sid,
                str(count),
                "quarantined" if sid == self.quarantined_shard else "",
            )
            for sid, count in sorted(per_shard.items())
        ]
        table = render_table(
            ("shard", "placed", "note"),
            rows,
            title=(
                f"Fleet: {self.requests} requests over {self.shards} "
                f"shards, strategy {self.strategy} (seed {self.seed})"
            ),
        )
        gate = "met" if self.slo_met else "MISSED"
        return (
            f"{table}\n"
            f"served {self.served}/{self.requests}; "
            f"spilled {self.spilled}, rejected {self.rejected}, "
            f"rebalanced {self.rebalanced}\n"
            f"interactive SLO {gate}: "
            f"{self.interactive_served}/{self.interactive_total} served"
        )


def run(
    shards: int = SHARDS,
    requests: int = 12,
    seed: int = 0,
    strategy: str = "congestion",
    panel_size: int = PANEL_SIZE,
    parallelism: int = 1,
    backend: str = "thread",
    jsonl: Optional[str] = None,
    fleet: Optional[FleetBroker] = None,
    horizon_s: float = 60.0,
    scene: str = "two-room",
) -> FleetResult:
    """The fleet scenario: seeded arrivals, mid-run quarantine, handoff."""
    owns_fleet = fleet is None
    if fleet is None:
        fleet = build_fleet(
            shards=shards,
            seed=seed,
            strategy=strategy,
            panel_size=panel_size,
            parallelism=parallelism,
            backend=backend,
            scene=scene,
        )
    demands = _demands(requests, shards, seed)
    rng = np.random.default_rng(seed + 17)
    gaps = rng.exponential(_ARRIVAL_GAP_S, size=requests)
    arrivals = np.cumsum(gaps) - gaps[0]
    handles: Dict[str, ServiceHandle] = {}

    def _submit(demand: ApplicationDemand) -> None:
        handles[f"{demand.app_name}@{demand.client_id}"] = fleet.submit(
            demand
        )

    for at, demand in zip(arrivals, demands):
        fleet.clock.schedule(float(at), lambda d=demand: _submit(d))

    # Mid-run events on the shared clock: quarantine the last shard
    # once a third of the trace is in, hand the first request's client
    # over to the next zone at the two-thirds mark.
    quarantined = f"z{shards}" if shards > 1 else ""
    if quarantined:
        fleet.clock.schedule(
            float(arrivals[requests // 3]),
            lambda: fleet.quarantine_shard(quarantined, reason="scenario"),
        )
    handoff_key = ""
    if shards > 1 and requests:
        first = demands[0]
        handoff_key = f"{first.app_name}@{first.client_id}"

        def _handoff() -> None:
            # The roaming client left wherever it is currently served;
            # move it to the first other healthy shard.
            handle = handles.get(handoff_key)
            if handle is None or handle.status is not HandleStatus.RUNNING:
                return
            current = handle.routing.shard_id if handle.routing else ""
            targets = [
                f"z{i}"
                for i in range(1, shards + 1)
                if f"z{i}" not in (current, quarantined)
            ]
            if targets:
                handles[handoff_key] = fleet.handoff(
                    first.app_name, first.client_id, targets[0]
                )

        fleet.clock.schedule(
            float(arrivals[(2 * requests) // 3]) + _TICK_DT_S, _handoff
        )

    while fleet.clock.now < horizon_s:
        fleet.tick(_TICK_DT_S)
        settled = sum(
            1
            for handle in handles.values()
            if handle.status
            not in (HandleStatus.QUEUED, HandleStatus.ADMITTED)
        )
        if len(handles) >= requests and settled >= requests:
            if not any(
                shard.pipeline.queue.depth
                for shard in fleet.shards.values()
            ):
                break

    result = FleetResult(
        shards=shards,
        requests=requests,
        seed=seed,
        strategy=strategy,
        quarantined_shard=quarantined,
        handoff_key=handoff_key,
    )
    for demand in demands:
        key = f"{demand.app_name}@{demand.client_id}"
        handle = handles.get(key)
        status = handle.status.value if handle is not None else "missing"
        result.statuses[key] = status
        routing = getattr(handle, "routing", None)
        result.placements[key] = routing.shard_id if routing else ""
        if demand.latency_sensitive:
            result.interactive_total += 1
            if status in ("running", "completed"):
                result.interactive_served += 1
    telemetry = fleet.telemetry
    result.routed = int(telemetry.get_counter("fleet.routed"))
    result.spilled = int(telemetry.get_counter("fleet.spilled"))
    result.rejected = int(telemetry.get_counter("fleet.rejected"))
    result.rebalanced = int(telemetry.get_counter("fleet.rebalanced"))
    if jsonl:
        fleet.export_jsonl(jsonl, sim_only=True)
    if owns_fleet:
        fleet.close()
    return result
