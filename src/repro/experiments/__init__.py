"""Paper-artifact reproductions: one module per table/figure.

* :mod:`.table1` — the hardware-design catalog table.
* :mod:`.fig2` — coverage-optimal configuration disrupting localization.
* :mod:`.fig4` — passive/programmable/hybrid cost & size trade-offs.
* :mod:`.fig5` — multitasking CDFs (joint localization + coverage).
* :mod:`.fig6` — LLM translation of user demands into service calls.
* :mod:`.degradation` — degraded-mode recovery: two of five panels die
  mid-run; the daemon re-optimizes around them.
* :mod:`.arrivals` — open-loop arrival benchmark: serial admission vs
  the concurrent request pipeline (batched + coalesced).
* :mod:`.fleet` — three zones behind one global broker: spill around a
  quarantined shard, roaming-client handoff, deterministic routing.
* :mod:`.mobility` — continuous motion + churn scenario with
  speculative channel-leg prefetch from exact ``peek(dt)`` predictions.

Figures 1 and 3 of the paper are architecture diagrams; their
"reproduction" is the system itself (see DESIGN.md).
"""

from . import (
    arrivals,
    degradation,
    fig2,
    fig4,
    fig5,
    fig6,
    fleet,
    mobility,
    table1,
)
from .scenario import ApartmentScenario, CARRIER_HZ, build_scenario

__all__ = [
    "ApartmentScenario",
    "CARRIER_HZ",
    "arrivals",
    "build_scenario",
    "degradation",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fleet",
    "mobility",
    "table1",
]
