"""Figure 4 — leveraging hardware heterogeneity (cost/size trade-offs).

The paper's hybrid study: extend mmWave coverage into the bedroom with
(i) a passive surface alone, (ii) a programmable surface alone, or
(iii) a hybrid — a passive sheet as a narrow-beam backhaul relaying the
AP beam to a small programmable panel that dynamically steers it across
the room.  For each strategy we sweep hardware size, measure the median
target-room SNR, and report the cost (Fig. 4b) and panel area (Fig. 4c)
needed to reach each SNR level.

Expected shape (the paper's): the hybrid needs a fraction of the
passive-only *size* and of the programmable-only *cost* for comparable
median SNR, because it exploits both designs' advantages at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.heatmap import Heatmap
from ..analysis.tables import render_table
from ..core.configuration import SurfaceConfiguration
from ..em.steering import focus_configuration
from ..orchestrator.optimizers import Adam, Optimizer
from ..services import connectivity
from ..surfaces.panel import SurfacePanel
from .scenario import ApartmentScenario, CARRIER_HZ, build_scenario

#: Size sweeps (square panels, elements per side).
PASSIVE_ONLY_SIZES = (24, 36, 48, 72, 100)
PROGRAMMABLE_ONLY_SIZES = (8, 12, 16, 22, 30)
HYBRID_SIZES = ((32, 8), (48, 10), (64, 12), (80, 16), (96, 20))

#: SNR levels (dB) the Fig. 4b/4c curves are tabulated at.
TARGET_SNRS_DB = (10.0, 15.0, 20.0, 25.0)


@dataclass(frozen=True)
class SweepPoint:
    """One strategy/size measurement."""

    strategy: str
    sizes: Tuple[int, ...]          # elements per side, per panel
    total_elements: int
    cost_usd: float
    area_m2: float
    median_snr_db: float


@dataclass
class Fig4Result:
    """All sweep points plus the per-target summaries."""

    points: List[SweepPoint]
    heatmaps: Dict[str, Heatmap]

    def strategies(self) -> List[str]:
        """Strategy names in presentation order."""
        ordered = []
        for p in self.points:
            if p.strategy not in ordered:
                ordered.append(p.strategy)
        return ordered

    def cheapest_reaching(
        self, strategy: str, target_snr_db: float
    ) -> Optional[SweepPoint]:
        """Lowest-cost sweep point of a strategy reaching a target SNR."""
        candidates = [
            p
            for p in self.points
            if p.strategy == strategy and p.median_snr_db >= target_snr_db
        ]
        return min(candidates, key=lambda p: p.cost_usd) if candidates else None

    def smallest_reaching(
        self, strategy: str, target_snr_db: float
    ) -> Optional[SweepPoint]:
        """Smallest-area sweep point of a strategy reaching a target SNR."""
        candidates = [
            p
            for p in self.points
            if p.strategy == strategy and p.median_snr_db >= target_snr_db
        ]
        return min(candidates, key=lambda p: p.area_m2) if candidates else None

    def render_sweep(self) -> str:
        """The raw sweep as a table."""
        rows = [
            (
                p.strategy,
                "x".join(str(s) for s in p.sizes),
                p.total_elements,
                f"${p.cost_usd:,.2f}",
                f"{p.area_m2 * 1e4:.0f} cm^2",
                f"{p.median_snr_db:.1f}",
            )
            for p in self.points
        ]
        return render_table(
            ("strategy", "panel sides", "elements", "cost", "area", "median SNR (dB)"),
            rows,
            title="Figure 4 sweep: strategy/size vs median target-room SNR",
        )

    def render_targets(self) -> str:
        """Fig. 4b/4c: cost and size needed per median-SNR level."""
        rows = []
        for target in TARGET_SNRS_DB:
            row = [f"{target:.0f} dB"]
            for strategy in self.strategies():
                cheap = self.cheapest_reaching(strategy, target)
                small = self.smallest_reaching(strategy, target)
                if cheap is None:
                    row.append("unreached")
                else:
                    row.append(
                        f"${cheap.cost_usd:,.0f} / {small.area_m2 * 1e4:.0f} cm^2"
                    )
            rows.append(row)
        return render_table(
            ["median SNR"] + [f"{s} (cost/area)" for s in self.strategies()],
            rows,
            title="Figures 4b+4c: cost and area to reach a median SNR",
        )


def _panel_metrics(panels: Sequence[SurfacePanel]) -> Tuple[int, float, float]:
    total = sum(p.num_elements for p in panels)
    cost = sum(p.cost_usd for p in panels)
    area = sum(p.area_m2 for p in panels)
    return total, cost, area


def _median_snr_static(
    scenario: ApartmentScenario,
    panel: SurfacePanel,
    points: np.ndarray,
    optimizer: Optimizer,
    seed: int,
) -> Tuple[float, np.ndarray]:
    """Best static (single-configuration) coverage for one panel."""
    model = scenario.simulator.build(scenario.ap_node(), points, [panel])
    form = model.linear_form(panel.panel_id, {})
    objective = connectivity.coverage_objective(form, budget=scenario.budget)
    rng = np.random.default_rng(seed)
    # Warm start: focus at the room center, then refine.
    center = points.mean(axis=0)
    warm = focus_configuration(
        panel.element_positions(),
        panel.shape,
        scenario.ap.position,
        center,
        CARRIER_HZ,
    ).flat_phases()
    result = optimizer.optimize(objective, warm)
    x = np.exp(1j * result.phases)
    snrs = connectivity.snr_map_db(model, {panel.panel_id: x}, scenario.budget)
    return float(np.median(snrs)), snrs


def _median_snr_steered(
    scenario: ApartmentScenario,
    panels: Sequence[SurfacePanel],
    steer_panel: SurfacePanel,
    steer_source: np.ndarray,
    fixed_configs: Dict[str, np.ndarray],
    points: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """Per-point dynamic steering: best stored beam per location.

    Models the programmable panel's data-plane behavior: one focus
    configuration per location (the beam codebook), selected by
    endpoint feedback; each grid point is evaluated under its beam.
    """
    model = scenario.simulator.build(scenario.ap_node(), points, panels)
    snrs = np.zeros(points.shape[0])
    for k in range(points.shape[0]):
        beam = focus_configuration(
            steer_panel.element_positions(),
            steer_panel.shape,
            steer_source,
            points[k],
            CARRIER_HZ,
        )
        configs = dict(fixed_configs)
        configs[steer_panel.panel_id] = (
            steer_panel.feasible(beam).coefficients().reshape(-1)
        )
        h = model.evaluate(configs)[k]
        snrs[k] = scenario.budget.snr_db(float(np.sum(np.abs(h) ** 2)))
    return float(np.median(snrs)), snrs


def run(
    scenario: Optional[ApartmentScenario] = None,
    optimizer: Optional[Optimizer] = None,
    passive_sizes: Sequence[int] = PASSIVE_ONLY_SIZES,
    programmable_sizes: Sequence[int] = PROGRAMMABLE_ONLY_SIZES,
    hybrid_sizes: Sequence[Tuple[int, int]] = HYBRID_SIZES,
    seed: int = 0,
) -> Fig4Result:
    """Run the three-strategy sweep."""
    scenario = scenario or build_scenario(grid_spacing_m=0.7)
    optimizer = optimizer or Adam(max_iterations=150, learning_rate=0.2)
    points = scenario.bedroom_grid()
    results: List[SweepPoint] = []
    heatmaps: Dict[str, Heatmap] = {}

    for size in passive_sizes:
        # Passive sheets mount on the large living-room wall (the only
        # spot that fits square meters of printed surface); they must
        # flood the bedroom through the doorway wedge.
        panel = scenario.passive_panel(size, panel_id="passive-only")
        median, snrs = _median_snr_static(
            scenario, panel, points, optimizer, seed
        )
        total, cost, area = _panel_metrics([panel])
        results.append(
            SweepPoint("passive-only", (size,), total, cost, area, median)
        )
        heatmaps[f"passive-only-{size}"] = Heatmap(points, snrs)

    for size in programmable_sizes:
        panel = scenario.relay_panel(size, panel_id="prog-only")
        median, snrs = _median_snr_steered(
            scenario,
            [panel],
            panel,
            scenario.ap.position,
            {},
            points,
        )
        total, cost, area = _panel_metrics([panel])
        results.append(
            SweepPoint("programmable-only", (size,), total, cost, area, median)
        )
        heatmaps[f"programmable-only-{size}"] = Heatmap(points, snrs)

    for passive_size, prog_size in hybrid_sizes:
        passive = scenario.passive_panel(passive_size)
        prog = scenario.programmable_panel(prog_size)
        # The passive backhaul: a fabricated lens focusing the AP beam
        # onto the programmable panel.
        backhaul = focus_configuration(
            passive.element_positions(),
            passive.shape,
            scenario.ap.position,
            prog.center,
            CARRIER_HZ,
        )
        passive.actuate(backhaul)
        fixed = {
            passive.panel_id: passive.configuration.coefficients().reshape(-1)
        }
        median, snrs = _median_snr_steered(
            scenario,
            [passive, prog],
            prog,
            passive.center,
            fixed,
            points,
        )
        total, cost, area = _panel_metrics([passive, prog])
        results.append(
            SweepPoint(
                "hybrid", (passive_size, prog_size), total, cost, area, median
            )
        )
        heatmaps[f"hybrid-{passive_size}x{prog_size}"] = Heatmap(points, snrs)

    return Fig4Result(points=results, heatmaps=heatmaps)
