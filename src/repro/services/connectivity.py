"""Connectivity services: coverage optimization and link enhancement.

These wrap :class:`CoverageObjective` with goal handling (target SNR /
throughput) and provide the evaluation helpers the orchestrator uses to
report achieved metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..channel.model import ChannelModel, LinearChannelForm
from ..em.noise import LinkBudget, shannon_required_snr_db
from ..orchestrator.objectives import CoverageGoal, CoverageObjective


def coverage_objective(
    form: LinearChannelForm,
    amplitudes: Optional[np.ndarray] = None,
    budget: Optional[LinkBudget] = None,
    weights: Optional[np.ndarray] = None,
) -> CoverageObjective:
    """The coverage-task loss over a linear channel form."""
    return CoverageObjective(
        form,
        amplitudes=amplitudes,
        goal=CoverageGoal(budget=budget or LinkBudget(), weights=weights),
    )


def link_objective(
    form: LinearChannelForm,
    point_index: int,
    amplitudes: Optional[np.ndarray] = None,
    budget: Optional[LinkBudget] = None,
) -> CoverageObjective:
    """An ``enhance_link()`` loss: all weight on one endpoint."""
    weights = np.zeros(form.num_points)
    weights[point_index] = 1.0
    return coverage_objective(
        form, amplitudes=amplitudes, budget=budget, weights=weights
    )


def snr_map_db(
    model: ChannelModel,
    configs: Mapping[str, np.ndarray],
    budget: LinkBudget,
) -> np.ndarray:
    """Per-point SNR (dB) with transmit MRT, for live configurations."""
    h = model.evaluate(configs)
    gains = np.sum(np.abs(h) ** 2, axis=1)
    return np.array([budget.snr_db(g) for g in gains])


def rss_map_dbm(
    model: ChannelModel,
    configs: Mapping[str, np.ndarray],
    budget: LinkBudget,
) -> np.ndarray:
    """Per-point RSS (dBm) with transmit MRT."""
    h = model.evaluate(configs)
    gains = np.sum(np.abs(h) ** 2, axis=1)
    return np.array([budget.rss_dbm(g) for g in gains])


def required_snr_for_throughput(
    throughput_bps: float, budget: LinkBudget, margin_db: float = 3.0
) -> float:
    """Target SNR (dB) for an application throughput, plus link margin."""
    return shannon_required_snr_db(throughput_bps, budget.bandwidth_hz) + margin_db


@dataclass(frozen=True)
class CoverageReport:
    """Achieved coverage statistics over an evaluation grid."""

    median_snr_db: float
    p10_snr_db: float
    min_snr_db: float
    max_snr_db: float
    fraction_above_target: float

    @classmethod
    def from_snrs(
        cls, snrs_db: Sequence[float], target_snr_db: Optional[float] = None
    ) -> "CoverageReport":
        snrs = np.asarray(snrs_db, dtype=float)
        if snrs.size == 0:
            raise ValueError("empty SNR set")
        target = -np.inf if target_snr_db is None else target_snr_db
        return cls(
            median_snr_db=float(np.median(snrs)),
            p10_snr_db=float(np.percentile(snrs, 10)),
            min_snr_db=float(snrs.min()),
            max_snr_db=float(snrs.max()),
            fraction_above_target=float(np.mean(snrs >= target)),
        )
