"""Security service: protect a link against an eavesdropper.

Protego-style physical-layer protection: the surface maximizes capacity
at the legitimate endpoint while *nulling* the signal toward a known or
suspected eavesdropper location.  The loss is a weighted combination of
the legitimate coverage loss and the (negated) eavesdropper coverage
loss; the achieved metric is the secrecy margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..channel.model import ChannelModel, LinearChannelForm
from ..core.errors import ServiceError
from ..em.noise import LinkBudget
from ..orchestrator.objectives import (
    CoverageGoal,
    CoverageObjective,
    JointObjective,
)


def security_objective(
    form: LinearChannelForm,
    legit_indices: Sequence[int],
    eavesdropper_indices: Sequence[int],
    amplitudes: Optional[np.ndarray] = None,
    budget: Optional[LinkBudget] = None,
    nulling_weight: float = 1.0,
) -> JointObjective:
    """Loss = legit coverage loss − ``nulling_weight`` × eve coverage loss.

    Minimizing it maximizes legitimate capacity while minimizing the
    eavesdropper's.  ``legit_indices`` and ``eavesdropper_indices``
    select rows of the shared linear form (the model must be built with
    both endpoints among its points).
    """
    budget = budget or LinkBudget()
    k = form.num_points
    legit = np.zeros(k)
    legit[np.asarray(legit_indices, dtype=int)] = 1.0
    eve = np.zeros(k)
    eve[np.asarray(eavesdropper_indices, dtype=int)] = 1.0
    if np.any(legit * eve):
        raise ServiceError("a point cannot be both legitimate and eavesdropper")
    if nulling_weight <= 0:
        raise ServiceError("nulling_weight must be positive")
    legit_obj = CoverageObjective(
        form, amplitudes=amplitudes, goal=CoverageGoal(budget, weights=legit)
    )
    eve_obj = CoverageObjective(
        form, amplitudes=amplitudes, goal=CoverageGoal(budget, weights=eve)
    )
    return JointObjective([(legit_obj, 1.0), (eve_obj, -nulling_weight)])


@dataclass(frozen=True)
class SecrecyReport:
    """Achieved secrecy statistics."""

    legit_snr_db: float
    eavesdropper_snr_db: float

    @property
    def secrecy_margin_db(self) -> float:
        """SNR advantage of the legitimate endpoint."""
        return self.legit_snr_db - self.eavesdropper_snr_db


def secrecy_report(
    model: ChannelModel,
    configs: Mapping[str, np.ndarray],
    legit_indices: Sequence[int],
    eavesdropper_indices: Sequence[int],
    budget: LinkBudget,
) -> SecrecyReport:
    """Evaluate the secrecy margin for live configurations."""
    h = model.evaluate(configs)
    gains = np.sum(np.abs(h) ** 2, axis=1)
    snrs = np.array([budget.snr_db(g) for g in gains])
    return SecrecyReport(
        legit_snr_db=float(np.mean(snrs[np.asarray(legit_indices, dtype=int)])),
        eavesdropper_snr_db=float(
            np.mean(snrs[np.asarray(eavesdropper_indices, dtype=int)])
        ),
    )
