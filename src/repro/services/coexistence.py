"""Cross-network coexistence auditing (§2.1's unintended blocking).

"Surfaces designed for 2.4 GHz may block 3 GHz cellular and 5 GHz Wi-Fi
signals, causing connectivity issues for other networks."  A deployed
panel is a physical obstacle to every network that is not its own: in
band, transmissive hardware passes signal, but reflective or
out-of-band panels present their through-loss.

The audit quantifies the hazard: for a victim network (its AP, carrier,
and coverage points), compare SNR with the deployed panels modeled as
obstacles versus without, and attribute blame to the panels whose
through-loss at the victim's carrier is significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..channel.nodes import RadioNode
from ..channel.simulator import ChannelSimulator
from ..em.noise import LinkBudget
from ..geometry.environment import Environment
from ..surfaces.panel import SurfacePanel
from .connectivity import snr_map_db

#: Through-loss above which a panel is flagged as a blocking hazard.
HAZARD_THRESHOLD_DB = 3.0


@dataclass(frozen=True)
class VictimNetwork:
    """A network that might suffer from deployed surfaces.

    Attributes:
        name: label, e.g. ``"5GHz-WiFi"``.
        ap: the victim's access point node.
        budget: the victim's link budget.
        frequency_hz: the victim's carrier.
        points: coverage evaluation points ``(K, 3)``.
    """

    name: str
    ap: RadioNode
    budget: LinkBudget
    frequency_hz: float
    points: np.ndarray


@dataclass(frozen=True)
class CoexistenceReport:
    """Impact of deployed panels on one victim network."""

    network: str
    median_snr_without_db: float
    median_snr_with_db: float
    worst_point_drop_db: float
    hazard_panels: Tuple[str, ...]

    @property
    def median_drop_db(self) -> float:
        """Median-SNR degradation caused by the deployment."""
        return self.median_snr_without_db - self.median_snr_with_db

    def describe(self) -> str:
        """One-line audit summary."""
        blame = ", ".join(self.hazard_panels) or "none"
        return (
            f"{self.network}: median {self.median_snr_without_db:.1f} → "
            f"{self.median_snr_with_db:.1f} dB "
            f"(drop {self.median_drop_db:.1f} dB, worst point "
            f"{self.worst_point_drop_db:.1f} dB); hazard panels: {blame}"
        )


def audit_network(
    env: Environment,
    panels: Sequence[SurfacePanel],
    victim: VictimNetwork,
) -> CoexistenceReport:
    """Quantify a deployment's impact on one victim network.

    The victim's channel is simulated twice — panels as obstacles
    versus ignored — on the victim's own carrier.  Surfaces never
    *serve* the victim here (worst case: foreign hardware).
    """
    with_blockage = ChannelSimulator(
        env, victim.frequency_hz, include_panel_blockage=True
    )
    without_blockage = ChannelSimulator(
        env, victim.frequency_hz, include_panel_blockage=False
    )
    # Foreign panels contribute no intentional redirection on the
    # victim's band (their efficiency there is ~0); model them purely
    # as obstacles by evaluating with zero coefficients.
    zero = {p.panel_id: np.zeros(p.num_elements) for p in panels}
    snr_with = snr_map_db(
        with_blockage.build(victim.ap, victim.points, list(panels)),
        zero,
        victim.budget,
    )
    snr_without = snr_map_db(
        without_blockage.build(victim.ap, victim.points, list(panels)),
        zero,
        victim.budget,
    )
    drops = snr_without - snr_with
    hazards = tuple(
        p.panel_id
        for p in panels
        if p.spec.through_loss_db(victim.frequency_hz) >= HAZARD_THRESHOLD_DB
    )
    return CoexistenceReport(
        network=victim.name,
        median_snr_without_db=float(np.median(snr_without)),
        median_snr_with_db=float(np.median(snr_with)),
        worst_point_drop_db=float(drops.max()),
        hazard_panels=hazards,
    )


def audit_networks(
    env: Environment,
    panels: Sequence[SurfacePanel],
    victims: Sequence[VictimNetwork],
) -> List[CoexistenceReport]:
    """Audit every victim network against a deployment."""
    return [audit_network(env, panels, victim) for victim in victims]
