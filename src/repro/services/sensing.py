"""Sensing service: AoA estimation and localization (md-Track style).

The paper's §4 evaluation: "estimate AoA (angle-of-arrival) according
to md-Track.  The AoA between the client device and metasurface is
estimated based on the channel information from the AP, then converted
to localization error assuming accurate ToF."

**Why a surface configuration can disrupt localization** (§2.1): "the
surface operations can inadvertently invalidate spatial information
assumptions for the localization algorithm."  The legacy estimator is
*surface-unaware*: it treats the surface aperture as a plain antenna
array and matched-filters the observed per-element wavefront against
free-space steering hypotheses.  The wavefront it actually sees is the
element response ``z_e = a_e · x_e · g_e(client)`` — AP illumination
times the *configuration* times the client-side steering — so a
configuration optimized for coverage scrambles the spatial structure
the estimator relies on, while a localization-aware configuration
preserves it.  That coupling is exactly the Fig. 2 / Fig. 5 effect, and
because ``z`` is linear in the configuration, the cross-entropy loss
over the softmax AoA spectrum is differentiable in the phases.

Clients sit in the aperture's radiating near field (the Fraunhofer
distance of a 15 cm panel at 28 GHz is ≈4 m), so hypotheses are point
hypotheses on an (azimuth × range) grid at device height rather than
far-field plane waves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from ..channel.model import ChannelModel
from ..core.errors import OptimizationError, ServiceError
from ..core.units import wavelength
from ..em.noise import LinkBudget
from ..orchestrator.objectives import Objective
from ..surfaces.panel import SurfacePanel


@dataclass(frozen=True)
class AngleGrid:
    """Candidate azimuths (radians) in the surface's horizontal plane."""

    azimuths: np.ndarray

    def __post_init__(self) -> None:
        az = np.asarray(self.azimuths, dtype=float).reshape(-1)
        if az.size < 2:
            raise ServiceError("need at least two candidate angles")
        object.__setattr__(self, "azimuths", az)

    @property
    def count(self) -> int:
        """Number of candidates."""
        return self.azimuths.size

    def nearest_index(self, azimuth: float) -> int:
        """Index of the candidate closest to an azimuth."""
        return int(np.argmin(np.abs(self.azimuths - azimuth)))

    @classmethod
    def uniform(
        cls, fov_rad: float = math.radians(140.0), count: int = 61
    ) -> "AngleGrid":
        """Symmetric grid over a field of view centered on boresight."""
        half = fov_rad / 2.0
        return cls(np.linspace(-half, half, count))


def surface_illumination(model: ChannelModel, surface_id: str) -> np.ndarray:
    """Per-element AP illumination ``a_e`` of one surface.

    The AP transmits its pilot with fixed uniform weights across the
    array; the resulting complex illumination of element ``e`` is the
    weighted column sum of the traced AP→surface gains.
    """
    gains = model.ap_to_surface[surface_id]  # (M, E)
    return gains.sum(axis=0) / math.sqrt(gains.shape[0])


class AoAEstimator:
    """Surface-unaware matched-filter AoA estimation over one aperture.

    Args:
        panel: the sensing surface.
        illumination: AP illumination ``a_e`` per element, shape ``(E,)``
            (see :func:`surface_illumination`).
        grid: candidate azimuths relative to the panel boresight.
        frequency_hz: carrier.
        ranges_m: nominal hypothesis ranges (near-field scan).
        hypothesis_height_m: device height hypotheses are placed at.
    """

    #: Nominal candidate ranges (m) for the near-field hypothesis grid.
    DEFAULT_RANGES_M = (1.0, 1.75, 2.5, 3.5)

    def __init__(
        self,
        panel: SurfacePanel,
        illumination: np.ndarray,
        grid: AngleGrid,
        frequency_hz: float,
        ranges_m: Sequence[float] = DEFAULT_RANGES_M,
        hypothesis_height_m: float = 1.0,
    ):
        self.panel = panel
        self.grid = grid
        self.frequency_hz = frequency_hz
        illumination = np.asarray(illumination).reshape(-1)
        if illumination.shape != (panel.num_elements,):
            raise ServiceError(
                f"illumination shape {illumination.shape} != "
                f"({panel.num_elements},)"
            )
        self.illumination = illumination
        self.ranges_m = tuple(float(r) for r in ranges_m)
        if not self.ranges_m or any(r <= 0 for r in self.ranges_m):
            raise ServiceError("ranges must be positive and non-empty")
        self.hypothesis_height_m = hypothesis_height_m
        self._steering = self._build_steering()

    # ------------------------------------------------------------------
    # hypothesis grid
    # ------------------------------------------------------------------

    def _direction(self, azimuth: float) -> np.ndarray:
        """Unit direction leaving the panel at an azimuth from boresight."""
        u, _ = self.panel.plane_axes()
        return math.cos(azimuth) * self.panel.normal + math.sin(azimuth) * u

    def _build_steering(self) -> np.ndarray:
        """Steering matrix ``(I·R, E)`` over (angle, range) hypotheses.

        Each row is the *free-space* spherical wavefront a source at
        the hypothesis point would produce across the aperture — the
        spatial assumption a legacy estimator makes, with no knowledge
        of the surface configuration.  Candidate ``i`` maps to angle
        ``i // R`` and range ``i % R``.
        """
        lam = wavelength(self.frequency_hz)
        k_wave = 2.0 * math.pi / lam
        elems = self.panel.element_positions()
        count = self.grid.count * len(self.ranges_m)
        steering = np.empty((count, elems.shape[0]), dtype=complex)
        i = 0
        for azimuth in self.grid.azimuths:
            direction = self._direction(azimuth)
            for range_m in self.ranges_m:
                hypothesis = self.panel.center + range_m * direction
                hypothesis = hypothesis.copy()
                hypothesis[2] = self.hypothesis_height_m
                dist = np.linalg.norm(elems - hypothesis[None, :], axis=1)
                steering[i] = (lam / (4.0 * math.pi * dist)) * np.exp(
                    -1j * k_wave * dist
                )
                i += 1
        return steering

    @property
    def steering(self) -> np.ndarray:
        """The ``(I·R, E)`` hypothesis wavefronts."""
        return self._steering

    @property
    def num_candidates(self) -> int:
        """Total (angle, range) hypotheses."""
        return self._steering.shape[0]

    def angle_index_of(self, candidate_index: int) -> int:
        """Angle-grid index of a flat candidate index."""
        return candidate_index // len(self.ranges_m)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def true_azimuth(self, point: np.ndarray) -> float:
        """Ground-truth azimuth of a point in the panel's frame."""
        offset = np.asarray(point, dtype=float) - self.panel.center
        u, _ = self.panel.plane_axes()
        forward = float(offset @ self.panel.normal)
        lateral = float(offset @ u)
        return math.atan2(lateral, forward)

    def true_index(self, point: np.ndarray) -> int:
        """Nearest (angle, range) candidate index for a point."""
        angle_idx = self.grid.nearest_index(self.true_azimuth(point))
        range_m = float(
            np.linalg.norm(np.asarray(point, dtype=float) - self.panel.center)
        )
        range_idx = int(np.argmin([abs(r - range_m) for r in self.ranges_m]))
        return angle_idx * len(self.ranges_m) + range_idx

    # ------------------------------------------------------------------
    # wavefronts and estimation
    # ------------------------------------------------------------------

    def wavefront_map(self, client_legs: np.ndarray) -> np.ndarray:
        """Per-point aperture response maps ``W[k, e] = a_e · B[k, e]``.

        ``client_legs`` is the model's surface→points matrix ``(K, E)``.
        The live configuration multiplies in later (``z = W ⊙ x``) —
        keeping ``W`` configuration-free is what lets the localization
        loss differentiate through the phases.
        """
        client_legs = np.asarray(client_legs)
        if client_legs.ndim != 2 or client_legs.shape[1] != self.illumination.size:
            raise ServiceError(
                f"client legs shape {client_legs.shape} incompatible with "
                f"E={self.illumination.size}"
            )
        return self.illumination[None, :] * client_legs

    def estimate(
        self, z: np.ndarray, epsilon: float = 1e-30
    ) -> Tuple[int, np.ndarray]:
        """Estimate the (angle, range) hypothesis from a wavefront ``z``.

        ``z`` is the observed per-element response (configuration
        included, unknown to the estimator).  Returns ``(best_index,
        normalized spectrum)``.
        """
        z = np.asarray(z).reshape(-1)
        corr = self._steering.conj() @ z  # (I·R,)
        norms = np.sum(np.abs(self._steering) ** 2, axis=1)
        spectrum = np.abs(corr) ** 2 / (
            float(np.sum(np.abs(z) ** 2)) * norms + epsilon
        )
        return int(np.argmax(spectrum)), spectrum

    def localization_error_m(
        self, point: np.ndarray, estimated_index: int
    ) -> float:
        """Convert an AoA estimate to a position error (accurate ToF).

        Only the angle matters — ToF pins the range (the paper's
        assumption).  The error is the chord subtended by the angular
        error at the client's true range.
        """
        true_az = self.true_azimuth(point)
        est_az = float(self.grid.azimuths[self.angle_index_of(estimated_index)])
        rng = float(
            np.linalg.norm(np.asarray(point, dtype=float) - self.panel.center)
        )
        return abs(2.0 * rng * math.sin((est_az - true_az) / 2.0))


class SurfaceAoAObjective(Objective):
    """Cross-entropy between the estimated and true AoA (§4's loss).

    Forward model per client ``k``: observed wavefront ``z_k = W_k ⊙ x``
    (aperture response times configuration), spectrum
    ``S_ki = |⟨z_k, ĝ_i⟩|² / ((N_k + σ²)·‖ĝ_i‖² + ε)`` against the
    estimator's steering hypotheses, softmax over candidates,
    cross-entropy with the true candidate.  ``N_k = ‖z_k‖²`` depends
    only on the fixed amplitudes, so the denominators are constants and
    the loss is a smooth function of the phases with a cheap analytic
    gradient.

    ``noise_power`` sets the scale below which spectra flatten — weakly
    illuminated clients produce near-uniform softmaxes and high loss,
    so the gradient also pushes *power* toward the clients, not just
    spatial structure.
    """

    def __init__(
        self,
        wavefronts: np.ndarray,
        estimator: AoAEstimator,
        true_indices: Sequence[int],
        amplitudes: Optional[np.ndarray] = None,
        beta: float = 30.0,
        noise_power: float = 0.0,
        epsilon: float = 1e-40,
    ):
        self.wavefronts = np.asarray(wavefronts)  # (K, E)
        if self.wavefronts.ndim != 2:
            raise OptimizationError("wavefronts must be (K, E)")
        k, e = self.wavefronts.shape
        self.estimator = estimator
        self.steering = estimator.steering  # (I, E)
        if self.steering.shape[1] != e:
            raise OptimizationError("steering/wavefront element mismatch")
        self.true_idx = np.asarray(true_indices, dtype=int)
        if self.true_idx.shape != (k,):
            raise OptimizationError("need one true index per wavefront")
        if np.any(self.true_idx < 0) or np.any(
            self.true_idx >= self.steering.shape[0]
        ):
            raise OptimizationError("true index out of range")
        self.dim = e
        self.amplitudes = (
            np.ones(e)
            if amplitudes is None
            else np.asarray(amplitudes, dtype=float).reshape(-1)
        )
        if self.amplitudes.shape != (e,):
            raise OptimizationError("amplitudes shape mismatch")
        if beta <= 0:
            raise OptimizationError("beta must be positive")
        self.beta = beta
        self.noise_power = noise_power
        self.epsilon = epsilon
        # Phase-independent denominators, precomputed once.
        n_k = np.sum(
            np.abs(self.wavefronts) ** 2 * self.amplitudes[None, :] ** 2,
            axis=1,
        )
        n_i = np.sum(np.abs(self.steering) ** 2, axis=1)
        self._denom = (n_k[:, None] + noise_power) * n_i[None, :] + epsilon

    def spectrum(self, phases: np.ndarray) -> np.ndarray:
        """The (K, I) spectra at a phase vector."""
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        r = (self.wavefronts * x[None, :]) @ self.steering.conj().T
        return np.abs(r) ** 2 / self._denom

    def value_and_gradient(self, phases: np.ndarray) -> Tuple[float, np.ndarray]:
        phases = self._check(phases)
        x = self.amplitudes * np.exp(1j * phases)
        r = (self.wavefronts * x[None, :]) @ self.steering.conj().T  # (K, I)
        spectrum = np.abs(r) ** 2 / self._denom
        z = self.beta * spectrum
        z -= z.max(axis=1, keepdims=True)
        expz = np.exp(z)
        p = expz / expz.sum(axis=1, keepdims=True)
        k = self.wavefronts.shape[0]
        picks = p[np.arange(k), self.true_idx]
        loss = float(-np.mean(np.log(picks + 1e-300)))
        one_hot = np.zeros_like(p)
        one_hot[np.arange(k), self.true_idx] = 1.0
        g_s = self.beta * (p - one_hot) / k
        # ∂S_ki/∂x_e = r̄_ki · W_ke · conj(G_ie) / D_ki  (D constant).
        t = (g_s * np.conj(r)) / self._denom  # (K, I)
        acc = np.sum(self.wavefronts * (t @ self.steering.conj()), axis=0)
        return loss, -2.0 * np.imag(x * acc)

    def estimated_indices(self, phases: np.ndarray) -> np.ndarray:
        """Argmax candidate per wavefront (noiseless)."""
        return np.argmax(self.spectrum(phases), axis=1)


def localization_objective(
    model: ChannelModel,
    surface_id: str,
    estimator: AoAEstimator,
    point_indices: Optional[Sequence[int]] = None,
    amplitudes: Optional[np.ndarray] = None,
    budget: Optional[LinkBudget] = None,
    beta: float = 30.0,
    pilot_gain_db: float = 30.0,
) -> SurfaceAoAObjective:
    """Build the sensing-task loss for one surface from a channel model."""
    legs = model.surface_to_points[surface_id]
    points = model.points
    if point_indices is not None:
        idx = np.asarray(point_indices, dtype=int)
        legs = legs[idx]
        points = points[idx]
    wavefronts = estimator.wavefront_map(legs)
    true_idx = [estimator.true_index(p) for p in points]
    noise_power = 0.0
    if budget is not None:
        per_element = element_noise_power(
            budget, pilot_gain_db
        )
        noise_power = per_element * wavefronts.shape[1]
    return SurfaceAoAObjective(
        wavefronts,
        estimator,
        true_idx,
        amplitudes=amplitudes,
        beta=beta,
        noise_power=noise_power,
    )


def element_noise_power(budget: LinkBudget, pilot_gain_db: float = 30.0) -> float:
    """Variance of one element-response estimate (channel units).

    The AP estimates per-element responses from pilots; processing gain
    reduces the thermal floor.  Channels are normalized so that
    ``P_rx = P_tx·|h|²``, hence the estimate variance in channel units
    is ``noise/(P_tx·G_pilot)``.
    """
    return (
        budget.noise_watts
        / budget.tx_power_watts
        / (10.0 ** (pilot_gain_db / 10.0))
    )


def measure_localization_errors(
    model: ChannelModel,
    surface_id: str,
    configs: Mapping[str, np.ndarray],
    estimator: AoAEstimator,
    budget: LinkBudget,
    rng: Optional[np.random.Generator] = None,
    pilot_gain_db: float = 30.0,
    trials: int = 3,
    cap_m: Optional[float] = None,
) -> np.ndarray:
    """Simulated localization errors (m) at every model point.

    Draws noisy per-element wavefront estimates, runs the
    surface-unaware matched filter, and converts angle errors to meters
    (mean over ``trials``).  ``cap_m`` optionally clips each error to a
    maximum (e.g. the room diagonal).
    """
    rng = rng or np.random.default_rng(0)
    x = np.asarray(configs[surface_id]).reshape(-1)
    wavefronts = estimator.wavefront_map(model.surface_to_points[surface_id])
    z_all = wavefronts * x[None, :]
    std = math.sqrt(element_noise_power(budget, pilot_gain_db) / 2.0)
    errors = np.zeros(model.num_points)
    for k in range(model.num_points):
        point = model.points[k]
        acc = 0.0
        for _ in range(trials):
            noise = std * (
                rng.normal(size=z_all[k].shape)
                + 1j * rng.normal(size=z_all[k].shape)
            )
            idx, _ = estimator.estimate(z_all[k] + noise)
            err = estimator.localization_error_m(point, idx)
            if cap_m is not None:
                err = min(err, cap_m)
            acc += err
        errors[k] = acc / trials
    return errors
