"""Wireless powering service: focus RF energy on charging devices."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..channel.model import ChannelModel, LinearChannelForm
from ..em.noise import LinkBudget
from ..orchestrator.objectives import PoweringObjective


def powering_objective(
    form: LinearChannelForm,
    amplitudes: Optional[np.ndarray] = None,
    budget: Optional[LinkBudget] = None,
) -> PoweringObjective:
    """The powering-task loss: maximize mean harvested power."""
    return PoweringObjective(form, amplitudes=amplitudes, budget=budget)


#: RF-to-DC conversion efficiency of a typical harvester front end.
HARVEST_EFFICIENCY = 0.3

#: Harvester sensitivity: below this incident power nothing is stored.
SENSITIVITY_DBM = -20.0


@dataclass(frozen=True)
class PoweringReport:
    """Delivered power statistics at the charging points."""

    mean_incident_dbm: float
    mean_harvested_mw: float
    fraction_above_sensitivity: float


def powering_report(
    model: ChannelModel,
    configs: Mapping[str, np.ndarray],
    budget: LinkBudget,
) -> PoweringReport:
    """Evaluate harvested power at every model point."""
    from ..core.units import dbm_to_milliwatts, watts_to_dbm

    h = model.evaluate(configs)
    gains = np.sum(np.abs(h) ** 2, axis=1)
    incident_dbm = np.array(
        [watts_to_dbm(budget.tx_power_watts * g) for g in gains]
    )
    harvested = np.where(
        incident_dbm >= SENSITIVITY_DBM,
        HARVEST_EFFICIENCY * np.array([dbm_to_milliwatts(p) for p in incident_dbm]),
        0.0,
    )
    return PoweringReport(
        mean_incident_dbm=float(np.mean(incident_dbm)),
        mean_harvested_mw=float(np.mean(harvested)),
        fraction_above_sensitivity=float(
            np.mean(incident_dbm >= SENSITIVITY_DBM)
        ),
    )
