"""Monitoring / diagnosis service.

The §5 argument for an OS-like runtime made executable: a monitor keeps
per-point SNR time series, detects sudden degradations (blockage events
such as a person walking into the beam), and reports environment health
— the trigger for the runtime daemon's re-optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ServiceError


@dataclass(frozen=True)
class Anomaly:
    """One detected degradation event."""

    time: float
    point_index: int
    drop_db: float
    snr_db: float


@dataclass
class MonitorSnapshot:
    """One observation of the coverage state."""

    time: float
    snrs_db: np.ndarray


class ChannelMonitor:
    """Sliding-window SNR monitor with drop detection.

    Args:
        drop_threshold_db: degradation vs the baseline that counts as an
            anomaly.
        baseline_window: snapshots used for the rolling baseline.
    """

    def __init__(
        self, drop_threshold_db: float = 10.0, baseline_window: int = 5
    ):
        if drop_threshold_db <= 0:
            raise ServiceError("drop threshold must be positive")
        if baseline_window < 1:
            raise ServiceError("baseline window must be >= 1")
        self.drop_threshold_db = drop_threshold_db
        self.baseline_window = baseline_window
        self._history: List[MonitorSnapshot] = []
        self._anomalies: List[Anomaly] = []

    @property
    def history(self) -> List[MonitorSnapshot]:
        """All recorded snapshots."""
        return list(self._history)

    @property
    def anomalies(self) -> List[Anomaly]:
        """All detected anomalies."""
        return list(self._anomalies)

    def observe(self, time: float, snrs_db: Sequence[float]) -> List[Anomaly]:
        """Record a snapshot; returns anomalies it triggered."""
        snrs = np.asarray(snrs_db, dtype=float)
        if self._history and snrs.shape != self._history[0].snrs_db.shape:
            raise ServiceError("snapshot size changed mid-monitoring")
        new: List[Anomaly] = []
        if len(self._history) >= 1:
            window = self._history[-self.baseline_window :]
            baseline = np.median(
                np.stack([s.snrs_db for s in window]), axis=0
            )
            drops = baseline - snrs
            for idx in np.flatnonzero(drops >= self.drop_threshold_db):
                anomaly = Anomaly(
                    time=time,
                    point_index=int(idx),
                    drop_db=float(drops[idx]),
                    snr_db=float(snrs[idx]),
                )
                new.append(anomaly)
        self._history.append(MonitorSnapshot(time=time, snrs_db=snrs))
        self._anomalies.extend(new)
        return new

    def baseline(self) -> Optional[np.ndarray]:
        """Current rolling-median baseline, or None with no history."""
        if not self._history:
            return None
        window = self._history[-self.baseline_window :]
        return np.median(np.stack([s.snrs_db for s in window]), axis=0)

    def health_report(self, floor_snr_db: float = 10.0) -> Dict[str, float]:
        """Summary statistics for diagnosis dashboards."""
        if not self._history:
            raise ServiceError("no observations recorded")
        all_snrs = np.stack([s.snrs_db for s in self._history])
        return {
            "observations": float(len(self._history)),
            "mean_snr_db": float(all_snrs.mean()),
            "worst_snr_db": float(all_snrs.min()),
            "anomaly_count": float(len(self._anomalies)),
            "healthy_fraction": float(np.mean(all_snrs >= floor_snr_db)),
        }
