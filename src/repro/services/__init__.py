"""Service implementations the orchestrator multiplexes over surfaces."""

from .coexistence import (
    CoexistenceReport,
    HAZARD_THRESHOLD_DB,
    VictimNetwork,
    audit_network,
    audit_networks,
)
from .connectivity import (
    CoverageReport,
    coverage_objective,
    link_objective,
    required_snr_for_throughput,
    rss_map_dbm,
    snr_map_db,
)
from .monitoring import Anomaly, ChannelMonitor, MonitorSnapshot
from .powering import (
    HARVEST_EFFICIENCY,
    PoweringReport,
    SENSITIVITY_DBM,
    powering_objective,
    powering_report,
)
from .security import SecrecyReport, secrecy_report, security_objective
from .sensing import (
    AngleGrid,
    AoAEstimator,
    SurfaceAoAObjective,
    element_noise_power,
    localization_objective,
    measure_localization_errors,
    surface_illumination,
)

__all__ = [
    "AngleGrid",
    "CoexistenceReport",
    "HAZARD_THRESHOLD_DB",
    "VictimNetwork",
    "audit_network",
    "audit_networks",
    "Anomaly",
    "AoAEstimator",
    "ChannelMonitor",
    "CoverageReport",
    "HARVEST_EFFICIENCY",
    "MonitorSnapshot",
    "PoweringReport",
    "SENSITIVITY_DBM",
    "SecrecyReport",
    "SurfaceAoAObjective",
    "coverage_objective",
    "element_noise_power",
    "link_objective",
    "localization_objective",
    "measure_localization_errors",
    "powering_objective",
    "powering_report",
    "required_snr_for_throughput",
    "rss_map_dbm",
    "secrecy_report",
    "security_objective",
    "snr_map_db",
    "surface_illumination",
]
