"""Amplitude-control drivers (RFocus / LAVA style).

These surfaces switch each element between passing and blocking states
rather than shifting phase: a configuration is a binary on/off mask.
"""

from __future__ import annotations

import numpy as np

from ..core.configuration import SurfaceConfiguration
from ..core.errors import ConfigurationError
from ..surfaces.specs import SignalProperty
from ..core.operations import OperationResult
from .base import SurfaceDriver


class AmplitudeDriver(SurfaceDriver):
    """Driver for on/off amplitude surfaces."""

    controlled_property = SignalProperty.AMPLITUDE

    def validate(self, config: SurfaceConfiguration) -> None:
        super().validate(config)
        amps = config.amplitudes
        binary = np.isclose(amps, 0.0) | np.isclose(amps, 1.0)
        if not np.all(binary):
            raise ConfigurationError(
                f"{self.surface_id}: amplitude surfaces take binary "
                "on/off element states"
            )
        if not np.allclose(config.phases, 0.0):
            raise ConfigurationError(
                f"{self.surface_id}: amplitude-only hardware cannot "
                "shift phases"
            )

    def set_amplitudes(
        self,
        mask: np.ndarray,
        now: float = 0.0,
        name: str = "mask",
    ) -> OperationResult:
        """The paper's ``set_amplitude()`` primitive: queue an on/off mask."""
        mask = np.asarray(mask, dtype=float)
        config = SurfaceConfiguration(
            phases=np.zeros(self.panel.shape),
            amplitudes=mask.reshape(self.panel.shape),
            name=name,
        )
        return self.push_configuration(name, config, now=now, activate=True)

    def greedy_mask(
        self,
        element_scores: np.ndarray,
        keep_fraction: float = 0.5,
    ) -> np.ndarray:
        """On/off mask keeping the highest-scoring elements.

        RFocus-style majority-vote optimization reduces, per iteration,
        to keeping elements whose contribution is constructive; callers
        supply per-element scores (e.g. ``cos`` of the phase mismatch).
        """
        if not 0.0 < keep_fraction <= 1.0:
            raise ConfigurationError("keep_fraction must lie in (0, 1]")
        scores = np.asarray(element_scores, dtype=float).reshape(-1)
        if scores.size != self.panel.num_elements:
            raise ConfigurationError(
                f"{self.surface_id}: got {scores.size} scores for "
                f"{self.panel.num_elements} elements"
            )
        keep = max(1, int(round(keep_fraction * scores.size)))
        threshold = np.partition(scores, -keep)[-keep]
        return (scores >= threshold).astype(float).reshape(self.panel.shape)
