"""The unified driver interface of the hardware manager (§3.1).

Drivers mask hardware heterogeneity behind primitives named after the
fundamental signal properties — ``set_phase_shifts``,
``set_amplitudes``, … — "analogous to the read() and write() primitives
for file systems".  Two further responsibilities come straight from the
paper:

* **Decoupling management from actuation.**  Control-plane writes are
  *asynchronous*: :meth:`SurfaceDriver.push_configuration` queues an
  update that becomes live only after the hardware's control delay;
  meanwhile the surface keeps serving from its locally stored codebook,
  reacting to endpoint feedback on its own (the data plane).
* **Exposing specifications.**  Every driver surfaces its
  :class:`~repro.surfaces.specs.SurfaceSpec` so the orchestrator can
  model the hardware honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.configuration import SurfaceConfiguration
from ..core.errors import CapabilityError, ConfigurationError, DriverError
from ..core.operations import OperationResult, OperationStatus
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SignalProperty, SurfaceSpec


@dataclass(frozen=True)
class FeedbackReport:
    """Endpoint feedback used for local (data-plane) configuration choice.

    Attributes:
        client_id: which endpoint measured.
        metric_by_configuration: e.g. RSS or SNR in dB per stored
            configuration name, from a beam-sweep — the 802.11ad-style
            codebook feedback the paper cites.
        timestamp: measurement time (simulated seconds).
    """

    client_id: str
    metric_by_configuration: Dict[str, float]
    timestamp: float = 0.0


@dataclass
class _PendingUpdate:
    """A queued control-plane write, live at ``ready_at``."""

    name: str
    configuration: SurfaceConfiguration
    ready_at: float
    activate: bool


class SurfaceDriver:
    """Base driver: codebook storage, async updates, capability checks.

    Subclasses bind a signal property and may refine validation.
    """

    #: Signal property this driver controls (class-level dispatch key).
    controlled_property: SignalProperty = SignalProperty.PHASE

    def __init__(self, panel: SurfacePanel):
        self.panel = panel
        self._codebook: Dict[str, SurfaceConfiguration] = {}
        self._active_name: Optional[str] = None
        self._pending: List[_PendingUpdate] = []
        if not panel.spec.supports(self.controlled_property):
            raise CapabilityError(
                f"{panel.spec.design} does not control "
                f"{self.controlled_property.value}; driver {type(self).__name__} "
                "cannot manage it"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def surface_id(self) -> str:
        """The managed panel's id."""
        return self.panel.panel_id

    @property
    def spec(self) -> SurfaceSpec:
        """The hardware datasheet, exposed to the upper layers."""
        return self.panel.spec

    @property
    def active_configuration_name(self) -> Optional[str]:
        """Name of the codebook entry currently actuating the panel."""
        return self._active_name

    def stored_configurations(self) -> List[str]:
        """Names of codebook entries, in insertion order."""
        return list(self._codebook)

    def get_configuration(self, name: str) -> SurfaceConfiguration:
        """Fetch a stored configuration by name."""
        try:
            return self._codebook[name]
        except KeyError:
            raise DriverError(
                f"{self.surface_id}: no stored configuration {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # control plane: asynchronous reconfiguration
    # ------------------------------------------------------------------

    def _check_reconfigurable(self) -> None:
        if self.spec.is_passive:
            raise CapabilityError(
                f"{self.surface_id} ({self.spec.design}) is passive: "
                "configurations are fixed at fabrication"
            )

    def validate(self, config: SurfaceConfiguration) -> None:
        """Reject configurations this hardware cannot express.

        Subclasses add property-specific checks; the base validates
        shape only (granularity/quantization are *projected*, not
        rejected, because the hardware can always apply the nearest
        feasible configuration).
        """
        if config.shape != self.panel.shape:
            raise ConfigurationError(
                f"{self.surface_id}: configuration shape {config.shape} "
                f"!= panel shape {self.panel.shape}"
            )

    def push_configuration(
        self,
        name: str,
        config: SurfaceConfiguration,
        now: float = 0.0,
        activate: bool = True,
    ) -> OperationResult:
        """Queue a codebook write; returns its :class:`OperationResult`.

        The write lands after the hardware's control delay
        (``result.ready_at``).  When ``activate`` is false the entry is
        stored without switching the live configuration (pre-loading a
        beam codebook).
        """
        now = float(now)
        self._check_reconfigurable()
        self.validate(config)
        if (
            name not in self._codebook
            and len(self._codebook) >= self.spec.max_stored_configurations
        ):
            raise DriverError(
                f"{self.surface_id}: codebook full "
                f"({self.spec.max_stored_configurations} entries)"
            )
        ready_at = now + self.spec.control_delay_s
        self._pending.append(
            _PendingUpdate(
                name=name,
                configuration=config.copy(),
                ready_at=ready_at,
                activate=activate,
            )
        )
        return OperationResult(
            status=OperationStatus.OK,
            operation="push",
            surface_id=self.surface_id,
            latency_s=ready_at - now,
            ready_at=ready_at,
        )

    def commit(self, now: float) -> OperationResult:
        """Apply every queued write whose control delay has elapsed.

        ``result.applied`` counts the writes applied.  Called by the
        hardware manager's clock tick.
        """
        now = float(now)
        ready = [u for u in self._pending if u.ready_at <= now]
        self._pending = [u for u in self._pending if u.ready_at > now]
        for update in sorted(ready, key=lambda u: u.ready_at):
            self._codebook[update.name] = update.configuration
            if update.activate:
                self._activate(update.name)
        return OperationResult(
            status=OperationStatus.OK,
            operation="commit",
            surface_id=self.surface_id,
            applied=len(ready),
        )

    def pending_count(self) -> int:
        """Writes still in flight."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # data plane: local selection
    # ------------------------------------------------------------------

    def _activate(self, name: str) -> None:
        config = self.get_configuration(name)
        self.panel.actuate(config)
        self._active_name = name

    def select_configuration(self, name: str) -> None:
        """Switch the live configuration to a stored entry (local, fast).

        Local selection is a data-plane action and does not pay the
        control delay — the paper's surfaces "react locally to choose
        the best configuration".
        """
        self._check_reconfigurable()
        self._activate(name)

    def apply_feedback(self, report: FeedbackReport) -> Optional[str]:
        """Pick the best stored configuration from endpoint feedback.

        Returns the selected name, or ``None`` when the report covers
        no stored entry.  Passive hardware ignores feedback.
        """
        if self.spec.is_passive:
            return None
        known = {
            name: metric
            for name, metric in report.metric_by_configuration.items()
            if name in self._codebook
        }
        if not known:
            return None
        best = max(known, key=lambda name: known[name])
        if best != self._active_name:
            # Route the stored entry back through validate() before it
            # actuates: a codebook entry may predate a spec change (or
            # have been injected around push), and silently activating
            # one the panel cannot express corrupts the data plane.
            self.validate(self.get_configuration(best))
            self._activate(best)
        return best


class PassiveDriver(SurfaceDriver):
    """Driver for passive (one-time programmable) hardware.

    The single configuration is chosen at fabrication; afterwards every
    write raises :class:`CapabilityError` — the paper's "ROM" analogy.
    """

    def __init__(self, panel: SurfacePanel):
        super().__init__(panel)
        self._fabricated = False

    @property
    def fabricated(self) -> bool:
        """Whether the one-time configuration has been committed."""
        return self._fabricated

    def fabricate(self, config: SurfaceConfiguration) -> OperationResult:
        """Fix the configuration permanently (fabrication time).

        ``result.configuration`` holds the projected configuration the
        hardware actually took.
        """
        if self._fabricated:
            raise CapabilityError(
                f"{self.surface_id}: already fabricated; passive surfaces "
                "are one-time programmable"
            )
        self.validate(config)
        applied = self.panel.actuate(config)
        self._codebook = {"fabricated": applied}
        self._active_name = "fabricated"
        self._fabricated = True
        return OperationResult(
            status=OperationStatus.OK,
            operation="fabricate",
            surface_id=self.surface_id,
            configuration=applied,
        )
