"""Surface drivers: the hardware manager's unified write primitives."""

from ..core.operations import OperationResult, OperationStatus
from .amplitude import AmplitudeDriver
from .base import FeedbackReport, PassiveDriver, SurfaceDriver
from .frequency import FrequencySelectiveDriver, OFF_RESONANCE_AMPLITUDE
from .phase import PassivePhaseDriver, ProgrammablePhaseDriver
from .polarization import PolarizationDriver

__all__ = [
    "AmplitudeDriver",
    "FeedbackReport",
    "FrequencySelectiveDriver",
    "OFF_RESONANCE_AMPLITUDE",
    "OperationResult",
    "OperationStatus",
    "PassiveDriver",
    "PassivePhaseDriver",
    "PolarizationDriver",
    "ProgrammablePhaseDriver",
    "SurfaceDriver",
]
