"""Polarization-control driver (LLAMA style).

Elements rotate the polarization of passing waves.  A configuration's
*phases* array is reinterpreted as per-element polarization rotation
angles; the effective coupling toward a receiver with a given
polarization offset is the cosine of the residual mismatch (Malus-law
amplitude), which the channel model consumes as an amplitude mask.
"""

from __future__ import annotations

import numpy as np

from ..core.configuration import SurfaceConfiguration
from ..surfaces.specs import SignalProperty
from ..core.operations import OperationResult
from .base import SurfaceDriver


class PolarizationDriver(SurfaceDriver):
    """Driver for programmable polarization-rotation surfaces."""

    controlled_property = SignalProperty.POLARIZATION

    def set_polarizations(
        self,
        rotation_angles: np.ndarray,
        now: float = 0.0,
        name: str = "polarization",
    ) -> OperationResult:
        """Queue per-element polarization rotation angles (radians)."""
        angles = np.asarray(rotation_angles, dtype=float).reshape(
            self.panel.shape
        )
        config = SurfaceConfiguration(phases=angles, name=name)
        return self.push_configuration(name, config, now=now, activate=True)

    def effective_amplitudes(
        self, receiver_polarization_rad: float
    ) -> np.ndarray:
        """Amplitude coupling toward a receiver polarization.

        ``|cos(rotation - receiver_polarization)|`` per element: aligned
        rotation couples fully, crossed polarization nulls the element.
        """
        rotations = self.panel.configuration.phases
        return np.abs(np.cos(rotations - receiver_polarization_rad))

    def effective_configuration(
        self, receiver_polarization_rad: float
    ) -> SurfaceConfiguration:
        """The channel-model view: amplitudes from polarization match."""
        return SurfaceConfiguration(
            phases=np.zeros(self.panel.shape),
            amplitudes=self.effective_amplitudes(receiver_polarization_rad),
            name=f"pol-effective@{receiver_polarization_rad:.3f}",
        )

    def align_to(
        self, receiver_polarization_rad: float, now: float = 0.0
    ) -> OperationResult:
        """Rotate every element to match a receiver's polarization."""
        angles = np.full(self.panel.shape, receiver_polarization_rad)
        return self.set_polarizations(angles, now=now, name="aligned")
