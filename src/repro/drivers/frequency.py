"""Frequency-selective driver (Scrolls style).

Scrolls tunes *rows* of a wideband surface to distinct resonant bands:
a row reflects strongly at its tuned band and weakly elsewhere.  A
configuration assigns each row a band index; the effective view for a
given carrier is an amplitude mask selecting the rows tuned to it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.configuration import SurfaceConfiguration
from ..core.errors import ConfigurationError
from ..surfaces.specs import SignalProperty
from .base import SurfaceDriver

#: Reflection amplitude of a row tuned away from the carrier.
OFF_RESONANCE_AMPLITUDE = 0.15


class FrequencySelectiveDriver(SurfaceDriver):
    """Driver for row-wise frequency-selective surfaces."""

    controlled_property = SignalProperty.FREQUENCY

    def __init__(self, panel, bands_hz: Sequence[Tuple[float, float]]):
        super().__init__(panel)
        if not bands_hz:
            raise ConfigurationError("need at least one tunable band")
        for lo, hi in bands_hz:
            if not (0 < lo <= hi):
                raise ConfigurationError(f"invalid band ({lo}, {hi})")
        self.bands_hz = tuple((float(lo), float(hi)) for lo, hi in bands_hz)
        self._row_bands = np.zeros(panel.rows, dtype=int)

    @property
    def row_bands(self) -> np.ndarray:
        """Current band index per row."""
        return self._row_bands.copy()

    def set_row_bands(self, band_indices: Sequence[int]) -> None:
        """Tune each row to a band index (local, row-wise actuation)."""
        self._check_reconfigurable()
        indices = np.asarray(band_indices, dtype=int)
        if indices.shape != (self.panel.rows,):
            raise ConfigurationError(
                f"{self.surface_id}: need one band per row "
                f"({self.panel.rows}), got shape {indices.shape}"
            )
        if np.any(indices < 0) or np.any(indices >= len(self.bands_hz)):
            raise ConfigurationError(
                f"{self.surface_id}: band index out of range "
                f"[0, {len(self.bands_hz)})"
            )
        self._row_bands = indices.copy()
        self.panel.actuate(self.effective_configuration_for_band_state())

    def rows_tuned_to(self, frequency_hz: float) -> np.ndarray:
        """Boolean mask of rows resonant at a carrier."""
        tuned = np.zeros(self.panel.rows, dtype=bool)
        for row, band_idx in enumerate(self._row_bands):
            lo, hi = self.bands_hz[band_idx]
            tuned[row] = lo <= frequency_hz <= hi
        return tuned

    def effective_amplitudes(self, frequency_hz: float) -> np.ndarray:
        """Per-element reflection amplitude at a carrier."""
        tuned = self.rows_tuned_to(frequency_hz)
        row_amp = np.where(tuned, 1.0, OFF_RESONANCE_AMPLITUDE)
        return np.repeat(row_amp[:, None], self.panel.cols, axis=1)

    def effective_configuration(self, frequency_hz: float) -> SurfaceConfiguration:
        """The channel-model view at one carrier."""
        return SurfaceConfiguration(
            phases=np.zeros(self.panel.shape),
            amplitudes=self.effective_amplitudes(frequency_hz),
            name=f"freq-effective@{frequency_hz / 1e9:.2f}GHz",
        )

    def effective_configuration_for_band_state(self) -> SurfaceConfiguration:
        """Live view at the spec's center frequency (for panel state)."""
        return self.effective_configuration(self.spec.center_frequency_hz)

    def allocate_rows(
        self, demands: Dict[int, float]
    ) -> Dict[int, int]:
        """Split rows across bands proportionally to demand weights.

        Returns rows-per-band; assigns contiguous row groups (matching
        the hardware's rolled-sheet construction) via ``set_row_bands``.
        """
        if not demands:
            raise ConfigurationError("no band demands given")
        for band_idx in demands:
            if not 0 <= band_idx < len(self.bands_hz):
                raise ConfigurationError(f"band index {band_idx} out of range")
        total = sum(demands.values())
        if total <= 0:
            raise ConfigurationError("demand weights must sum to > 0")
        rows = self.panel.rows
        allocation: Dict[int, int] = {}
        remaining = rows
        items = sorted(demands.items())
        for i, (band_idx, weight) in enumerate(items):
            if i == len(items) - 1:
                allocation[band_idx] = remaining
            else:
                share = int(round(rows * weight / total))
                share = min(share, remaining)
                allocation[band_idx] = share
                remaining -= share
        assignment = []
        for band_idx, count in allocation.items():
            assignment.extend([band_idx] * count)
        self.set_row_bands(np.asarray(assignment[:rows]))
        return allocation
