"""Phase-control drivers — the workhorse of the exploratory studies.

The paper's early-stage implementation (§4) is exactly this pair: "a
passive surface takes a single set of per-element phase shift values,
while each programmable surface takes multiple sets of element-wise
states.  The best set for a programmable surface is chosen based on
endpoint feedback."
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.configuration import SurfaceConfiguration
from ..em.steering import beam_codebook_targets, focus_configuration
from ..surfaces.panel import SurfacePanel
from ..surfaces.specs import SignalProperty
from ..core.operations import OperationResult
from .base import PassiveDriver, SurfaceDriver


class ProgrammablePhaseDriver(SurfaceDriver):
    """Driver for reconfigurable phase-shifting surfaces."""

    controlled_property = SignalProperty.PHASE

    def set_phase_shifts(
        self,
        config: SurfaceConfiguration,
        now: float = 0.0,
        name: str = "live",
    ) -> OperationResult:
        """The paper's ``shift_phase()`` primitive: queue a phase write."""
        return self.push_configuration(name, config, now=now, activate=True)

    def load_beam_codebook(
        self,
        source: Sequence[float],
        targets: Iterable[np.ndarray],
        frequency_hz: float,
        now: float = 0.0,
        prefix: str = "beam",
    ) -> List[str]:
        """Pre-load focus configurations for a set of target points.

        Returns the stored entry names; the first entry is activated.
        This is the 802.11ad-codebook-style deployment the paper
        describes for data-plane beam switching.
        """
        names: List[str] = []
        for i, target in enumerate(targets):
            name = f"{prefix}{i}"
            cfg = focus_configuration(
                self.panel.element_positions(),
                self.panel.shape,
                source,
                target,
                frequency_hz,
                name=name,
            )
            self.push_configuration(name, cfg, now=now, activate=(i == 0))
            names.append(name)
        return names

    def load_region_codebook(
        self,
        source: Sequence[float],
        region_center: Sequence[float],
        region_span: Sequence[float],
        frequency_hz: float,
        beams_x: int = 4,
        beams_y: int = 4,
        z: float = 1.0,
        now: float = 0.0,
    ) -> List[str]:
        """Codebook covering a rectangular region with a beam grid."""
        targets = beam_codebook_targets(
            region_center, region_span, beams_x, beams_y, z=z
        )
        return self.load_beam_codebook(source, targets, frequency_hz, now=now)


class PassivePhaseDriver(PassiveDriver):
    """Driver for passive phase surfaces (fixed at fabrication)."""

    controlled_property = SignalProperty.PHASE

    def fabricate_focus(
        self,
        source: Sequence[float],
        target: Sequence[float],
        frequency_hz: float,
    ) -> OperationResult:
        """Fabricate the one-time configuration as a focus profile."""
        cfg = focus_configuration(
            self.panel.element_positions(),
            self.panel.shape,
            source,
            target,
            frequency_hz,
            name="fabricated",
        )
        return self.fabricate(cfg)
