"""The fleet broker: one handle-based front door over N environment shards.

:class:`FleetBroker` exposes the same
:class:`~repro.broker.frontend.ServiceFrontend` surface as a
single-environment :class:`~repro.broker.broker.ServiceBroker` —
``register_application`` returns a live
:class:`~repro.broker.handle.ServiceHandle` — while routing every
request to one of N independent shards via a pluggable
:class:`~repro.fleet.placement.PlacementStrategy`.

Global admission rules:

* **Spill on quarantine** — when the strategy's first choice is
  quarantined (operator action or total hardware loss on the PR-3
  health ladder), the request spills to the next ranked candidate and
  the decision records ``fallback_used``.
* **Reject on saturation** — when the chosen shard's bounded request
  queue is full, the fleet propagates the queue's reject-with-reason
  backpressure as a ``REJECTED`` :class:`ServiceResponse` (never an
  exception on the typed ``submit_request`` path).
* **Fleet-level dedup** — one ``app@client`` key is live on at most
  one shard at a time.

Every placement is stamped on the response and handle as a
:class:`~repro.fleet.placement.RoutingDecision`, and the shared
telemetry stream carries ``fleet.routed`` / ``fleet.spilled`` /
``fleet.rejected`` / ``fleet.rebalanced`` counters plus per-shard load
gauges.  All shards tick on one shared sim clock with staggered
coalescing windows, so reoptimization load spreads across ticks and
same-seed runs export byte-identical sim-only JSONL.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..broker.calls import (
    RequestStatus,
    ServiceRequest,
    ServiceResponse,
)
from ..broker.demands import ApplicationDemand
from ..broker.handle import ServiceHandle
from ..core.errors import ServiceError
from ..runtime.clock import SimClock
from ..telemetry import Telemetry
from .placement import CongestionAware, PlacementStrategy, RoutingDecision
from .shard import EnvironmentShard, ShardLoad, ShardSpec

#: Handle states that still hold their registry key at fleet level.
_LIVE_STATES = frozenset(("queued", "admitted", "running"))

#: Default per-shard stagger added to the coalescing window (seconds).
DEFAULT_STAGGER_S = 0.05


class FleetBroker:
    """Routes handle-based service requests across environment shards."""

    def __init__(
        self,
        specs: Sequence[ShardSpec],
        strategy: Optional[PlacementStrategy] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Optional[SimClock] = None,
        stagger_s: float = DEFAULT_STAGGER_S,
        parallelism: int = 1,
        backend: str = "thread",
    ):
        if not specs:
            raise ServiceError("a fleet needs at least one shard")
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate shard ids: {ids}")
        self.clock = clock or SimClock()
        self.telemetry = telemetry or Telemetry()
        # Bind the fleet clock before any shard orchestrator can bind
        # its own — one simulated timeline across the whole fleet.
        self.telemetry.bind_sim_clock(lambda: self.clock.now)
        self.strategy = strategy or CongestionAware()
        self.shards: Dict[str, EnvironmentShard] = {}
        for index, spec in enumerate(specs):
            self.shards[spec.shard_id] = EnvironmentShard(
                spec,
                clock=self.clock,
                telemetry=self.telemetry,
                stagger_s=index * stagger_s,
                parallelism=parallelism,
                backend=backend,
            )
        #: app@client key → shard id of the live registration.
        self._routes: Dict[str, str] = {}
        #: Every handle the fleet has issued, keyed like the routes.
        self._handles: Dict[str, ServiceHandle] = {}
        #: Per-shard load snapshots, refreshed on every tick and
        #: adjusted incrementally between ticks (placements bump the
        #: chosen shard's depth/task count) so per-request routing
        #: never rescans scheduler or hardware state.
        self._load_cache: Dict[str, ShardLoad] = {}

    # -- load and placement ---------------------------------------------

    def loads(self) -> Dict[str, ShardLoad]:
        """Current load snapshot of every shard, in declaration order."""
        cache = self._load_cache
        out: Dict[str, ShardLoad] = {}
        for sid, shard in self.shards.items():
            load = cache.get(sid)
            if load is None:
                load = shard.load()
                cache[sid] = load
            out[sid] = load
        return out

    def _invalidate_load(self, shard_id: Optional[str] = None) -> None:
        """Drop cached load state for one shard (or the whole fleet)."""
        if shard_id is None:
            self._load_cache.clear()
        else:
            self._load_cache.pop(shard_id, None)

    def shard_of(self, app_name: str, client_id: str) -> EnvironmentShard:
        """The shard currently serving ``app@client``."""
        key = f"{app_name}@{client_id}"
        try:
            return self.shards[self._routes[key]]
        except KeyError:
            raise ServiceError(f"unknown application {key!r}") from None

    def _place(
        self, request: ServiceRequest
    ) -> Tuple[Optional[EnvironmentShard], RoutingDecision]:
        """Rank shards and pick the first non-quarantined candidate.

        Quarantined shards are skipped (spill); the decision records
        whether the eventual choice was a fallback.  Returns
        ``(None, decision)`` when every shard is quarantined.
        """
        loads = self.loads()
        ranked = self.strategy.rank(request, loads)
        candidates = tuple(sid for sid, _ in ranked)
        for position, (shard_id, cost) in enumerate(ranked):
            if loads[shard_id].quarantined:
                continue
            return self.shards[shard_id], RoutingDecision(
                shard_id=shard_id,
                strategy=self.strategy.name,
                cost=cost,
                fallback_used=position > 0,
                candidates=candidates,
            )
        return None, RoutingDecision(
            shard_id="",
            strategy=self.strategy.name,
            cost=float("inf"),
            fallback_used=bool(ranked),
            candidates=candidates,
        )

    def _duplicate_reason(self, key: str) -> str:
        """Non-empty when ``key`` is still live somewhere in the fleet."""
        handle = self._handles.get(key)
        if handle is not None and handle.status.value in _LIVE_STATES:
            shard_id = self._routes.get(key, "?")
            return (
                f"application {key!r} already served by fleet "
                f"(shard {shard_id!r})"
            )
        return ""

    def _reject(
        self,
        request: ServiceRequest,
        reason: str,
        routing: RoutingDecision,
        handle: Optional[ServiceHandle] = None,
    ) -> ServiceResponse:
        if handle is None:
            handle = ServiceHandle(self, request)
        handle._mark_rejected(reason)
        handle.routing = routing
        self.telemetry.counter("fleet.rejected")
        return ServiceResponse(
            status=RequestStatus.REJECTED,
            request=request,
            reason=reason,
            handle=handle,
            key=request.key,
            routing=routing,
        )

    def _record_placement(
        self,
        request: ServiceRequest,
        response: ServiceResponse,
        decision: RoutingDecision,
    ) -> None:
        response.routing = decision
        if response.handle is not None:
            response.handle.routing = decision
        if response.status is RequestStatus.REJECTED:
            self.telemetry.counter("fleet.rejected")
            return
        self._routes[request.key] = decision.shard_id
        if response.handle is not None:
            self._handles[request.key] = response.handle
        cached = self._load_cache.get(decision.shard_id)
        if cached is not None:
            queued = response.status is RequestStatus.QUEUED
            self._load_cache[decision.shard_id] = ShardLoad(
                shard_id=cached.shard_id,
                queue_depth=cached.queue_depth + (1 if queued else 0),
                queue_capacity=cached.queue_capacity,
                active_tasks=cached.active_tasks + (0 if queued else 1),
                operational_fraction=cached.operational_fraction,
                quarantined=cached.quarantined,
            )
        self.telemetry.counter("fleet.routed")
        if decision.fallback_used:
            self.telemetry.counter("fleet.spilled")

    # -- the typed request paths ----------------------------------------

    def serve(self, request: ServiceRequest) -> ServiceResponse:
        """Route and serve one request synchronously (no queueing).

        Never raises for predictable rejections — every-shard-down and
        fleet-duplicate cases come back as ``REJECTED`` responses with
        the :class:`RoutingDecision` attached.
        """
        duplicate = self._duplicate_reason(request.key)
        shard, decision = self._place(request)
        if duplicate:
            return self._reject(request, duplicate, decision)
        if shard is None:
            return self._reject(
                request,
                "no usable shard: every shard is quarantined",
                decision,
            )
        shard.ensure_client(request.demand.client_id)
        response = shard.broker.serve(request)
        self._record_placement(request, response, decision)
        return response

    def submit_request(self, request: ServiceRequest) -> ServiceResponse:
        """Route one request into its shard's bounded pipeline queue.

        The backpressure contract holds fleet-wide: a saturated shard
        queue answers with the queue's own reject-with-reason response
        (status ``REJECTED``), never an exception.
        """
        duplicate = self._duplicate_reason(request.key)
        shard, decision = self._place(request)
        if duplicate:
            return self._reject(request, duplicate, decision)
        if shard is None:
            return self._reject(
                request,
                "no usable shard: every shard is quarantined",
                decision,
            )
        shard.ensure_client(request.demand.client_id)
        response = shard.pipeline.submit_request(request)
        self._record_placement(request, response, decision)
        return response

    # -- ServiceFrontend -------------------------------------------------

    def register_application(
        self, demand: ApplicationDemand
    ) -> ServiceHandle:
        """Route a demand to a shard and serve it; returns its handle."""
        request = ServiceRequest(demand=demand, submitted_at=self.clock.now)
        response = self.serve(request)
        if response.status is RequestStatus.REJECTED:
            raise ServiceError(response.reason)
        return response.handle

    def submit(
        self,
        demand: ApplicationDemand,
        priority: Optional[int] = None,
    ) -> ServiceHandle:
        """Queue a demand on its routed shard; returns the handle.

        The handle starts ``QUEUED`` (or ``REJECTED`` under
        backpressure) and progresses as :meth:`tick` drains the shard
        pipelines.
        """
        request = ServiceRequest(
            demand=demand, submitted_at=self.clock.now, priority=priority
        )
        return self.submit_request(request).handle

    def stop_application(
        self, app_name: str, client_id: str
    ) -> ServiceResponse:
        """Stop ``app@client`` on whichever shard serves it."""
        shard = self.shard_of(app_name, client_id)
        response = shard.broker.stop_application(app_name, client_id)
        self._routes.pop(f"{app_name}@{client_id}", None)
        self._invalidate_load(shard.shard_id)
        self.telemetry.counter("fleet.stops")
        return response

    def handle_for(self, app_name: str, client_id: str) -> ServiceHandle:
        """Look up the fleet handle registered under ``app@client``."""
        key = f"{app_name}@{client_id}"
        try:
            return self._handles[key]
        except KeyError:
            raise ServiceError(f"unknown application {key!r}") from None

    def applications(self) -> List[ServiceHandle]:
        """Every handle the fleet has issued, in submission order."""
        return list(self._handles.values())

    def satisfaction(self, handle: ServiceHandle) -> Dict[str, object]:
        """Delegate a satisfaction report to the handle's own broker."""
        return handle.satisfaction()

    # -- shard health ----------------------------------------------------

    def quarantine_shard(
        self, shard_id: str, reason: str = "operator"
    ) -> None:
        """Pull one shard out of placement rotation."""
        shard = self._shard(shard_id)
        if not shard.fleet_quarantined:
            shard.fleet_quarantined = True
            self._invalidate_load(shard_id)
            self.telemetry.counter("fleet.shard_quarantines")

    def reinstate_shard(self, shard_id: str) -> None:
        """Put a quarantined shard back into rotation."""
        self._shard(shard_id).fleet_quarantined = False
        self._invalidate_load(shard_id)

    def _shard(self, shard_id: str) -> EnvironmentShard:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise ServiceError(f"unknown shard {shard_id!r}") from None

    # -- rebalancing -----------------------------------------------------

    def handoff(
        self, app_name: str, client_id: str, to_shard: str
    ) -> ServiceHandle:
        """Move a live application to a named shard (roaming client).

        Stops the registration on the source shard and re-registers the
        same demand on the target, bypassing the placement strategy
        (the caller knows where the client went).  Returns the new
        handle; ``fleet.rebalanced`` counts the move.
        """
        target = self._shard(to_shard)
        if target.load().quarantined:
            raise ServiceError(
                f"cannot hand off to quarantined shard {to_shard!r}"
            )
        source = self.shard_of(app_name, client_id)
        key = f"{app_name}@{client_id}"
        demand = self._handles[key].request.demand
        if source.shard_id == to_shard:
            return self._handles[key]
        source.broker.stop_application(app_name, client_id)
        target.ensure_client(client_id)
        request = ServiceRequest(demand=demand, submitted_at=self.clock.now)
        response = target.broker.serve(request)
        if response.status is RequestStatus.REJECTED:
            # The source registration is already stopped; surface the
            # failure loudly rather than silently dropping the app.
            self._routes.pop(key, None)
            raise ServiceError(
                f"handoff of {key!r} to {to_shard!r} failed: "
                f"{response.reason}"
            )
        decision = RoutingDecision(
            shard_id=to_shard,
            strategy="handoff",
            cost=0.0,
            fallback_used=False,
            candidates=(to_shard,),
        )
        response.routing = decision
        response.handle.routing = decision
        self._routes[key] = to_shard
        self._handles[key] = response.handle
        # The direct serve path creates tasks without queue admission,
        # so nudge the target's coalescing window to pick them up.
        target.pipeline.note_trigger("handoff")
        self._invalidate_load(source.shard_id)
        self._invalidate_load(to_shard)
        self.telemetry.counter("fleet.rebalanced")
        return response.handle

    # -- the engine ------------------------------------------------------

    def tick(self, dt: float = 0.1) -> None:
        """Advance the shared clock, then tick every shard pipeline.

        Shards tick in declaration order; their staggered coalescing
        windows spread the joint solves across successive ticks.
        Per-shard load gauges are refreshed after the sweep.
        """
        self.clock.advance(dt)
        for shard in self.shards.values():
            shard.pipeline.tick()
        self._invalidate_load()
        for sid, load in self.loads().items():
            self.telemetry.gauge(
                f"fleet.shard.{sid}.queue_depth", load.queue_depth
            )
            self.telemetry.gauge(
                f"fleet.shard.{sid}.active_tasks", load.active_tasks
            )

    def run(self, steps: int, dt: float = 0.1) -> None:
        """Tick the fleet ``steps`` times."""
        for _ in range(steps):
            self.tick(dt)

    # -- observability ---------------------------------------------------

    def export_jsonl(
        self, path: Optional[str] = None, sim_only: bool = False
    ) -> str:
        """Export the aggregated fleet telemetry stream."""
        return self.telemetry.export_jsonl(path, sim_only=sim_only)

    def close(self) -> None:
        """Release every shard's evaluation workers."""
        for shard in self.shards.values():
            shard.close()

    def summary(self) -> str:
        """One-line fleet state."""
        parts = []
        for sid, load in self.loads().items():
            flag = " (quarantined)" if load.quarantined else ""
            parts.append(
                f"{sid}: q={load.queue_depth}/{load.queue_capacity} "
                f"tasks={load.active_tasks}{flag}"
            )
        return f"FleetBroker[{self.strategy.name}] " + "; ".join(parts)
