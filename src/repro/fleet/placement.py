"""Fleet placement strategies: which shard serves which request.

Three pluggable strategies rank the shards for each incoming
:class:`~repro.broker.calls.ServiceRequest`:

* :class:`StaticZoneMap` — the operator's wiring diagram: a client id
  tagged ``"<zone>:<device>"`` goes to its zone's shard.
* :class:`LeastLoaded` — classic join-the-shortest-queue over queue
  depth plus active tasks.
* :class:`CongestionAware` — a cost minimizer over per-shard load and
  health signals, modeled on Icarus-style ``OptimalScheduling``:
  requests flow to the computation spot minimizing a congestion cost
  built from queue utilization, active-task load, and a health penalty
  for degraded hardware.  (The reference formulation solves a global
  LP with cvxpy; shard placement here is per-request over a handful of
  shards, so the argmin of the same cost vector — computed in plain
  scalar arithmetic — is exact and dependency-free.)

Every strategy is deterministic: ties break on shard id, shards are
ranked in one pass over an ordered load snapshot, and nothing consults
wall time or unseeded randomness — what keeps same-seed fleet JSONL
exports byte-identical.

The chosen placement travels with the response as a
:class:`RoutingDecision` so callers can see where a request landed,
what it cost, and whether it spilled to a fallback shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from ..broker.calls import ServiceRequest
from .shard import ShardLoad


@dataclass(frozen=True)
class RoutingDecision:
    """Where (and why) the fleet placed one request.

    Attributes:
        shard_id: the shard that received the request (``""`` when the
            fleet rejected it outright).
        strategy: name of the placement strategy consulted.
        cost: the chosen shard's placement cost under that strategy.
        fallback_used: the strategy's first choice was unusable
            (quarantined) and the request spilled to a later candidate.
        candidates: every shard id the strategy ranked, best first.
    """

    shard_id: str
    strategy: str
    cost: float
    fallback_used: bool = False
    candidates: Tuple[str, ...] = ()

    def as_dict(self) -> Dict[str, object]:
        """Flat form for JSON artifacts and telemetry."""
        return {
            "shard_id": self.shard_id,
            "strategy": self.strategy,
            "cost": round(self.cost, 6),
            "fallback_used": self.fallback_used,
            "candidates": list(self.candidates),
        }


def zone_of(client_id: str) -> str:
    """Zone tag of a client id (``"z1:phone"`` → ``"z1"``; else ``""``)."""
    if ":" in client_id:
        return client_id.split(":", 1)[0]
    return ""


class PlacementStrategy:
    """Base: rank shards for a request, cheapest placement first."""

    #: Strategy name recorded in :class:`RoutingDecision`.
    name = "base"

    def rank(
        self,
        request: ServiceRequest,
        loads: Mapping[str, ShardLoad],
    ) -> List[Tuple[str, float]]:
        """Ordered ``(shard_id, cost)`` candidates, best first."""
        raise NotImplementedError


@dataclass
class StaticZoneMap(PlacementStrategy):
    """Route by the operator's zone → shard wiring.

    The mapped shard ranks first at cost 0; remaining shards follow in
    declaration order as fallbacks (cost = their fallback position).
    Unknown or untagged client ids fall through to declaration order.
    """

    zones: Mapping[str, str] = field(default_factory=dict)
    name: str = field(default="static-zone", init=False)

    def rank(self, request, loads):
        preferred = self.zones.get(zone_of(request.demand.client_id))
        ranked: List[Tuple[str, float]] = []
        if preferred is not None and preferred in loads:
            ranked.append((preferred, 0.0))
        for shard_id in loads:
            if shard_id != preferred:
                ranked.append((shard_id, float(len(ranked))))
        return ranked


@dataclass
class LeastLoaded(PlacementStrategy):
    """Join the shortest queue: depth plus active tasks, id tie-break."""

    name: str = field(default="least-loaded", init=False)

    def rank(self, request, loads):
        costs = [
            (sid, float(load.queue_depth + load.active_tasks))
            for sid, load in loads.items()
        ]
        costs.sort(key=lambda item: (item[1], item[0]))
        return costs


@dataclass
class CongestionAware(PlacementStrategy):
    """Icarus-style congestion cost minimizer over load/health signals.

    Placement cost per shard::

        cost = queue_weight   * queue_utilization
             + task_weight    * active_tasks
             + health_penalty * (1 - operational_fraction)

    Quarantined shards cost ``inf`` so they only surface as last-resort
    candidates (the fleet skips them during spill anyway).
    """

    queue_weight: float = 4.0
    task_weight: float = 1.0
    health_penalty: float = 8.0
    name: str = field(default="congestion-aware", init=False)

    def cost_of(self, load: ShardLoad) -> float:
        """The congestion cost of placing one request on ``load``."""
        if load.quarantined:
            return float("inf")
        return (
            self.queue_weight * load.utilization
            + self.task_weight * float(load.active_tasks)
            + self.health_penalty * (1.0 - load.operational_fraction)
        )

    def rank(self, request, loads):
        # Scalar arithmetic on purpose: this runs once per request over
        # a handful of shards, where numpy array setup would dominate
        # the cost it computes.
        costs = [(sid, self.cost_of(load)) for sid, load in loads.items()]
        costs.sort(key=lambda item: (item[1], item[0]))
        return costs
