"""Environment shards: one self-contained SurfOS stack per zone.

The fleet tier scales SurfOS out the way the paper's "millions of
users" north star demands: not by growing one orchestrator, but by
running N independent environments — each with its own
:class:`~repro.geometry.environment.Environment`,
:class:`~repro.hwmgr.manager.HardwareManager`,
:class:`~repro.orchestrator.orchestrator.SurfaceOrchestrator`, and
request pipeline — behind one global broker.  A :class:`ShardSpec`
declares a shard; :class:`EnvironmentShard` builds and owns the booted
stack plus the load/health signals the placement strategies consume.

All shards share one :class:`~repro.runtime.clock.SimClock` and one
:class:`~repro.telemetry.Telemetry` stream, so a fleet run stays a
single deterministic simulation: same seed → byte-identical sim-only
JSONL, regardless of evaluation worker counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.kernel import SurfOS
from ..geometry.scenes import build_scene
from ..hwmgr.devices import ClientDevice
from ..hwmgr.health import HealthStatus
from ..orchestrator.optimizers import RandomSearch
from ..pipeline import EvaluationConfig, PipelineConfig, RequestPipeline
from ..runtime.clock import SimClock
from ..telemetry import Telemetry

#: Carrier used by the default shard builder (28 GHz, the repo default).
_CARRIER_HZ = 28e9

#: Optimizer budget per solve for the default builder — small panels and
#: few iterations keep an N-shard fleet CI-fast.
_SOLVE_ITERATIONS = 40


@dataclass(frozen=True)
class ShardSpec:
    """Declarative description of one environment shard.

    Attributes:
        shard_id: unique shard identifier (also its telemetry tag).
        zone: the zone tag this shard serves (static zone routing keys
            client ids ``"<zone>:<device>"`` to it).
        seed: per-shard RNG seed (optimizer + client placement).
        panel_size: elements per side of the shard's programmable panel.
        queue_capacity: the shard pipeline's bounded queue size.
        coalesce_window_s: base coalescing window; the fleet staggers
            the effective window per shard to spread joint solves.
        builder: optional override building the shard's booted
            :class:`~repro.core.kernel.SurfOS`; called as
            ``builder(spec, telemetry)``.  Defaults to building the
            registered scene named by ``scene``.
        scene: registered scene the default builder stands up (and the
            spawn region ``ensure_client`` draws from).
    """

    shard_id: str
    zone: str
    seed: int = 0
    panel_size: int = 8
    queue_capacity: int = 64
    coalesce_window_s: float = 0.1
    builder: Optional[Callable[["ShardSpec", Telemetry], SurfOS]] = None
    scene: str = "two-room"


@dataclass(frozen=True)
class ShardLoad:
    """The load/health signal one shard exposes to placement strategies.

    Attributes:
        shard_id: which shard this snapshot describes.
        queue_depth: requests parked in the shard's pipeline queue.
        queue_capacity: the queue's bound (saturated when depth == cap).
        active_tasks: non-terminal tasks the shard's scheduler holds.
        operational_fraction: share of the shard's panels still taking
            control-plane writes (PR-3 health ladder).
        quarantined: whether the fleet (or total hardware loss) has
            pulled the shard out of rotation.
    """

    shard_id: str
    queue_depth: int
    queue_capacity: int
    active_tasks: int
    operational_fraction: float
    quarantined: bool

    @property
    def saturated(self) -> bool:
        """Whether the shard's admission queue is full."""
        return self.queue_depth >= self.queue_capacity

    @property
    def utilization(self) -> float:
        """Queue fill fraction in [0, 1]."""
        if self.queue_capacity <= 0:
            return 1.0
        return self.queue_depth / self.queue_capacity


def default_shard_system(spec: ShardSpec, telemetry: Telemetry) -> SurfOS:
    """The default shard: the spec's registered scene, one stack."""
    return SurfOS.from_scene(
        spec.scene,
        frequency_hz=_CARRIER_HZ,
        panel_size=spec.panel_size,
        optimizer=RandomSearch(
            max_iterations=_SOLVE_ITERATIONS, seed=spec.seed
        ),
        grid_spacing_m=1.0,
        telemetry=telemetry,
        device_prefix=f"{spec.shard_id}-",
    )


class EnvironmentShard:
    """One booted SurfOS stack plus its pipeline and load signals."""

    def __init__(
        self,
        spec: ShardSpec,
        clock: SimClock,
        telemetry: Telemetry,
        stagger_s: float = 0.0,
        parallelism: int = 1,
        backend: str = "thread",
    ):
        self.spec = spec
        self.shard_id = spec.shard_id
        self.zone = spec.zone
        self.clock = clock
        self.telemetry = telemetry
        builder = spec.builder or default_shard_system
        self.system = builder(spec, telemetry)
        #: Effective coalescing window: the fleet staggers windows so N
        #: shards don't all fire their joint solves on the same tick
        #: (reoptimization load-balancing on the shared clock).
        self.coalesce_window_s = spec.coalesce_window_s + stagger_s
        self.pipeline = RequestPipeline(
            self.system.broker,
            clock=clock,
            config=PipelineConfig(
                queue_capacity=spec.queue_capacity,
                coalesce_window_s=self.coalesce_window_s,
                evaluation=EvaluationConfig(
                    backend=backend, parallelism=parallelism
                ),
            ),
        )
        #: Set by :meth:`FleetBroker.quarantine_shard`; a quarantined
        #: shard takes no new placements until reinstated.
        self.fleet_quarantined = False

    # -- load / health ---------------------------------------------------

    @property
    def broker(self):
        """The shard's single-environment service broker."""
        return self.system.broker

    @property
    def orchestrator(self):
        """The shard's surface orchestrator."""
        return self.system.orchestrator

    def operational_fraction(self) -> float:
        """Share of the shard's panels still accepting writes."""
        report = self.system.hardware.health_report()
        if not report:
            return 0.0
        operational = sum(
            1
            for health in report.values()
            if health.status
            not in (HealthStatus.QUARANTINED, HealthStatus.DEAD)
        )
        return operational / len(report)

    def active_task_count(self) -> int:
        """Non-terminal tasks currently held by the shard's scheduler."""
        return sum(
            1
            for ctx in self.orchestrator.active_contexts()
            if not ctx.task.is_terminal
        )

    def load(self) -> ShardLoad:
        """Snapshot the shard's load/health signal for placement."""
        fraction = self.operational_fraction()
        return ShardLoad(
            shard_id=self.shard_id,
            queue_depth=self.pipeline.queue.depth,
            queue_capacity=self.pipeline.queue.capacity,
            active_tasks=self.active_task_count(),
            operational_fraction=fraction,
            quarantined=self.fleet_quarantined or fraction <= 0.0,
        )

    # -- clients ---------------------------------------------------------

    def ensure_client(self, client_id: str) -> None:
        """Register the client device on this shard if it is new.

        Fleet requests name clients the shard has never seen; the shard
        materializes them at a deterministic seeded position inside the
        serviceable room (stable across runs and worker counts — the
        position derives from the client id, not from arrival order).
        """
        try:
            self.system.hardware.client(client_id)
            return
        except Exception:
            pass
        digest = zlib.crc32(client_id.encode("utf-8"))
        rng = np.random.default_rng(self.spec.seed * 7919 + digest)
        scene = getattr(self.system, "scene", None)
        if scene is None:
            # Custom builders without a Scene keep the legacy two-room
            # spawn region (identical draws, bit for bit).
            scene = build_scene(self.spec.scene)
        position = tuple(map(float, scene.spawn_position(rng)))
        self.system.add_client(ClientDevice(client_id, position))

    def close(self) -> None:
        """Release the shard pipeline's evaluation workers."""
        self.pipeline.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnvironmentShard({self.shard_id!r}, zone={self.zone!r}, "
            f"window={self.coalesce_window_s:g}s)"
        )
