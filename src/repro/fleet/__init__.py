"""Fleet tier: N environment shards behind one global service broker."""

from .broker import DEFAULT_STAGGER_S, FleetBroker
from .placement import (
    CongestionAware,
    LeastLoaded,
    PlacementStrategy,
    RoutingDecision,
    StaticZoneMap,
    zone_of,
)
from .shard import (
    EnvironmentShard,
    ShardLoad,
    ShardSpec,
    default_shard_system,
)

__all__ = [
    "CongestionAware",
    "DEFAULT_STAGGER_S",
    "EnvironmentShard",
    "FleetBroker",
    "LeastLoaded",
    "PlacementStrategy",
    "RoutingDecision",
    "ShardLoad",
    "ShardSpec",
    "StaticZoneMap",
    "default_shard_system",
    "zone_of",
]
